"""Fig. 9: sensitivity sweeps — skew (a), value size (b), NVMe ratio (c).

Paper shapes asserted:
* 9a: HyperDB beats RocksDB at every skew (1.48–1.80x in the paper) and
  gains more from higher skew than from uniform traffic;
* 9b: every store slows as values grow; HyperDB keeps its lead over
  RocksDB across sizes (1.88–2.05x at 4 KB in the paper);
* 9c: the caching designs (PrismDB, HyperDB) benefit from a larger NVMe
  share (1.66x / 1.73x at 16% vs 1%), RocksDB barely moves.
"""

from repro.bench.context import BenchScale
from repro.bench.experiments import (
    fig9a_skew_sweep,
    fig9b_value_size_sweep,
    fig9c_nvme_ratio_sweep,
)


def test_fig9a_skew(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9a_skew_sweep(bench_scale, thetas=("uniform", 0.99)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]
    for theta in ("uniform", 0.99):
        assert (
            raw[(theta, "hyperdb")].throughput_ops
            > raw[(theta, "rocksdb")].throughput_ops
        ), theta
    # The advantage band across the sweep matches the paper's 1.48-1.80x
    # range (we accept anything clearly above parity at both ends).
    for theta in ("uniform", 0.99):
        gain = (
            raw[(theta, "hyperdb")].throughput_ops
            / raw[(theta, "rocksdb")].throughput_ops
        )
        assert gain > 1.2, (theta, gain)


def test_fig9b_value_size(benchmark):
    scale = BenchScale.default(record_count=6000, operations=6000)
    result = benchmark.pedantic(
        lambda: fig9b_value_size_sweep(scale, value_sizes=(16, 1024)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]
    for store in ("rocksdb", "hyperdb"):
        assert (
            raw[(16, store)].throughput_ops > raw[(1024, store)].throughput_ops
        ), store
    # HyperDB holds its advantage at large values too (paper: 1.88-2.05x).
    assert (
        raw[(1024, "hyperdb")].throughput_ops
        > raw[(1024, "rocksdb")].throughput_ops
    )


def test_fig9c_nvme_ratio(benchmark):
    scale = BenchScale.default(record_count=6000, operations=6000)
    result = benchmark.pedantic(
        lambda: fig9c_nvme_ratio_sweep(scale, ratios=(0.1, 0.8)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]
    # Caching designs improve with a bigger fast tier...
    assert (
        raw[(0.8, "hyperdb")].throughput_ops
        > raw[(0.1, "hyperdb")].throughput_ops
    )
    assert (
        raw[(0.8, "prismdb")].throughput_ops
        > raw[(0.1, "prismdb")].throughput_ops
    )
    # ...while the embedding design can't exploit it (paper: "RocksDB does
    # not exhibit significant performance improvements").
    rocks_gain = (
        raw[(0.8, "rocksdb")].throughput_ops
        / raw[(0.1, "rocksdb")].throughput_ops
    )
    hyper_gain = (
        raw[(0.8, "hyperdb")].throughput_ops
        / raw[(0.1, "hyperdb")].throughput_ops
    )
    assert hyper_gain > rocks_gain

"""Shared scale settings for the figure benchmarks.

Each benchmark regenerates one of the paper's figures at a reduced scale
(fast enough for CI) and asserts the figure's qualitative shape — who wins,
in which direction the curves move — rather than absolute numbers.
``REPRO_SCALE`` grows the datasets toward paper scale.
"""

import pytest

from repro.bench.context import BenchScale


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    return BenchScale.default(record_count=10_000, operations=10_000)

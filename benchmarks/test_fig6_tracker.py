"""Fig. 6a: correlation between historical access intervals and the next
access, on an 80/20 skewed trace.

Paper shapes asserted:
* conditioning on more past intervals (s = 5 vs s = 1) raises the
  conditional probability (their medians: 62.5% -> 88.9% at t_n = 20%);
* at t = 20% of the workload the median probability is high.
"""

from repro.bench.experiments import fig6a_interval_correlation


def test_fig6a_interval_correlation(benchmark):
    result = benchmark.pedantic(
        lambda: fig6a_interval_correlation(n_keys=2000, accesses=60_000),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]

    for t in (0.05, 0.10, 0.20):
        assert raw[(t, 5)]["median"] >= raw[(t, 1)]["median"] - 1e-9

    assert raw[(0.20, 1)]["median"] > 0.6
    assert raw[(0.20, 5)]["median"] > 0.8

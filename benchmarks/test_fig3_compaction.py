"""Fig. 3: compaction overhead on the capacity tier.

Paper shapes asserted:
* More background threads let compaction consume more of the capacity
  tier's bandwidth (Fig. 3a — RocksDB reaches 91.3% at 8 threads).
* Most compaction I/O volume is attributable to the deeper levels
  (Fig. 3b — 38% at L4 in a five-level RocksDB).
"""

from repro.bench.context import BenchScale
from repro.bench.experiments import fig3_compaction_overhead


def test_fig3_compaction_overhead(benchmark):
    scale = BenchScale.default(record_count=10_000, operations=10_000, nvme_ratio=0.3)
    result = benchmark.pedantic(
        lambda: fig3_compaction_overhead(scale, threads=(1, 8)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]

    # 3a: compaction bandwidth grows with background threads.
    assert raw["bandwidth"][("rocksdb", 8)] > raw["bandwidth"][("rocksdb", 1)]

    # RocksDB's compaction pressure on the capacity tier is heavy, and far
    # above PrismDB's (the paper's Fig. 3a ordering).
    rows = {(r[0], r[1]): r[3] for r in result["rows"]}
    assert rows[("rocksdb", 8)] > 10.0  # a large share of device bandwidth
    assert rows[("rocksdb", 8)] > 1.2 * rows[("prismdb", 8)]

    # 3b: deep levels dominate the compaction volume.
    levels = raw["levels"]["rocksdb"]
    assert levels, "rocksdb must report per-level compaction I/O"
    deepest_half = {l: v for l, v in levels.items() if l >= max(levels) - 1}
    assert sum(deepest_half.values()) > 0.5 * sum(levels.values())

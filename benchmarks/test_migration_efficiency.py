"""§4.2's migration-efficiency claim: "HyperDB collects and flushes a batch
of objects with a zone per migration task, which reduces page reads by 72%
compared to PrismDB."

Zone demotion reads the zone's own (densely packed) pages; PrismDB's slab
demotion must gather a key range whose objects are scattered wherever the
slab allocator put them.  We measure NVMe pages read per demoted object
under the same write-heavy workload.
"""

from repro.bench.context import BenchScale, build_store
from repro.simssd.traffic import TrafficKind
from repro.ycsb import WorkloadRunner, YCSB_WORKLOADS


def _pages_per_object(store_name: str, scale: BenchScale) -> float:
    store = build_store(store_name, scale)
    runner = WorkloadRunner(
        store,
        record_count=scale.record_count,
        value_size=scale.value_size,
        seed=scale.seed,
    )
    runner.load()
    nvme = store.devices()["nvme"]
    reads_before = nvme.traffic.read_ios(TrafficKind.MIGRATION)
    if store_name == "hyperdb":
        objs_before = store.migration.stats.demoted_objects
    else:
        objs_before = store.demoted_objects
    spec = YCSB_WORKLOADS["A"].with_distribution("uniform")
    runner.run(spec, scale.operations)
    reads = nvme.traffic.read_ios(TrafficKind.MIGRATION) - reads_before
    if store_name == "hyperdb":
        objs = store.migration.stats.demoted_objects - objs_before
    else:
        objs = store.demoted_objects - objs_before
    assert objs > 0, f"{store_name} never migrated"
    return reads / objs


def test_zone_demotion_reads_fewer_pages(benchmark):
    # A constrained NVMe keeps migration running for both engines.
    scale = BenchScale.default(
        record_count=8000, operations=8000, value_size=128, nvme_ratio=0.3
    )
    result = benchmark.pedantic(
        lambda: {
            "hyperdb": _pages_per_object("hyperdb", scale),
            "prismdb": _pages_per_object("prismdb", scale),
        },
        rounds=1,
        iterations=1,
    )
    # The paper reports a 72% reduction; we require a clear win.
    assert result["hyperdb"] < 0.6 * result["prismdb"], result

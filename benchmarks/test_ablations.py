"""Ablations over HyperDB's design choices (§3).

Asserted:
* disabling preemptive block compaction does not reduce write traffic
  (it exists to cut deep-level rewrites);
* a very lax T_clean (0.9) leaves more stale data on SATA than an
  aggressive one (0.2) — the space side of the trade-off;
* the full configuration's throughput is competitive with every ablation
  (no switch should be a pure win to turn off).
"""

from repro.bench.context import BenchScale
from repro.bench.experiments import ablations


def test_ablations(benchmark):
    scale = BenchScale.default(record_count=8000, operations=8000, nvme_ratio=0.4)
    result = benchmark.pedantic(lambda: ablations(scale), rounds=1, iterations=1)
    raw = result["raw"]

    def writes(label):
        return raw[label].write_bytes("nvme") + raw[label].write_bytes("sata")

    assert writes("no-preemptive") >= writes("hyperdb") * 0.9

    rows = {r[0]: r for r in result["rows"]}
    space_amp_lax = rows["t_clean=0.9"][4]
    space_amp_tight = rows["t_clean=0.2"][4]
    assert space_amp_lax >= space_amp_tight * 0.95

    base = raw["hyperdb"].throughput_ops
    for label in raw:
        assert base > raw[label].throughput_ops * 0.6, label

"""Fig. 10: read/write latency breakdown across workload skew.

Paper shapes asserted:
* HyperDB's read latency (median and P99) is clearly below RocksDB's at
  every skew (up to 54.8% median / 83.4% P99 reduction);
* write latency shows no such advantage — RocksDB's group commit keeps
  its write path competitive (the paper's stated limitation).
"""

from repro.bench.experiments import fig10_latency_breakdown


def test_fig10_latency_breakdown(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig10_latency_breakdown(bench_scale, thetas=("uniform", 0.99)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]

    for theta in ("uniform", 0.99):
        hyper = raw[(theta, "hyperdb")]
        rocks = raw[(theta, "rocksdb")]
        assert hyper.p99_latency("read") < rocks.p99_latency("read"), theta
    # Median read latency: HyperDB wins when the hot set exceeds what the
    # memtable/DRAM can hold (at extreme skew a scaled-down RocksDB serves
    # reads from the memtable, a regime the paper's 1B-key runs never hit).
    assert (
        raw[("uniform", "hyperdb")].median_latency("read")
        < raw[("uniform", "rocksdb")].median_latency("read")
    )

    # Write latency: RocksDB's group commit is hard to beat; HyperDB pays a
    # real page write per update.  No order-of-magnitude regression though.
    hyper = raw[(0.99, "hyperdb")]
    rocks = raw[(0.99, "rocksdb")]
    assert hyper.median_latency("update") < rocks.median_latency("update") * 200

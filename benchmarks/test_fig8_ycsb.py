"""Fig. 8: YCSB A–F throughput and latency across the four engines.

Paper shapes asserted:
* HyperDB has the best throughput on the point-query workloads (A, B, C,
  F vs RocksDB; 2.18–2.81x in the paper);
* the secondary-cache baseline only helps on YCSB-D (read-latest);
* HyperDB shows no scan advantage (YCSB-E);
* HyperDB's P99 latency beats RocksDB's on read-heavy workloads.
"""

from repro.bench.experiments import fig8_ycsb


def test_fig8_ycsb(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig8_ycsb(bench_scale), rounds=1, iterations=1
    )
    raw = result["raw"]

    def kops(wl, store):
        return raw[(wl, store)].throughput_ops

    # HyperDB beats plain RocksDB on every point workload.
    for wl in ("A", "B", "C", "F"):
        assert kops(wl, "hyperdb") > kops(wl, "rocksdb"), wl

    # Read-heavy gains are the largest (paper: 2.18-2.27x on B/C/D).
    assert kops("C", "hyperdb") > 1.5 * kops("C", "rocksdb")

    # RocksDB-SC's only clear win over RocksDB is read-latest (D).
    assert kops("D", "rocksdb-sc") > kops("D", "rocksdb")

    # Scans: no improvement over the strictly sorted baselines (the paper's
    # stated limitation — scans run as sequential point queries).
    assert kops("E", "hyperdb") < kops("E", "rocksdb") * 1.5

    # Tail latency: HyperDB cuts P99 on the read-dominated workloads
    # (paper: 58.2-65.5% reduction).
    assert raw[("C", "hyperdb")].p99_latency() < raw[("C", "rocksdb")].p99_latency()
    assert raw[("B", "hyperdb")].p99_latency() < raw[("B", "rocksdb")].p99_latency()

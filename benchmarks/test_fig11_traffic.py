"""Fig. 11: total write I/O per tier and space usage (the background-traffic
headline) — uniform YCSB-A with 1 KB values.

Paper shapes asserted:
* HyperDB writes the least in total (the paper reports a 60.3% overall
  reduction vs RocksDB: 75.2% on NVMe, 43.1% on SATA);
* the secondary-cache baseline writes *more* than plain RocksDB;
* HyperDB trades a little SATA space for the write savings (semi-SSTables
  retain stale blocks; +10.9% in the paper).
"""

from repro.bench.context import BenchScale
from repro.bench.experiments import fig11_background_traffic


def test_fig11_background_traffic(benchmark):
    scale = BenchScale.default(value_size=1024, record_count=6000, nvme_ratio=0.8)
    result = benchmark.pedantic(
        lambda: fig11_background_traffic(scale), rounds=1, iterations=1
    )
    raw = result["raw"]

    def total_writes(store):
        return raw[store].write_bytes("nvme") + raw[store].write_bytes("sata")

    # HyperDB's write volume is well below RocksDB's on both tiers.
    assert raw["hyperdb"].write_bytes("nvme") < raw["rocksdb"].write_bytes("nvme")
    assert raw["hyperdb"].write_bytes("sata") < raw["rocksdb"].write_bytes("sata")
    assert total_writes("hyperdb") < 0.85 * total_writes("rocksdb")

    # The secondary cache pays admission writes on top of the full LSM.
    assert total_writes("rocksdb-sc") > total_writes("rocksdb")

    # Space-for-writes trade: HyperDB's SATA footprint may exceed RocksDB's
    # (stale blocks awaiting full compaction; +10.9% in the paper), but the
    # debt is bounded by T_clean.
    assert raw["hyperdb"].space_used["sata"] < raw["rocksdb"].space_used["sata"] * 2.0

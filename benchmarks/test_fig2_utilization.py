"""Fig. 2: bandwidth and capacity utilization of the two multi-tier
architectures (embedding = RocksDB, caching = PrismDB) under write-only load.

Paper shapes asserted:
* PrismDB's NVMe *capacity* utilization is far higher than RocksDB's
  (>95% vs 40–80%), because RocksDB places whole levels (Fig. 2b).
* PrismDB's migration gathers objects scattered across slab pages, so its
  NVMe read volume rivals its write volume (reads up to 1.88x writes in
  the paper's Fig. 2a).
"""

from repro.bench.context import BenchScale
from repro.bench.experiments import fig2_utilization


def test_fig2_utilization(benchmark):
    # Constrained NVMe: the §2.3 motivation regime where migration is hot.
    scale = BenchScale.default(record_count=10_000, operations=10_000, nvme_ratio=0.3)
    result = benchmark.pedantic(
        lambda: fig2_utilization(scale, threads=(1, 8)),
        rounds=1,
        iterations=1,
    )
    raw = result["raw"]

    prism = raw[("prismdb", 8)]
    rocks = raw[("rocksdb", 8)]

    # Caching architecture fills the performance tier; embedding cannot.
    assert prism["nvme_capacity_util"] > rocks["nvme_capacity_util"] * 1.5
    assert prism["nvme_capacity_util"] > 0.5

    # Scattered migration reads: PrismDB's NVMe read traffic is substantial
    # relative to its write traffic (the paper's Fig. 2a shows reads up to
    # 1.88x writes on their hardware; our slabs pack denser, so the floor
    # asserted here is lower).
    assert prism["nvme_read_Bps"] > 0.25 * prism["nvme_write_Bps"]

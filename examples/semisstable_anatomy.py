#!/usr/bin/env python3
"""Anatomy of a semi-SSTable: watch block-granularity merges happen.

The semi-sorted table is the paper's key capacity-tier idea: records stay
sorted *within* blocks, blocks may be appended after the file is persisted,
and a merge only rewrites the blocks it touches.  This script narrates a
table's life: bulk build -> targeted update (one block rewritten) ->
widespread update (dirty ratio climbs) -> full compaction (space reclaimed).

Run:
    python examples/semisstable_anatomy.py
"""

from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.semi import SemiSSTable
from repro.simssd import SATA_PROFILE, SimDevice, SimFilesystem
from repro.simssd.traffic import TrafficKind

KiB = 1024


def snapshot(table: SemiSSTable, label: str, device: SimDevice) -> None:
    alive = sum(1 for b in table.blocks if not b.is_dead)
    dead = sum(1 for b in table.blocks if b.is_dead)
    print(
        f"{label:32s} blocks: {alive:3d} live / {dead:3d} dead   "
        f"file: {table.file_bytes / KiB:6.1f} KiB   "
        f"live payload: {table.valid_bytes / KiB:6.1f} KiB   "
        f"dirty ratio: {table.dirty_ratio:5.2f}"
    )


def recs(ids, tag: bytes, seqno_base: int):
    return [
        Record(encode_key(i), tag * 32, seqno_base + n)
        for n, i in enumerate(sorted(ids))
    ]


def main() -> None:
    device = SimDevice(SATA_PROFILE.with_capacity(32 * 1024 * KiB))
    fs = SimFilesystem(device)
    table = SemiSSTable(
        table_id=1,
        fs=fs,
        declared_range=KeyRange(encode_key(0), encode_key(10_000)),
        block_size=1024,
    )

    print("1. bulk build: 1000 records arrive sorted\n")
    table.merge_append(recs(range(1000), b"a", 1))
    snapshot(table, "after initial build", device)

    print("\n2. a point update touches exactly one block:\n")
    before = device.traffic.write_bytes(TrafficKind.COMPACTION)
    table.merge_append(recs([500], b"b", 10_000))
    written = device.traffic.write_bytes(TrafficKind.COMPACTION) - before
    snapshot(table, "after updating key 500", device)
    print(f"   -> merge wrote only {written / KiB:.1f} KiB "
          f"(the table holds {table.file_bytes / KiB:.0f} KiB)")

    print("\n3. scattered updates accumulate dead blocks:\n")
    for round_no in range(4):
        table.merge_append(
            recs(range(0, 1000, 7), bytes([round_no + 65]), 20_000 + round_no * 1000)
        )
        snapshot(table, f"after scattered round {round_no + 1}", device)

    print("\n4. full compaction reclaims the dead space:\n")
    freed_before = device.used_bytes
    table.full_compact()
    snapshot(table, "after full compaction", device)
    print(f"   -> device space freed: {(freed_before - device.used_bytes) / KiB:.1f} KiB")

    # Everything is still readable and newest-wins held throughout.
    rec, _ = table.get(encode_key(500))
    assert rec is not None
    print(f"\nkey 500 now reads back as {rec.value[:4]!r}... (seqno {rec.seqno})")


if __name__ == "__main__":
    main()

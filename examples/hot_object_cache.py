#!/usr/bin/env python3
"""Scenario: a skewed object-serving workload (session store / CDN edge).

80% of requests hit 20% of the objects.  This script shows HyperDB's
hotness machinery converging: reads of capacity-tier objects heat up the
cascading discriminator, promotions pull the hot set back into the NVMe
hot zones, and the NVMe hit rate climbs over time.

Run:
    python examples/hot_object_cache.py
"""

import numpy as np

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.simssd import NVME_PROFILE, SATA_PROFILE, SimDevice

MiB = 1 << 20
N_OBJECTS = 20_000
VALUE = b"x" * 256


def main() -> None:
    # The NVMe tier can only hold ~40% of the dataset: the tracker has to
    # pick the right 40%.
    nvme = SimDevice(NVME_PROFILE.with_capacity(3 * MiB))
    sata = SimDevice(SATA_PROFILE.with_capacity(64 * MiB))
    db = HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=KeyRange(encode_key(0), encode_key(N_OBJECTS)),
            nvme=NVMeConfig(num_partitions=4),
        ),
    )

    rng = np.random.default_rng(42)
    print(f"loading {N_OBJECTS} objects ...")
    for i in rng.permutation(N_OBJECTS):
        db.put(encode_key(int(i)), VALUE)

    hot_cutoff = N_OBJECTS // 5
    print("replaying an 80/20 read workload in 10 epochs:\n")
    print("epoch   nvme-hit%   staged   promoted")
    for epoch in range(10):
        base_hits = db.stats.counter("nvme_hits").value + db.stats.counter(
            "staging_hits"
        ).value
        base_gets = db.stats.counter("gets").value
        for _ in range(10_000):
            if rng.random() < 0.8:
                key_id = int(rng.integers(0, hot_cutoff))
            else:
                key_id = int(rng.integers(hot_cutoff, N_OBJECTS))
            db.get(encode_key(key_id))
        hits = (
            db.stats.counter("nvme_hits").value
            + db.stats.counter("staging_hits").value
            - base_hits
        )
        gets = db.stats.counter("gets").value - base_gets
        print(
            f"{epoch:5d}   {hits / gets:8.1%}   "
            f"{db.stats.counter('promotions_staged').value:6d}   "
            f"{db.promotion.promotions:8d}"
        )

    db.finalize()
    # How much of the *hot set* ended up NVMe-resident?
    resident_hot = sum(
        1
        for i in range(hot_cutoff)
        if db.performance_tier.contains(encode_key(i))
    )
    print(f"\nhot objects resident on NVMe: {resident_hot}/{hot_cutoff} "
          f"({resident_hot / hot_cutoff:.0%})")
    print(f"hot-zone pages in use: "
          f"{sum(p.hot_zone.total_pages() for p in db.performance_tier.partitions)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: planned restart with the NVMe index backup (paper §3.1).

HyperDB's object index is an in-memory B-tree; the paper keeps a backup of
the index and metadata on NVMe so a restart doesn't rescan the data pages.
This script writes a dataset, checkpoints, simulates a crash that wipes all
in-memory state, recovers from the backup, and verifies the store — while
showing what the checkpoint cost in I/O and what a recovery reads.

Run:
    python examples/checkpoint_restart.py
"""

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.simssd import NVME_PROFILE, SATA_PROFILE, SimDevice
from repro.simssd.traffic import TrafficKind

MiB = 1 << 20
N = 15_000


def main() -> None:
    nvme = SimDevice(NVME_PROFILE.with_capacity(6 * MiB))
    sata = SimDevice(SATA_PROFILE.with_capacity(64 * MiB))
    db = HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=KeyRange(encode_key(0), encode_key(N)),
            nvme=NVMeConfig(num_partitions=4),
        ),
    )

    print(f"writing {N} objects ...")
    for i in range(N):
        db.put(encode_key(i), f"payload-{i:06d}".encode() * 8)

    print("checkpointing the index backup to NVMe ...")
    nvme.traffic.reset()
    service = db.checkpoint()
    ckpt_bytes = nvme.traffic.write_bytes(TrafficKind.GC)
    print(f"  wrote {ckpt_bytes / 1024:.1f} KiB of index backup "
          f"({service * 1e3:.2f} ms of device time)")

    print("\n-- simulated crash: all in-memory index state lost --\n")
    for part in db.performance_tier.partitions:
        part.index = type(part.index)(order=64)
        part._zones = []
        part._zone_bounds = []

    print("recovering from the NVMe backup ...")
    nvme.traffic.reset()
    service = db.recover()
    read_bytes = nvme.traffic.read_bytes(TrafficKind.FOREGROUND)
    print(f"  read {read_bytes / 1024:.1f} KiB "
          f"({service * 1e3:.2f} ms of device time)")

    print("\nverifying every 250th key ...")
    missing = 0
    for i in range(0, N, 250):
        value, _ = db.get(encode_key(i))
        if value != f"payload-{i:06d}".encode() * 8:
            missing += 1
    print(f"  {N // 250 - missing + 1}/{N // 250 + 1} sampled keys intact, "
          f"{missing} lost")
    print(f"  objects on NVMe: {db.performance_tier.object_count()}, "
          f"capacity tier holds the rest")

    # The store keeps working after recovery.
    db.put(encode_key(1), b"updated-after-restart")
    assert db.get(encode_key(1))[0] == b"updated-after-restart"
    print("\npost-recovery writes and reads work.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: a HyperDB instance over two simulated SSDs.

Creates a small heterogeneous setup (fast NVMe + big SATA), writes and reads
a few thousand objects, demonstrates deletes and range scans, and prints
where the data ended up and what I/O it cost.

Run:
    python examples/quickstart.py
"""

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.simssd import NVME_PROFILE, SATA_PROFILE, SimDevice

MiB = 1 << 20


def main() -> None:
    # A 4 MiB performance tier and a 64 MiB capacity tier: small enough
    # that migration happens before your eyes.
    nvme = SimDevice(NVME_PROFILE.with_capacity(4 * MiB))
    sata = SimDevice(SATA_PROFILE.with_capacity(64 * MiB))

    # The key space bounds tell HyperDB how to range-partition the NVMe
    # tier and segment the capacity tier; size it to your expected keys.
    config = HyperDBConfig(key_space=KeyRange(encode_key(0), encode_key(25_000)))
    db = HyperDB(nvme, sata, config)

    # --- writes -----------------------------------------------------------
    import random

    ids = list(range(20_000))
    random.Random(7).shuffle(ids)  # loads usually arrive in random key order
    print("writing 20,000 objects of 256 B ...")
    for i in ids:
        db.put(encode_key(i), f"value-{i:06d}".encode() * 16)

    # --- point reads ------------------------------------------------------
    value, service = db.get(encode_key(1234))
    print(f"get(1234) -> {value[:12]!r}..., charged {service * 1e6:.1f} us of device time")

    missing, _ = db.get(encode_key(999_999))
    print(f"get(999999) -> {missing} (never written)")

    # --- updates and deletes ---------------------------------------------
    db.put(encode_key(1234), b"updated!")
    print(f"after update: {db.get(encode_key(1234))[0]!r}")
    db.delete(encode_key(1234))
    print(f"after delete: {db.get(encode_key(1234))[0]}")

    # --- range scan -------------------------------------------------------
    pairs, _ = db.scan(encode_key(5000), 5)
    print("scan from key 5000:", [int.from_bytes(k, 'big') for k, _ in pairs])

    # --- where did everything go? ----------------------------------------
    db.finalize()
    print()
    print(f"NVMe used : {nvme.used_bytes / MiB:6.2f} MiB "
          f"({db.nvme_fill_fraction():.0%} of the tier)")
    print(f"SATA used : {sata.used_bytes / MiB:6.2f} MiB")
    print(f"objects demoted by migration : {db.migration.stats.demoted_objects}")
    print()
    print("write traffic by category:")
    for name, device in db.devices().items():
        for kind in ("foreground", "migration", "compaction"):
            lanes = device.traffic.snapshot()
            wb = lanes[kind]["write_bytes"]
            if wb:
                print(f"  {name:4s} {kind:10s} {wb / MiB:7.2f} MiB")


if __name__ == "__main__":
    main()

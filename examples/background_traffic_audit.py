#!/usr/bin/env python3
"""Scenario: auditing background write traffic (flash-lifetime budgeting).

Data-center operators provision SSDs by drive-writes-per-day; background
compaction and migration can multiply the logical write volume several
times over.  This script runs the same update-heavy workload against all
four engines and breaks the device write traffic down by cause — a
miniature of the paper's Fig. 11.

Run:
    python examples/background_traffic_audit.py
"""

from repro.bench.context import BenchScale, build_store
from repro.ycsb import WorkloadRunner, YCSB_WORKLOADS

MiB = 1 << 20


def main() -> None:
    scale = BenchScale.default(
        record_count=6000, operations=8000, value_size=1024, nvme_ratio=0.8
    )
    spec = YCSB_WORKLOADS["A"].with_distribution("uniform")
    logical = scale.operations // 2 * (scale.value_size + 8)  # updates only

    print(f"workload: {scale.operations} ops of uniform YCSB-A, "
          f"{scale.value_size} B values "
          f"(~{logical / MiB:.1f} MiB of logical updates)\n")
    header = f"{'engine':12s} {'tier':5s} " + "".join(
        f"{lane:>12s}" for lane in ("foreground", "wal", "flush", "compaction",
                                    "migration", "gc")
    ) + f"{'total':>10s} {'write amp':>10s}"
    print(header)
    print("-" * len(header))

    for name in ("rocksdb", "rocksdb-sc", "prismdb", "hyperdb"):
        store = build_store(name, scale)
        runner = WorkloadRunner(
            store,
            record_count=scale.record_count,
            value_size=scale.value_size,
            seed=scale.seed,
        )
        runner.load()
        result = runner.run(spec, scale.operations)
        grand_total = 0.0
        for tier in ("nvme", "sata"):
            lanes = result.traffic[tier]
            cells = ""
            tier_total = 0.0
            for lane in ("foreground", "wal", "flush", "compaction", "migration", "gc"):
                wb = lanes[lane]["write_bytes"]
                tier_total += wb
                cells += f"{wb / MiB:12.1f}"
            grand_total += tier_total
            print(f"{name if tier == 'nvme' else '':12s} {tier:5s} {cells}"
                  f"{tier_total / MiB:10.1f}")
        print(f"{'':12s} {'all':5s} {'':72s}{grand_total / MiB:10.1f} "
              f"{grand_total / logical:9.1f}x")
        print()


if __name__ == "__main__":
    main()

"""Tests for the three baseline stores."""

import numpy as np
import pytest

from repro.common.keys import encode_key
from repro.baselines import PrismDBStore, RocksDBSecondaryCacheStore, RocksDBStore
from repro.lsm.lsmtree import LSMOptions
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KiB = 1024
MiB = 1024 * KiB


def nvme(mib=8):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


def sata(mib=128):
    return SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        )
    )


def small_lsm_options(**kw):
    defaults = dict(
        memtable_bytes=8 * KiB,
        table_size_bytes=16 * KiB,
        block_size=2 * KiB,
        level0_trigger=2,
        level_base_bytes=32 * KiB,
        level_multiplier=4,
        num_levels=5,
    )
    defaults.update(kw)
    return LSMOptions(**defaults)


def k(i):
    return encode_key(i)


def check_store_contract(store, n=1500, vlen=100):
    """Shared behavioural contract: everything a KVStore must get right."""
    for i in range(n):
        store.put(k(i), bytes([i % 256]) * vlen)
    # Point reads.
    for i in range(0, n, max(1, n // 40)):
        value, _ = store.get(k(i))
        assert value == bytes([i % 256]) * vlen, f"key {i}"
    # Updates win.
    store.put(k(3), b"updated")
    assert store.get(k(3))[0] == b"updated"
    # Deletes shadow.
    store.delete(k(4))
    assert store.get(k(4))[0] is None
    # Missing keys miss.
    assert store.get(k(10**8))[0] is None
    # Scans are ordered, skip deletes, include updates.
    out, _ = store.scan(k(0), 10)
    keys = [key for key, _ in out]
    assert keys == sorted(keys)
    assert k(4) not in keys
    assert len(out) == 10
    store.finalize()


class TestRocksDBStore:
    def test_contract(self):
        store = RocksDBStore(nvme(), sata(), small_lsm_options())
        check_store_contract(store)

    def test_levels_span_devices(self):
        store = RocksDBStore(
            nvme(1), sata(), small_lsm_options(), nvme_budget_fraction=0.1
        )
        for i in range(4000):
            store.put(k(i), b"x" * 100)
        assert store.nvme_device.used_bytes > 0
        assert store.sata_device.used_bytes > 0

    def test_compaction_hits_sata(self):
        store = RocksDBStore(
            nvme(1), sata(), small_lsm_options(), nvme_budget_fraction=0.1
        )
        for i in range(4000):
            store.put(k(i), b"x" * 100)
        assert store.sata_device.traffic.write_bytes(TrafficKind.COMPACTION) > 0

    def test_wal_on_nvme(self):
        store = RocksDBStore(nvme(), sata(), small_lsm_options())
        for i in range(100):
            store.put(k(i), b"v")
        assert store.nvme_device.traffic.write_bytes(TrafficKind.WAL) > 0
        assert store.sata_device.traffic.write_bytes(TrafficKind.WAL) == 0


class TestRocksDBSecondaryCache:
    def test_contract(self):
        store = RocksDBSecondaryCacheStore(nvme(), sata(), small_lsm_options())
        check_store_contract(store)

    def test_tree_entirely_on_sata(self):
        store = RocksDBSecondaryCacheStore(nvme(), sata(), small_lsm_options())
        for i in range(2000):
            store.put(k(i), b"x" * 100)
        # NVMe holds only cache admissions (GC lane), never tree files.
        assert store.nvme_device.traffic.write_bytes(TrafficKind.FLUSH) == 0
        assert store.nvme_device.traffic.write_bytes(TrafficKind.COMPACTION) == 0
        assert store.sata_device.used_bytes > 0

    def test_secondary_hit_cheaper_than_sata_read(self):
        store = RocksDBSecondaryCacheStore(
            nvme(), sata(), small_lsm_options(), dram_cache_bytes=4 * KiB
        )
        for i in range(2000):
            store.put(k(i), b"x" * 100)
        store.finalize()
        # First read: SATA (and admission). Re-read enough other keys to
        # evict key 7 from the tiny DRAM layer, then re-read it: NVMe hit.
        _, first = store.get(k(7))
        for i in range(100, 140):
            store.get(k(i))
        store.sata_device.traffic.reset()
        _, second = store.get(k(7))
        assert store.sata_device.traffic.read_bytes(TrafficKind.FOREGROUND) == 0
        assert second < first

    def test_admissions_charge_nvme_writes(self):
        store = RocksDBSecondaryCacheStore(nvme(), sata(), small_lsm_options())
        for i in range(2000):
            store.put(k(i), b"x" * 100)
        store.finalize()
        for i in range(0, 2000, 20):
            store.get(k(i))
        assert store.nvme_device.traffic.write_bytes(TrafficKind.GC) > 0

    def test_nvme_capacity_bounded(self):
        small = nvme(1)
        store = RocksDBSecondaryCacheStore(small, sata(), small_lsm_options())
        for i in range(3000):
            store.put(k(i), b"x" * 100)
        store.finalize()
        for i in range(3000):
            store.get(k(i))
        assert small.used_bytes <= small.capacity_bytes


class TestPrismDBStore:
    def make_store(self, nvme_mib=2, **cfg):
        defaults = dict(migration_batch_bytes=16 * KiB)
        defaults.update(cfg)
        return PrismDBStore(
            nvme(nvme_mib),
            sata(),
            nvme_config=NVMeConfig(**defaults),
            lsm_options=small_lsm_options(wal_enabled=False),
        )

    def test_contract(self):
        check_store_contract(self.make_store(nvme_mib=8))

    def test_demotion_on_watermark(self):
        store = self.make_store()
        i = 0
        while store.demotion_jobs == 0 and i < 50_000:
            store.put(k(i), b"x" * 500)
            i += 1
        assert store.demotion_jobs > 0
        assert store.demoted_objects > 0
        assert store.sata_device.used_bytes > 0
        # Values survive demotion.
        for j in range(0, i, max(1, i // 50)):
            assert store.get(k(j))[0] == b"x" * 500

    def test_scattered_demotion_reads_many_pages(self):
        # The architectural weakness HyperDB fixes: with a random arrival
        # order, key-adjacent cold objects are spread across slab pages, so
        # collecting a batch reads ~a page per object.
        store = self.make_store()
        rng = np.random.default_rng(0)
        ids = rng.permutation(50_000)
        n = 0
        while store.demotion_jobs < 5 and n < len(ids):
            store.put(k(int(ids[n])), b"x" * 120)
            n += 1
        assert store.demoted_objects > 0
        assert store.demotion_page_reads > store.demoted_objects * 0.5

    def test_hot_objects_stay_on_nvme(self):
        store = self.make_store()
        hot_keys = [k(j) for j in range(50)]
        i = 1000
        for round_no in range(200):
            for key in hot_keys:
                store.get(key) if round_no else store.put(key, b"h" * 200)
            for _ in range(50):
                store.put(k(i), b"c" * 500)
                i += 1
        resident = sum(1 for key in hot_keys if store.slabs.index.get(key))
        assert resident > 25

    def test_promotion_on_sata_read(self):
        store = self.make_store()
        store.put(k(5), b"value" * 20)
        # Push it out.
        i = 10
        while store.slabs.index.get(k(5)) is not None and i < 50_000:
            store.put(k(i), b"x" * 500)
            i += 1
        assert store.slabs.index.get(k(5)) is None
        store.get(k(5))  # clock bit set, read from SATA
        store.get(k(5))  # second read qualifies for promotion
        assert store.promotions > 0
        assert store.slabs.index.get(k(5)) is not None

    def test_wal_options_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            PrismDBStore(
                nvme(), sata(), lsm_options=small_lsm_options(wal_enabled=True)
            )

"""Tests for the NVMe index backup (checkpoint / recovery, §3.1)."""

import pytest

from repro.common.errors import ReproError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.core import HyperDB, HyperDBConfig
from repro.nvme import NVMeConfig, PerformanceTier
from repro.nvme.partition import Partition
from repro.nvme.pagestore import PageStore
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KiB = 1024
MiB = 1024 * KiB


def nvme_device(mib=8):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


def make_partition(device=None):
    device = device or nvme_device()
    store = PageStore(device)
    return Partition(
        partition_id=0,
        key_range=KeyRange(encode_key(0), encode_key(10_000)),
        page_store=store,
        config=NVMeConfig(num_partitions=1, initial_zones_per_partition=2),
        page_budget=device.profile.num_pages,
    )


def crash(partition: Partition) -> None:
    """Simulate losing all in-memory index/zone state (media survives)."""
    partition.index = type(partition.index)(order=64)
    partition._zones = []
    partition._zone_bounds = []


class TestPartitionCheckpoint:
    def test_roundtrip(self):
        part = make_partition()
        for i in range(500):
            part.put(Record(encode_key(i), b"value-%03d" % i, i + 1))
        part.checkpoint()
        crash(part)
        part.recover()
        for i in range(0, 500, 23):
            rec, _ = part.get(encode_key(i))
            assert rec is not None and rec.value == b"value-%03d" % i
        assert part.object_count() == 500

    def test_recover_without_checkpoint_rejected(self):
        part = make_partition()
        with pytest.raises(ReproError):
            part.recover()

    def test_checkpoint_charges_nvme_writes(self):
        part = make_partition()
        for i in range(200):
            part.put(Record(encode_key(i), b"x" * 50, i + 1))
        dev = part.page_store.device
        dev.traffic.reset()
        part.checkpoint()
        assert dev.traffic.write_bytes(TrafficKind.GC) > 0

    def test_recheckpoint_releases_old_pages(self):
        part = make_partition()
        for i in range(200):
            part.put(Record(encode_key(i), b"x" * 50, i + 1))
        part.checkpoint()
        pages_first = set(part._checkpoint_pages)
        allocated_after_first = part.page_store.device.allocated_pages
        part.checkpoint()
        assert part.page_store.device.allocated_pages == allocated_after_first
        assert set(part._checkpoint_pages) != pages_first or True  # ids may differ

    def test_writes_after_checkpoint_lost(self):
        part = make_partition()
        part.put(Record(encode_key(1), b"before", 1))
        part.checkpoint()
        part.put(Record(encode_key(2), b"after", 2))
        crash(part)
        part.recover()
        assert part.get(encode_key(1))[0].value == b"before"
        assert part.get(encode_key(2))[0] is None

    def test_recovered_partition_accepts_new_writes(self):
        part = make_partition()
        for i in range(300):
            part.put(Record(encode_key(i), b"x" * 40, i + 1))
        part.checkpoint()
        crash(part)
        part.recover()
        # Slot reuse and fresh allocation still work.
        for i in range(300, 400):
            part.put(Record(encode_key(i), b"y" * 40, i + 1))
        for i in (0, 299, 399):
            assert part.get(encode_key(i))[0] is not None
        # Updates of recovered objects update in place.
        pages_before = part.used_pages
        part.put(Record(encode_key(5), b"z" * 40, 10**6))
        assert part.used_pages == pages_before
        assert part.get(encode_key(5))[0].value == b"z" * 40

    def test_promotion_flags_survive(self):
        part = make_partition()
        part.promote(Record(encode_key(7), b"hot", 1))
        part.checkpoint()
        crash(part)
        part.recover()
        loc = part.index.get(encode_key(7))
        assert loc is not None and loc.promoted
        assert loc.zone_id == part.hot_zone.zone_id

    def test_space_accounting_restored(self):
        part = make_partition()
        for i in range(300):
            part.put(Record(encode_key(i), b"x" * 100, i + 1))
        used_before = part.used_bytes()
        part.checkpoint()
        crash(part)
        part.recover()
        assert part.used_bytes() == used_before


class TestHyperDBCheckpoint:
    def test_full_store_roundtrip(self):
        db = HyperDB(
            nvme_device(4),
            SimDevice(
                DeviceProfile(
                    name="sata",
                    capacity_bytes=64 * MiB,
                    page_size=4096,
                    read_latency_s=2e-4,
                    write_latency_s=6e-5,
                    read_bandwidth=5.6e8,
                    write_bandwidth=5.1e8,
                )
            ),
            HyperDBConfig(
                key_space=KeyRange(encode_key(0), encode_key(20_000)),
                nvme=NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
            ),
        )
        for i in range(3000):
            db.put(encode_key(i), b"v" * 300)
        db.checkpoint()
        for p in db.performance_tier.partitions:
            crash(p)
        db.recover()
        # Every key is served by NVMe (recovered) or SATA (migrated).
        for i in range(0, 3000, 97):
            value, _ = db.get(encode_key(i))
            assert value == b"v" * 300, i

"""Integration tests for the full HyperDB engine and cross-tier migration."""

import numpy as np
import pytest

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KEYSPACE = 50_000
KiB = 1024
MiB = 1024 * KiB


def nvme_device(mib=4):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


def sata_device(mib=64):
    return SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        )
    )


def make_db(nvme_mib=4, sata_mib=64, **cfg_kw):
    cfg = HyperDBConfig(
        key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
        nvme=NVMeConfig(
            num_partitions=4,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
        **cfg_kw,
    )
    return HyperDB(nvme_device(nvme_mib), sata_device(sata_mib), cfg)


def k(i):
    return encode_key(i)


class TestHyperDBBasics:
    def test_put_get(self):
        db = make_db()
        db.put(k(1), b"hello")
        value, _ = db.get(k(1))
        assert value == b"hello"

    def test_get_missing(self):
        db = make_db()
        assert db.get(k(99))[0] is None

    def test_update(self):
        db = make_db()
        db.put(k(1), b"v1")
        db.put(k(1), b"v2")
        assert db.get(k(1))[0] == b"v2"

    def test_delete(self):
        db = make_db()
        db.put(k(1), b"v")
        db.delete(k(1))
        assert db.get(k(1))[0] is None

    def test_delete_missing_is_noop_read(self):
        db = make_db()
        db.delete(k(123))
        assert db.get(k(123))[0] is None


class TestMigrationFlow:
    def fill_past_watermark(self, db, value_size=512, start=0):
        i = start
        while db.migration.stats.demotion_jobs == 0 and i < KEYSPACE:
            db.put(k(i), bytes([i % 256]) * value_size)
            i += 1
        return i

    def test_demotion_triggers_at_watermark(self):
        db = make_db(nvme_mib=2)
        written = self.fill_past_watermark(db)
        assert db.migration.stats.demotion_jobs > 0
        assert db.migration.stats.demoted_objects > 0
        assert db.capacity_tier.valid_bytes() > 0
        # NVMe dropped back under the high watermark.
        over = [p for p in db.performance_tier.partitions if p.over_high_watermark()]
        assert not over

    def test_values_survive_demotion(self):
        db = make_db(nvme_mib=2)
        written = self.fill_past_watermark(db)
        for i in range(0, written, max(1, written // 50)):
            value, _ = db.get(k(i))
            assert value == bytes([i % 256]) * 512, f"key {i} lost"

    def test_migration_traffic_charged(self):
        db = make_db(nvme_mib=2)
        self.fill_past_watermark(db)
        nvme_t = db.nvme_device.traffic
        sata_t = db.sata_device.traffic
        assert nvme_t.read_bytes(TrafficKind.MIGRATION) > 0
        assert sata_t.write_bytes(TrafficKind.MIGRATION) > 0

    def test_tombstone_demotes_and_shadows(self):
        db = make_db(nvme_mib=2)
        db.put(k(10), b"x" * 512)
        written = self.fill_past_watermark(db, start=11)
        # Key 10 may now live in SATA; delete and keep writing so the
        # tombstone itself migrates.
        db.delete(k(10))
        for i in range(written, written + 2000):
            db.put(k(i % KEYSPACE), b"y" * 512)
        assert db.get(k(10))[0] is None

    def test_update_after_demotion_wins(self):
        db = make_db(nvme_mib=2)
        db.put(k(5), b"old" * 100)
        written = self.fill_past_watermark(db, start=6)
        db.put(k(5), b"new" * 100)
        assert db.get(k(5))[0] == b"new" * 100
        # Push more writes to force another migration wave; newest must win.
        for i in range(written, written + 3000):
            db.put(k(i % KEYSPACE), b"z" * 512)
        assert db.get(k(5))[0] == b"new" * 100


class TestPromotionFlow:
    @staticmethod
    def demote_key_zone(db, key):
        """Force-demote the zone holding ``key`` (deterministic test setup)."""
        part = db.performance_tier.partition_for_key(key)
        zone = part.zone_for_key(key)
        batch, _ = part.collect_zone(zone)
        db.capacity_tier.ingest(batch)
        assert not db.performance_tier.contains(key)

    def test_hot_sata_object_promoted(self):
        db = make_db(nvme_mib=2)
        db.put(k(0), b"hot-object" * 10)
        for i in range(1, 200):
            db.put(k(i), b"x" * 512)
        self.demote_key_zone(db, k(0))
        # Hammer reads of key 0: tracker heats it, reads stage a promotion.
        part = db.performance_tier.partition_for_key(k(0))
        for _ in range(part.tracker.discriminator.window_capacity * 5):
            db.get(k(0))
        assert db.stats.counter("promotions_staged").value > 0
        db.finalize()  # flush staging cache into the hot zone
        assert db.promotion.promotions > 0

    def test_staged_copy_served(self):
        db = make_db(nvme_mib=2)
        db.put(k(0), b"hot-object" * 10)
        for i in range(1, 200):
            db.put(k(i), b"x" * 512)
        self.demote_key_zone(db, k(0))
        part = db.performance_tier.partition_for_key(k(0))
        for _ in range(part.tracker.discriminator.window_capacity * 5):
            value, _ = db.get(k(0))
        assert value == b"hot-object" * 10

    def test_put_invalidates_staged_copy(self):
        db = make_db()
        db.promotion.stage(
            __import__("repro.common.records", fromlist=["Record"]).Record(
                k(3), b"stale", 1
            )
        )
        db.put(k(3), b"fresh")
        assert db.get(k(3))[0] == b"fresh"


class TestScan:
    def test_scan_within_nvme(self):
        db = make_db()
        for i in range(100):
            db.put(k(i), bytes([i]))
        out, _ = db.scan(k(10), 20)
        assert [key for key, _ in out] == [k(i) for i in range(10, 30)]

    def test_scan_across_tiers(self):
        db = make_db(nvme_mib=2)
        for i in range(4000):
            db.put(k(i), b"x" * 512)
        assert db.capacity_tier.valid_bytes() > 0  # some keys demoted
        out, _ = db.scan(k(100), 50)
        assert [key for key, _ in out] == [k(i) for i in range(100, 150)]

    def test_scan_skips_deleted(self):
        db = make_db()
        for i in range(30):
            db.put(k(i), b"v")
        db.delete(k(5))
        out, _ = db.scan(k(0), 30)
        keys = [key for key, _ in out]
        assert k(5) not in keys

    def test_scan_across_partitions(self):
        db = make_db()
        step = KEYSPACE // 40
        for i in range(0, KEYSPACE, step):
            db.put(k(i), b"v")
        out, _ = db.scan(k(0), 40)
        assert len(out) == 40
        keys = [key for key, _ in out]
        assert keys == sorted(keys)


class TestAccounting:
    def test_devices_exposed(self):
        db = make_db()
        devs = db.devices()
        assert set(devs) == {"nvme", "sata"}

    def test_space_usage(self):
        db = make_db(nvme_mib=2)
        for i in range(3000):
            db.put(k(i), b"x" * 512)
        usage = db.space_usage()
        assert usage["nvme"] > 0 and usage["sata"] > 0

    def test_write_volume_tracked_by_kind(self):
        db = make_db(nvme_mib=2)
        for i in range(3000):
            db.put(k(i), b"x" * 512)
        nvme_t = db.nvme_device.traffic
        assert nvme_t.write_bytes(TrafficKind.FOREGROUND) > 0
        sata_t = db.sata_device.traffic
        total_sata_writes = sata_t.write_bytes()
        assert total_sata_writes >= sata_t.write_bytes(TrafficKind.MIGRATION)

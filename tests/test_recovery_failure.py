"""Crash-recovery and failure-injection tests."""

import pytest

from repro.common.errors import CapacityError, CorruptionError
from repro.common.keys import encode_key
from repro.common.records import Record
from repro.lsm.blocks import decode_block, encode_block
from repro.lsm.lsmtree import LSMOptions, LSMTree
from repro.lsm.sstable import build_sstable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


def make_fs(mib=32):
    profile = DeviceProfile(
        name="t",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=5e8,
        write_bandwidth=5e8,
    )
    return SimFilesystem(SimDevice(profile))


class TestWALRecovery:
    def options(self):
        return LSMOptions(
            memtable_bytes=16 << 10,
            table_size_bytes=16 << 10,
            level_base_bytes=64 << 10,
            level_multiplier=4,
            num_levels=4,
            wal_group_size=4,
        )

    def test_synced_writes_replayable(self):
        fs = make_fs()
        tree = LSMTree(fs, self.options())
        for i in range(40):  # 10 full groups of 4
            tree.put(encode_key(i), b"v%d" % i)
        # Simulate a crash: rebuild the memtable from the WAL alone.
        replayed = tree.wal.replay()
        keys = {r.key for r in replayed}
        # Everything synced (and not yet flushed) is recoverable.
        for i in range(36):  # the last partial group may be lost
            if encode_key(i) in keys:
                rec = next(r for r in replayed if r.key == encode_key(i))
                assert rec.value == b"v%d" % i

    def test_replay_preserves_order_and_seqnos(self):
        fs = make_fs()
        tree = LSMTree(fs, self.options())
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        tree.put(b"k", b"v3")
        tree.wal.sync()
        replayed = [r for r in tree.wal.replay() if r.key == b"k"]
        assert [r.value for r in replayed] == [b"v1", b"v2", b"v3"]
        assert replayed[0].seqno < replayed[1].seqno < replayed[2].seqno

    def test_wal_reset_after_flush_loses_nothing(self):
        fs = make_fs()
        tree = LSMTree(fs, self.options())
        for i in range(2000):
            tree.put(encode_key(i), b"x" * 64)
        # Flushes have happened; WAL only holds the unflushed tail.
        assert tree.wal.size_bytes < 2000 * 80
        for i in range(0, 2000, 101):
            assert tree.get(encode_key(i))[0] == b"x" * 64


class TestCorruptionDetection:
    def test_flipped_bit_in_block_detected(self):
        fs = make_fs()
        table = build_sstable(
            fs, 1, [Record(encode_key(i), b"v" * 50, i + 1) for i in range(200)]
        )
        handle = table.handles[0]
        # Corrupt one byte of the first data block on "media".
        raw = table.file._data
        raw[handle.offset + 5] ^= 0xFF
        with pytest.raises(CorruptionError):
            table.get(encode_key(0))

    def test_clean_blocks_still_readable_after_corruption_elsewhere(self):
        fs = make_fs()
        table = build_sstable(
            fs, 1, [Record(encode_key(i), b"v" * 50, i + 1) for i in range(200)]
        )
        table.file._data[table.handles[0].offset] ^= 0xFF
        # A key in the last block is unaffected.
        rec, _ = table.get(encode_key(199))
        assert rec is not None

    def test_truncated_block_detected(self):
        block = encode_block([Record(b"k", b"v", 1)])
        with pytest.raises(CorruptionError):
            decode_block(block[:-1])


class TestCapacityPressure:
    def test_device_full_raises_not_corrupts(self):
        fs = make_fs(mib=1)
        tree = LSMTree(fs, LSMOptions(memtable_bytes=8 << 10, wal_group_size=4))
        written = 0
        with pytest.raises(CapacityError):
            for i in range(100_000):
                tree.put(encode_key(i), b"x" * 200)
                written = i
        # Everything that was acknowledged before the failure stays readable.
        for i in range(0, max(1, written - 100), 97):
            value, _ = tree.get(encode_key(i))
            assert value == b"x" * 200

    def test_hyperdb_survives_sustained_overwrite_pressure(self):
        from repro.common.keys import KeyRange
        from repro.core import HyperDB, HyperDBConfig
        from repro.nvme.config import NVMeConfig

        nvme = SimDevice(
            DeviceProfile(
                name="nvme",
                capacity_bytes=2 << 20,
                page_size=4096,
                read_latency_s=8e-5,
                write_latency_s=2e-5,
                read_bandwidth=6.5e9,
                write_bandwidth=3.5e9,
            )
        )
        sata_fs = make_fs(mib=64)
        db = HyperDB(
            nvme,
            sata_fs.device,
            HyperDBConfig(
                key_space=KeyRange(encode_key(0), encode_key(10_000)),
                nvme=NVMeConfig(num_partitions=2, migration_batch_bytes=16 << 10),
            ),
        )
        # Overwrite a small key set far beyond NVMe capacity: watermarks,
        # migration, and compaction must keep both devices within bounds.
        for round_no in range(10):
            for i in range(2000):
                db.put(encode_key(i), bytes([round_no]) * 300)
        assert nvme.used_bytes <= nvme.capacity_bytes
        for i in range(0, 2000, 173):
            value, _ = db.get(encode_key(i))
            assert value == bytes([9]) * 300

"""Unit tests for smaller APIs: batch ingest, semi-SSTable extraction helpers,
rng derivation, and the KVStore interface conveniences."""

import numpy as np
import pytest

from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.common.rng import derive_rng, make_rng
from repro.lsm.lsmtree import LSMOptions, LSMTree
from repro.lsm.semi import SemiSSTable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


def make_fs(mib=32):
    profile = DeviceProfile(
        name="t",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=5e8,
        write_bandwidth=5e8,
    )
    return SimFilesystem(SimDevice(profile))


class TestIngestBatch:
    def options(self, first_level=0):
        return LSMOptions(
            memtable_bytes=8 << 10,
            table_size_bytes=16 << 10,
            level_base_bytes=32 << 10,
            level_multiplier=4,
            num_levels=4,
            first_level=first_level,
            wal_enabled=(first_level == 0),
        )

    def test_ingest_into_l0(self):
        tree = LSMTree(make_fs(), self.options())
        recs = [Record(encode_key(i), b"v", i + 1) for i in range(100)]
        tree.ingest_batch(recs)
        assert tree.get(encode_key(50))[0] == b"v"

    def test_ingest_into_sorted_first_level(self):
        tree = LSMTree(make_fs(), self.options(first_level=1))
        recs = [Record(encode_key(i), b"v", i + 1) for i in range(100)]
        tree.ingest_batch(recs)
        assert tree.get(encode_key(99))[0] == b"v"
        # Level 1 is sorted: tables disjoint.
        tables = list(tree.version.level(1))
        for a, b in zip(tables, tables[1:]):
            assert a.last_key < b.first_key

    def test_ingest_seqnos_respected(self):
        tree = LSMTree(make_fs(), self.options())
        tree.ingest_batch([Record(b"k", b"old", 5)])
        tree.put(b"k", b"new")  # engine seqno continues past the batch
        assert tree.get(b"k")[0] == b"new"

    def test_empty_batch_noop(self):
        tree = LSMTree(make_fs(), self.options())
        assert tree.ingest_batch([]) == 0.0

    def test_ingest_charges_requested_kind(self):
        fs = make_fs()
        tree = LSMTree(fs, self.options())
        recs = [Record(encode_key(i), b"v" * 100, i + 1) for i in range(200)]
        tree.ingest_batch(recs, TrafficKind.MIGRATION)
        assert fs.device.traffic.write_bytes(TrafficKind.MIGRATION) > 0


class TestSemiExtraction:
    def make_table(self):
        fs = make_fs()
        t = SemiSSTable(
            1, fs, KeyRange(encode_key(0), encode_key(10_000)), block_size=512
        )
        t.merge_append(
            [Record(encode_key(i), b"v" * 30, i + 1) for i in range(40)]
        )
        return t

    def test_extract_block_records(self):
        t = self.make_table()
        before = t.num_valid_records
        survivors, service = t.extract_block_records(encode_key(3))
        assert survivors, "block had records"
        assert all(t.contains_key(r.key) is False for r in survivors)
        assert t.num_valid_records == before - len(survivors)
        assert service > 0

    def test_extract_missing_key(self):
        t = self.make_table()
        survivors, service = t.extract_block_records(encode_key(99_999))
        assert survivors == [] and service == 0.0

    def test_keys_from(self):
        t = self.make_table()
        got = t.keys_from(encode_key(35), limit=10)
        assert got == [encode_key(i) for i in range(35, 40)]
        assert t.keys_from(encode_key(0), limit=3) == [
            encode_key(0),
            encode_key(1),
            encode_key(2),
        ]


class TestRng:
    def test_make_rng_deterministic(self):
        a, b = make_rng(7), make_rng(7)
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_derive_rng_independent_streams(self):
        base = make_rng(7)
        r1 = derive_rng(base, 1)
        base2 = make_rng(7)
        base2.integers(0, 2**63 - 1)  # consume the same draw
        r2 = derive_rng(make_rng(7), 2)
        assert r1.integers(0, 10**9) != r2.integers(0, 10**9)


class TestKVStoreInterface:
    def test_multi_put(self):
        from repro.baselines import RocksDBStore

        nvme = SimDevice(
            DeviceProfile(
                name="n",
                capacity_bytes=8 << 20,
                page_size=4096,
                read_latency_s=8e-5,
                write_latency_s=2e-5,
                read_bandwidth=6.5e9,
                write_bandwidth=3.5e9,
            )
        )
        sata = make_fs(64).device
        store = RocksDBStore(nvme, sata)
        total = store.multi_put((encode_key(i), b"v") for i in range(100))
        assert total >= 0
        assert store.get(encode_key(42))[0] == b"v"

"""Tests for the benchmark harness plumbing (not the experiments)."""

import pytest

from repro.bench import BenchScale, STORE_NAMES, build_store, format_table
from repro.bench.reporting import kops, mb
from repro.common.keys import encode_key


class TestBenchScale:
    def test_dataset_math(self):
        s = BenchScale(record_count=1000, value_size=128)
        assert s.record_size == 14 + 8 + 128 + 1  # header incl. flags byte
        assert s.dataset_bytes == 1000 * s.record_size

    def test_device_sizes_follow_ratios(self):
        s = BenchScale(record_count=50_000, nvme_ratio=0.5, sata_multiple=10)
        assert abs(s.nvme_bytes - s.dataset_bytes * 0.5) < 4096
        assert abs(s.sata_bytes - s.dataset_bytes * 10) < 4096

    def test_floors_apply(self):
        s = BenchScale(record_count=10, nvme_ratio=0.01)
        assert s.nvme_bytes >= 512 * 1024

    def test_key_space_covers_inserts(self):
        s = BenchScale(record_count=1000)
        assert s.key_space.contains(encode_key(1000))  # insert headroom
        assert s.key_space.contains(encode_key(1400))

    def test_devices_distinct(self):
        nvme, sata = BenchScale(record_count=1000).devices()
        assert nvme.profile.name == "nvme" and sata.profile.name == "sata"
        assert nvme is not sata


class TestBuildStore:
    @pytest.mark.parametrize("name", STORE_NAMES)
    def test_all_engines_constructible_and_usable(self, name):
        store = build_store(name, BenchScale(record_count=2000))
        store.put(encode_key(1), b"v")
        assert store.get(encode_key(1))[0] == b"v"
        assert set(store.devices()) == {"nvme", "sata"}

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError):
            build_store("leveldb", BenchScale(record_count=100))


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            "T", ["col", "x"], [["a", 1.23456], ["long-cell", 2.0]]
        )
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "long-cell" in lines[4]
        # Header and rows aligned: same prefix width before second column.
        assert lines[1].index("x") == lines[3].index("1.23")

    def test_unit_helpers(self):
        assert mb(1 << 20) == 1.0
        assert kops(2000) == 2.0

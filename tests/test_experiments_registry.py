"""Light tests of the experiment registry (the heavy runs live in
benchmarks/)."""

import numpy as np

from repro.bench.experiments import ALL_EXPERIMENTS, fig6a_interval_correlation


class TestRegistry:
    def test_every_figure_registered(self):
        expected = {
            "fig2", "fig3", "fig6a", "fig8", "fig9a", "fig9b", "fig9c",
            "fig10", "fig11", "queue_depth", "ablations",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_entries_callable_with_docstrings(self):
        for name, fn in ALL_EXPERIMENTS.items():
            assert callable(fn), name
            assert fn.__doc__, f"{name} lacks a docstring"


class TestFig6aUnit:
    # fig6a needs no stores, so it is cheap enough to exercise here.
    def test_result_structure(self):
        result = fig6a_interval_correlation(n_keys=200, accesses=5000)
        assert set(result) >= {"title", "headers", "rows", "raw"}
        assert len(result["rows"]) == 9  # 3 thresholds x 3 histories
        for row in result["rows"]:
            assert len(row) == len(result["headers"])

    def test_deterministic(self):
        a = fig6a_interval_correlation(n_keys=200, accesses=5000, seed=5)
        b = fig6a_interval_correlation(n_keys=200, accesses=5000, seed=5)
        assert a["rows"] == b["rows"]

    def test_probabilities_valid(self):
        result = fig6a_interval_correlation(n_keys=200, accesses=5000)
        for summary in result["raw"].values():
            if summary["objects"] == 0:
                # empty cells are normalized to None (never NaN) so that
                # rows/raw stay equality- and digest-stable
                assert summary["median"] is None
                assert summary["p25"] is None
                assert summary["p75"] is None
                continue
            assert 0.0 <= summary["median"] <= 1.0
            assert summary["p25"] <= summary["p75"] + 1e-12

    def test_parallel_workers_identical_to_serial(self):
        serial = fig6a_interval_correlation(n_keys=200, accesses=5000, workers=1)
        fanned = fig6a_interval_correlation(n_keys=200, accesses=5000, workers=2)
        assert serial["rows"] == fanned["rows"]
        assert serial["raw"] == fanned["raw"]

"""Unit tests for the bloom filter."""

import pytest

from repro.common.bloom import BloomFilter
from repro.common.keys import encode_key


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(capacity=1000)
        keys = [encode_key(i) for i in range(1000)]
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_under_two_percent(self):
        # Paper config: 10 bits/key targets <1%; allow slack for a small sample.
        bf = BloomFilter(capacity=5000, bits_per_key=10)
        for i in range(5000):
            bf.add(encode_key(i))
        fps = sum(1 for i in range(5000, 15000) if encode_key(i) in bf)
        assert fps / 10000 < 0.02

    def test_count_and_is_full(self):
        bf = BloomFilter(capacity=3)
        assert not bf.is_full
        for i in range(3):
            bf.add(encode_key(i))
        assert bf.count == 3
        assert bf.is_full

    def test_duplicates_count_toward_capacity(self):
        bf = BloomFilter(capacity=2)
        bf.add(b"a")
        bf.add(b"a")
        assert bf.is_full

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(capacity=10)
        assert encode_key(1) not in bf
        assert bf.fill_ratio() == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_key=0)

    def test_for_keys_builder(self):
        keys = [encode_key(i) for i in range(50)]
        bf = BloomFilter.for_keys(keys)
        assert all(k in bf for k in keys)
        assert bf.capacity == 50

    def test_for_keys_empty(self):
        bf = BloomFilter.for_keys([])
        assert b"x" not in bf

    def test_fill_ratio_grows(self):
        bf = BloomFilter(capacity=100)
        before = bf.fill_ratio()
        for i in range(100):
            bf.add(encode_key(i))
        assert bf.fill_ratio() > before

    @pytest.mark.parametrize("bits_per_key", [4, 16])
    def test_serialization_round_trip_nondefault_bits(self, bits_per_key):
        keys = [encode_key(i) for i in range(64)]
        bf = BloomFilter(capacity=64, bits_per_key=bits_per_key)
        for k in keys:
            bf.add(k)
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert clone.capacity == 64
        assert clone.bits_per_key == bits_per_key
        assert clone.num_bits == bf.num_bits
        assert clone.num_hashes == bf.num_hashes
        assert clone.count == bf.count
        assert clone.is_full == bf.is_full
        assert all(k in clone for k in keys)
        assert clone.to_bytes() == bf.to_bytes()

    def test_round_trip_partial_fill_preserves_count(self):
        bf = BloomFilter(capacity=100, bits_per_key=16)
        for i in range(10):
            bf.add(encode_key(i))
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert clone.count == 10
        assert not clone.is_full
        clone.add(encode_key(999))
        assert clone.count == 11

    def test_truncated_bit_array_rejected(self):
        bf = BloomFilter(capacity=64, bits_per_key=16)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(bf.to_bytes()[:-1])

    def test_add_many_matches_scalar_adds(self):
        # The vectorized and scalar paths must place identical bits.
        keys = [encode_key(i) for i in range(200)]
        scalar = BloomFilter(capacity=200)
        for k in keys:
            scalar.add(k)
        bulk = BloomFilter(capacity=200)
        bulk.add_many(keys)
        assert scalar.to_bytes() == bulk.to_bytes()

    def test_hashed_api_matches_keyed(self):
        from repro.common.bloom import base_hashes

        bf = BloomFilter(capacity=10)
        h1, h2 = base_hashes(b"k")
        bf.add_hashed(h1, h2)
        assert b"k" in bf
        assert bf.contains_hashed(h1, h2)
        assert bf.count == 1

"""Unit tests for the bloom filter."""

import pytest

from repro.common.bloom import BloomFilter
from repro.common.keys import encode_key


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(capacity=1000)
        keys = [encode_key(i) for i in range(1000)]
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_under_two_percent(self):
        # Paper config: 10 bits/key targets <1%; allow slack for a small sample.
        bf = BloomFilter(capacity=5000, bits_per_key=10)
        for i in range(5000):
            bf.add(encode_key(i))
        fps = sum(1 for i in range(5000, 15000) if encode_key(i) in bf)
        assert fps / 10000 < 0.02

    def test_count_and_is_full(self):
        bf = BloomFilter(capacity=3)
        assert not bf.is_full
        for i in range(3):
            bf.add(encode_key(i))
        assert bf.count == 3
        assert bf.is_full

    def test_duplicates_count_toward_capacity(self):
        bf = BloomFilter(capacity=2)
        bf.add(b"a")
        bf.add(b"a")
        assert bf.is_full

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(capacity=10)
        assert encode_key(1) not in bf
        assert bf.fill_ratio() == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_key=0)

    def test_for_keys_builder(self):
        keys = [encode_key(i) for i in range(50)]
        bf = BloomFilter.for_keys(keys)
        assert all(k in bf for k in keys)
        assert bf.capacity == 50

    def test_for_keys_empty(self):
        bf = BloomFilter.for_keys([])
        assert b"x" not in bf

    def test_fill_ratio_grows(self):
        bf = BloomFilter(capacity=100)
        before = bf.fill_ratio()
        for i in range(100):
            bf.add(encode_key(i))
        assert bf.fill_ratio() > before

"""Tests for the scan prefetcher extension (the paper's §4.2 future work)."""

import numpy as np
import pytest

from repro.common.cache import LRUCache
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.core import HyperDB, HyperDBConfig
from repro.lsm.semi import CapacityTier, SemiLevelConfig, SemiSSTable
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind

KiB = 1024
MiB = 1024 * KiB


def make_fs(mib=64):
    return SimFilesystem(
        SimDevice(
            DeviceProfile(
                name="sata",
                capacity_bytes=mib * MiB,
                page_size=4096,
                read_latency_s=2e-4,
                write_latency_s=6e-5,
                read_bandwidth=5.6e8,
                write_bandwidth=5.1e8,
            )
        )
    )


class TestReadBlocksBulk:
    def make_table(self, fs):
        t = SemiSSTable(
            1, fs, KeyRange(encode_key(0), encode_key(100_000)), block_size=1024
        )
        t.merge_append(
            [Record(encode_key(i), b"v" * 80, i + 1) for i in range(500)]
        )
        return t

    def test_returns_all_requested_blocks(self):
        fs = make_fs()
        t = self.make_table(fs)
        live = [b for b in t.blocks if not b.is_dead]
        out, service = t.read_blocks_bulk(live, TrafficKind.FOREGROUND)
        assert set(out) == {b.block_id for b in live}
        assert service > 0

    def test_coalesced_read_cheaper_than_per_block(self):
        fs = make_fs()
        t = self.make_table(fs)
        live = [b for b in t.blocks if not b.is_dead]
        _, bulk_service = t.read_blocks_bulk(live, TrafficKind.FOREGROUND)
        per_block = sum(
            t._read_block(b, TrafficKind.FOREGROUND)[1] for b in live
        )
        # One command setup for the contiguous run vs one per block.
        assert bulk_service < per_block * 0.6

    def test_bulk_read_populates_cache(self):
        fs = make_fs()
        t = self.make_table(fs)
        cache = LRUCache(4 * MiB)
        live = [b for b in t.blocks if not b.is_dead]
        t.read_blocks_bulk(live, TrafficKind.FOREGROUND, cache)
        fs.device.traffic.reset()
        rec, service = t.get(encode_key(250), TrafficKind.FOREGROUND, cache)
        assert rec is not None and service == 0.0
        assert fs.device.traffic.read_bytes() == 0

    def test_cached_blocks_skipped(self):
        fs = make_fs()
        t = self.make_table(fs)
        cache = LRUCache(4 * MiB)
        live = [b for b in t.blocks if not b.is_dead]
        t.read_blocks_bulk(live, TrafficKind.FOREGROUND, cache)
        fs.device.traffic.reset()
        t.read_blocks_bulk(live, TrafficKind.FOREGROUND, cache)
        assert fs.device.traffic.read_bytes() == 0


class TestScanPrefetch:
    def make_tier(self):
        tier = CapacityTier(
            make_fs(),
            SemiLevelConfig(
                key_space=KeyRange(encode_key(0), encode_key(10_000)),
                num_levels=3,
                size_ratio=4,
                bottom_segments=16,
                level1_target_bytes=64 * KiB,
            ),
            cache=LRUCache(4 * MiB),
        )
        tier.ingest([Record(encode_key(i), b"v" * 100, i + 1) for i in range(3000)])
        return tier

    def test_same_results_with_and_without(self):
        plain = self.make_tier()
        fetched = self.make_tier()
        a, _ = plain.scan(encode_key(100), 50)
        b, _ = fetched.scan(encode_key(100), 50, prefetch=True)
        assert [(r.key, r.value) for r in a] == [(r.key, r.value) for r in b]

    def test_prefetch_reduces_scan_service(self):
        plain = self.make_tier()
        fetched = self.make_tier()
        _, s_plain = plain.scan(encode_key(1000), 100)
        _, s_fetched = fetched.scan(encode_key(1000), 100, prefetch=True)
        assert s_fetched < s_plain

    def test_hyperdb_config_switch(self):
        def build(flag):
            nvme = SimDevice(
                DeviceProfile(
                    name="nvme",
                    capacity_bytes=2 * MiB,
                    page_size=4096,
                    read_latency_s=8e-5,
                    write_latency_s=2e-5,
                    read_bandwidth=6.5e9,
                    write_bandwidth=3.5e9,
                )
            )
            db = HyperDB(
                nvme,
                make_fs().device,
                HyperDBConfig(
                    key_space=KeyRange(encode_key(0), encode_key(10_000)),
                    nvme=NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
                    enable_scan_prefetch=flag,
                ),
            )
            for i in range(5000):
                db.put(encode_key(i), b"x" * 300)
            return db

        plain, fetched = build(False), build(True)
        a, s_plain = plain.scan(encode_key(500), 50)
        b, s_fetched = fetched.scan(encode_key(500), 50)
        assert a == b
        # End-to-end the win depends on how much of the scan the capacity
        # tier serves; prefetching may over-read candidates the NVMe stream
        # shadows, so we only require it not to be a regression-by-much.
        assert s_fetched <= s_plain * 1.25

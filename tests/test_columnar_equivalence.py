"""Columnar execution equivalence (the columnar contract).

The columnar mode vectorizes pure work — bloom probes, candidate-table
resolution, latency attribution, grouped device charging — but every I/O
still lands in op order.  These tests enforce the contract end to end:
the e2e digest (traffic ledgers, utilization, space, raw latency
samples) must be byte-identical across ``per-op``, ``batched``, and
``columnar`` dispatch for both engines, across all YCSB mixes, and with
a fault injector and health windows active (where the guarded devices
must fall back to the scalar paths without skipping any charge).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.context import BenchScale, build_store
from repro.common.bloom import BloomFilter, hash_many
from repro.common.keys import KeyRange, encode_key, encode_keys
from repro.core import HyperDB, HyperDBConfig
from repro.health.state import HealthState, HealthWindow
from repro.nvme.config import NVMeConfig
from repro.perf.harness import _run_digest
from repro.simssd import (
    NVME_PROFILE,
    SATA_PROFILE,
    FaultInjector,
    FaultPlan,
    SimDevice,
    TrafficKind,
)
from repro.ycsb.runner import WorkloadRunner
from repro.ycsb.workload import YCSB_WORKLOADS

KiB = 1024

SCALE_KW = dict(
    record_count=500,
    operations=500,
    value_size=96,
    clients=4,
    background_threads=4,
    seed=13,
)

MODES = ("per-op", "batched", "columnar")


def _digest_for(store_factory, workload: str, mode: str):
    scale = BenchScale(**SCALE_KW)
    store = store_factory(scale)
    runner = WorkloadRunner(
        store,
        record_count=scale.record_count,
        value_size=scale.value_size,
        clients=scale.clients,
        background_threads=scale.background_threads,
        seed=scale.seed,
        mode=mode,
    )
    load_total = runner.load()
    result = runner.run(YCSB_WORKLOADS[workload], SCALE_KW["operations"])
    counters = None
    stats = getattr(store, "stats", None)
    if stats is not None:
        counters = [(name, c.value) for name, c in stats.counters.items()]
    return _run_digest(load_total, result), counters


def _assert_all_modes_equal(store_factory, workload: str) -> None:
    digests = {}
    counter_views = {}
    for mode in MODES:
        digests[mode], counter_views[mode] = _digest_for(
            store_factory, workload, mode
        )
    assert digests["batched"] == digests["per-op"], f"{workload}: batched != per-op"
    assert digests["columnar"] == digests["per-op"], f"{workload}: columnar != per-op"
    # Counter registries must agree in value AND insertion order: fused
    # paths create counters lazily exactly where the per-op path does.
    assert counter_views["batched"] == counter_views["per-op"]
    assert counter_views["columnar"] == counter_views["per-op"]


# ----------------------------------------------------- unguarded, all mixes


@pytest.mark.parametrize("workload", sorted(YCSB_WORKLOADS))
def test_hyperdb_three_modes_identical(workload):
    _assert_all_modes_equal(lambda s: build_store("hyperdb", s), workload)


@pytest.mark.parametrize("workload", sorted(YCSB_WORKLOADS))
def test_rocksdb_three_modes_identical(workload):
    _assert_all_modes_equal(lambda s: build_store("rocksdb", s), workload)


# ------------------------------------------- guarded: injector + windows


def _faulted_hyperdb(scale: BenchScale) -> HyperDB:
    # Brownout both tiers mid-run: the guarded devices force every batch
    # entry point onto its per-op fallback, and window boundaries must
    # land between ops identically in all three modes.
    windows = (
        HealthWindow("nvme-sim", HealthState.BROWNOUT, 200, 900, 4.0),
        HealthWindow("sata-sim", HealthState.BROWNOUT, 400, 1600, 8.0),
    )
    inj = FaultInjector(FaultPlan(seed=5, health_windows=windows))
    nvme = SimDevice(NVME_PROFILE.with_capacity(scale.nvme_bytes), injector=inj)
    sata = SimDevice(SATA_PROFILE.with_capacity(scale.sata_bytes), injector=inj)
    d = scale.dataset_bytes
    return HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=scale.key_space,
            nvme=NVMeConfig(
                num_partitions=2,
                initial_zones_per_partition=2,
                migration_batch_bytes=max(16 * KiB, d // 32),
            ),
            semi_num_levels=3,
            semi_size_ratio=8,
            semi_bottom_segments=64,
            semi_level1_target_bytes=max(128 * KiB, d // 4),
            dram_cache_bytes=max(64 * KiB, d // 16),
        ),
    )


@pytest.mark.parametrize("workload", ["A", "B"])
def test_hyperdb_three_modes_identical_under_faults(workload):
    _assert_all_modes_equal(_faulted_hyperdb, workload)


def test_guarded_device_never_skips_charges():
    """An injector disables the device fast path but not the ledger.

    The same charge sequence on a guarded device (no-op fault plan) and
    an unguarded one must produce bit-identical traffic — the fast path
    is an implementation detail of *how* charges are noted, never
    *whether*.
    """
    guarded = SimDevice(
        NVME_PROFILE.with_capacity(1 << 20),
        injector=FaultInjector(FaultPlan(seed=0)),
    )
    plain = SimDevice(NVME_PROFILE.with_capacity(1 << 20))
    assert not guarded._fastpath
    assert plain._fastpath
    for dev in (guarded, plain):
        dev.allocate(8)
        dev.write_pages(3, TrafficKind.FOREGROUND, sequential=False)
        dev.read_pages(2, TrafficKind.FOREGROUND, sequential=False)
        dev.write_pages_batch([1, 2, 1], TrafficKind.GC, sequential=False)
        dev.read_pages_batch([2, 1], TrafficKind.MIGRATION, sequential=True)
        dev.write_bytes_io(6000, TrafficKind.COMPACTION, sequential=True)
        dev.read_bytes_io(4096, TrafficKind.FOREGROUND)
    assert guarded.traffic.snapshot() == plain.traffic.snapshot()
    assert guarded.busy_seconds() == plain.busy_seconds()


# ------------------------------------------------- vectorized primitives


def test_contains_many_matches_scalar_contains():
    keys = [b"k%05d" % i for i in range(400)]
    bf = BloomFilter.for_keys(keys[::2], bits_per_key=10)
    probes = keys + [b"", b"\x00", b"k00001\x00", b"\xff" * 12]
    verdicts = bf.contains_many(hash_many(probes))
    for key, v in zip(probes, verdicts.tolist()):
        assert v == (key in bf), key


def test_tables_for_keys_matches_scalar_bisect():
    scale = BenchScale(**SCALE_KW)
    store = build_store("rocksdb", scale)
    # Enough data to push tables past L0 into the sorted levels.
    kids = list(range(scale.record_count * 6))
    store.put_many(encode_keys(kids), [b"v" * 96 for _ in kids])
    store.finalize()
    tree = store.tree
    tree.maybe_compact()
    probes = encode_keys(
        [0, 1, 7, 99, 250, 499, 500, 1000, scale.record_count * 2]
    ) + [b"", b"\xff" * 9]
    checked_levels = 0
    for lvl in tree.version.all_levels():
        if lvl.overlapping_allowed or not lvl.tables:
            continue
        batch = lvl.tables_for_keys(probes)
        for key, got in zip(probes, batch):
            assert got is lvl.table_for_key(key)
        checked_levels += 1
    assert checked_levels > 0, "load produced no sorted level to check"


def test_sstable_get_nobloom_matches_get():
    scale = BenchScale(**SCALE_KW)
    store = build_store("rocksdb", scale)
    kids = list(range(300))
    store.put_many(encode_keys(kids), [b"w" * 96 for _ in kids])
    store.finalize()
    tree = store.tree
    tables = [t for lvl in tree.version.all_levels() for t in lvl.tables]
    assert tables
    table = tables[0]
    probes = [table.first_key, table.last_key, table.first_key + b"\x00", b"zz"]
    for key in probes:
        # Bypass the cache so both calls charge identically.
        expect = table.get(key, TrafficKind.FOREGROUND, None)
        got = table.get_nobloom(key, TrafficKind.FOREGROUND, None)
        if key in table.bloom:
            assert got == expect
        else:
            # get() short-circuits on the bloom; nobloom still must agree
            # on the verdict for keys genuinely absent from the block.
            assert got[0] == expect[0] is None


def test_memtable_deferred_order_is_observably_sorted():
    from repro.lsm.memtable import MemTable

    mt = MemTable(1 << 20, seed=3)
    rng = np.random.default_rng(9)
    from repro.common.records import Record

    keys = [b"m%06d" % int(x) for x in rng.integers(0, 5000, size=800)]
    for i, k in enumerate(keys):
        mt.put(Record(k, b"x%04d" % i, i + 1))
    # Interleave an ordered access with more puts: the backlog must merge
    # incrementally without losing or duplicating keys.
    assert mt.first_key() == min(keys)
    for i, k in enumerate([b"a-low", b"z-high", keys[0]]):
        mt.put(Record(k, b"y", 10_000 + i))
    out = [r.key for r in mt.records()]
    assert out == sorted(set(keys) | {b"a-low", b"z-high"})
    assert mt.last_key() == b"z-high"
    assert len(mt) == len(out)
    # Replacements keep size accounting exact.
    assert mt.get(keys[0]).value == b"y"

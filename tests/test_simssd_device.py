"""Unit tests for device profiles and the simulated device."""

import pytest

from repro.common.errors import CapacityError
from repro.simssd import NVME_PROFILE, SATA_PROFILE, DeviceProfile, SimDevice, TrafficKind


def tiny_profile(**kw):
    defaults = dict(
        name="tiny",
        capacity_bytes=64 * 4096,
        page_size=4096,
        read_latency_s=100e-6,
        write_latency_s=50e-6,
        read_bandwidth=100e6,
        write_bandwidth=50e6,
    )
    defaults.update(kw)
    return DeviceProfile(**defaults)


class TestDeviceProfile:
    def test_default_profiles_valid(self):
        assert NVME_PROFILE.num_pages > 0
        assert SATA_PROFILE.num_pages > 0
        # The point of the heterogeneous setup: NVMe is strictly faster.
        assert NVME_PROFILE.read_latency_s < SATA_PROFILE.read_latency_s
        assert NVME_PROFILE.read_bandwidth > SATA_PROFILE.read_bandwidth

    def test_sequential_cheaper_than_random(self):
        p = tiny_profile()
        assert p.read_service_time(8, sequential=True) < p.read_service_time(
            8, sequential=False
        )

    def test_single_page_equal_cost(self):
        p = tiny_profile()
        assert p.read_service_time(1, True) == pytest.approx(
            p.read_service_time(1, False)
        )

    def test_service_time_formula(self):
        p = tiny_profile()
        assert p.write_service_time(2, sequential=True) == pytest.approx(
            50e-6 + 2 * 4096 / 50e6
        )
        assert p.write_service_time(2, sequential=False) == pytest.approx(
            2 * (50e-6 + 4096 / 50e6)
        )

    def test_with_capacity_rounds_up(self):
        p = tiny_profile().with_capacity(5000)
        assert p.capacity_bytes == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_profile(capacity_bytes=0)
        with pytest.raises(ValueError):
            tiny_profile(capacity_bytes=4097)
        with pytest.raises(ValueError):
            tiny_profile(read_bandwidth=0)
        with pytest.raises(ValueError):
            tiny_profile(read_latency_s=-1)


class TestSimDevice:
    def test_allocation_and_capacity(self):
        d = SimDevice(tiny_profile())
        d.allocate(10)
        assert d.allocated_pages == 10
        assert d.free_pages == 54
        assert d.used_bytes == 10 * 4096
        with pytest.raises(CapacityError):
            d.allocate(55)

    def test_trim(self):
        d = SimDevice(tiny_profile())
        d.allocate(10)
        d.trim(4)
        assert d.allocated_pages == 6
        # Over-trim clamps at zero (double-free during degraded rebuild
        # must not underflow the allocator).
        d.trim(7)
        assert d.allocated_pages == 0

    def test_allocate_out_of_space_message(self):
        from repro.common.errors import OutOfSpaceError

        d = SimDevice(tiny_profile())  # 64 pages
        d.allocate(60)
        with pytest.raises(OutOfSpaceError) as exc:
            d.allocate(10)
        msg = str(exc.value)
        assert "'tiny'" in msg          # device name
        assert "10 page(s)" in msg      # requested
        assert "4 of 64 free" in msg    # free pages
        # Still a CapacityError for callers that degrade on capacity.
        assert isinstance(exc.value, CapacityError)
        assert d.allocated_pages == 60  # failed allocation changed nothing

    def test_fill_fraction(self):
        d = SimDevice(tiny_profile())
        d.allocate(32)
        assert d.fill_fraction == 0.5

    def test_io_charges_traffic_by_kind(self):
        d = SimDevice(tiny_profile())
        d.read_pages(4, TrafficKind.FOREGROUND)
        d.write_pages(2, TrafficKind.COMPACTION)
        assert d.traffic.read_bytes(TrafficKind.FOREGROUND) == 4 * 4096
        assert d.traffic.write_bytes(TrafficKind.COMPACTION) == 2 * 4096
        assert d.traffic.read_bytes(TrafficKind.COMPACTION) == 0

    def test_random_read_counts_per_page_ios(self):
        d = SimDevice(tiny_profile())
        d.read_pages(4, TrafficKind.FOREGROUND, sequential=False)
        d.read_pages(4, TrafficKind.FOREGROUND, sequential=True)
        assert d.traffic.read_ios() == 4 + 1

    def test_zero_pages_free(self):
        d = SimDevice(tiny_profile())
        assert d.read_pages(0, TrafficKind.FOREGROUND) == 0.0
        assert d.write_pages(0, TrafficKind.FLUSH) == 0.0
        assert d.busy_seconds() == 0.0

    def test_byte_io_rounds_to_pages(self):
        d = SimDevice(tiny_profile())
        d.write_bytes_io(100, TrafficKind.WAL)
        assert d.traffic.write_bytes(TrafficKind.WAL) == 4096
        d.read_bytes_io(4097, TrafficKind.FOREGROUND)
        assert d.traffic.read_bytes(TrafficKind.FOREGROUND) == 8192

    def test_busy_time_accumulates(self):
        d = SimDevice(tiny_profile())
        t1 = d.read_pages(1, TrafficKind.FOREGROUND)
        t2 = d.write_pages(1, TrafficKind.FLUSH)
        assert d.busy_seconds() == pytest.approx(t1 + t2)

    def test_utilization(self):
        d = SimDevice(tiny_profile())
        d.read_pages(10, TrafficKind.FOREGROUND)
        busy = d.busy_seconds()
        assert d.utilization(busy * 2) == pytest.approx(0.5)
        assert d.utilization(0) == 0.0
        # Unclamped: over-charging an interval is an accounting signal the
        # old min(1.0, ...) clamp used to hide.
        assert d.utilization(busy / 10) == pytest.approx(10.0)
        assert d.queue_utilization(busy) == [pytest.approx(1.0)]

    def test_background_busy_excludes_foreground_and_wal(self):
        d = SimDevice(tiny_profile())
        d.read_pages(1, TrafficKind.FOREGROUND)
        d.write_pages(1, TrafficKind.WAL)
        d.write_pages(5, TrafficKind.COMPACTION)
        d.write_pages(2, TrafficKind.MIGRATION)
        assert d.traffic.background_busy_seconds() == pytest.approx(
            d.traffic.busy_seconds(TrafficKind.COMPACTION)
            + d.traffic.busy_seconds(TrafficKind.MIGRATION)
        )
        assert d.traffic.background_bytes() == 7 * 4096

    def test_latency_transfer_split(self):
        d = SimDevice(tiny_profile())
        d.read_pages(4, TrafficKind.FOREGROUND, sequential=False)
        t = d.traffic
        assert t.latency_seconds() == pytest.approx(4 * 100e-6)
        assert t.transfer_seconds() == pytest.approx(4 * 4096 / 1e8)
        assert t.busy_seconds() == pytest.approx(
            t.latency_seconds() + t.transfer_seconds()
        )

    def test_traffic_snapshot_and_reset(self):
        d = SimDevice(tiny_profile())
        d.write_pages(1, TrafficKind.MIGRATION)
        snap = d.traffic.snapshot()
        assert snap["migration"]["write_bytes"] == 4096
        d.traffic.reset()
        assert d.traffic.total_bytes() == 0

"""Tests for segmented semi-SSTable levels and preemptive block compaction."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ReproError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.semi import CapacityTier, SemiLevelConfig, SemiLevels
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind

KEYSPACE = 100_000


def make_fs(mib=256):
    profile = DeviceProfile(
        name="sata",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=2e-4,
        write_latency_s=6e-5,
        read_bandwidth=5.6e8,
        write_bandwidth=5.1e8,
    )
    return SimFilesystem(SimDevice(profile))


def config(**kw):
    defaults = dict(
        key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
        num_levels=3,
        size_ratio=4,
        bottom_segments=16,
        block_size=1024,
        level1_target_bytes=16 << 10,
    )
    defaults.update(kw)
    return SemiLevelConfig(**defaults)


def recs(ids, value=b"v" * 32, seqno_base=1):
    return [Record(encode_key(i), value, seqno_base + n) for n, i in enumerate(ids)]


class TestSemiLevelConfig:
    def test_segments_at(self):
        c = config()
        assert c.segments_at(3) == 16
        assert c.segments_at(2) == 4
        assert c.segments_at(1) == 1

    def test_target_bytes_geometric(self):
        c = config()
        assert c.target_bytes(2) == c.target_bytes(1) * 4
        assert c.target_bytes(3) == c.target_bytes(1) * 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            config(num_levels=1)
        with pytest.raises(ConfigError):
            config(size_ratio=1)
        with pytest.raises(ConfigError):
            config(bottom_segments=2)  # < size_ratio^(levels-1)
        with pytest.raises(ConfigError):
            config(key_space=KeyRange(encode_key(0), None))


class TestSemiLevels:
    def test_lazy_table_creation(self):
        levels = SemiLevels(make_fs(), config())
        assert levels.table_for_key(1, encode_key(5)) is None
        t = levels.table_for_key(1, encode_key(5), create=True)
        assert t is not None
        assert levels.table_for_key(1, encode_key(5)) is t

    def test_key_outside_space_rejected(self):
        levels = SemiLevels(make_fs(), config())
        with pytest.raises(ReproError):
            levels.table_for_key(1, encode_key(KEYSPACE + 1))

    def test_segment_ranges_partition_key_space(self):
        levels = SemiLevels(make_fs(), config())
        c = config()
        for level_no in (1, 2, 3):
            nseg = c.segments_at(level_no)
            ranges = [levels.segment_range(level_no, s) for s in range(nseg)]
            assert ranges[0].lo == encode_key(0)
            assert ranges[-1].hi == encode_key(KEYSPACE)
            for a, b in zip(ranges, ranges[1:]):
                assert a.hi == b.lo

    def test_same_key_same_segment_at_each_level(self):
        levels = SemiLevels(make_fs(), config())
        for key_id in (0, 1, 12_345, KEYSPACE - 1):
            key = encode_key(key_id)
            for level_no in (1, 2, 3):
                seg = levels.level(level_no).segment_of(key)
                assert levels.segment_range(level_no, seg).contains(key)

    def test_tables_overlapping(self):
        levels = SemiLevels(make_fs(), config())
        t = levels.table_for_key(3, encode_key(0), create=True)
        hits = levels.tables_overlapping(3, encode_key(0), encode_key(10))
        assert hits == [t]
        assert levels.tables_overlapping(3, encode_key(50_000), encode_key(50_001)) == []


class TestCapacityTier:
    def test_ingest_and_get(self):
        tier = CapacityTier(make_fs(), config())
        tier.ingest(recs(range(1000)))
        rec, _ = tier.get(encode_key(500))
        assert rec is not None and rec.value == b"v" * 32

    def test_ingest_unsorted_batch(self):
        tier = CapacityTier(make_fs(), config())
        ids = list(range(500))
        np.random.default_rng(1).shuffle(ids)
        tier.ingest(recs(ids))
        for i in (0, 250, 499):
            rec, _ = tier.get(encode_key(i))
            assert rec is not None

    def test_ingest_duplicate_keys_newest_wins(self):
        tier = CapacityTier(make_fs(), config())
        batch = recs([7], value=b"old", seqno_base=1) + recs([7], value=b"new", seqno_base=100)
        tier.ingest(batch)
        rec, _ = tier.get(encode_key(7))
        assert rec.value == b"new"

    def test_compaction_triggered_and_levels_bounded(self):
        tier = CapacityTier(make_fs(), config())
        rng = np.random.default_rng(0)
        seq = 1
        for _ in range(30):
            ids = rng.integers(0, KEYSPACE, size=400)
            tier.ingest(recs(ids.tolist(), seqno_base=seq))
            seq += 500
        assert tier.compactor.stats.compactions > 0
        for level_no in range(1, tier.levels.num_levels):
            score = tier.compactor.level_score(level_no)
            assert score < 2.0, f"L{level_no} score {score}"

    def test_values_survive_compaction(self):
        tier = CapacityTier(make_fs(), config())
        seq = 1
        for round_no in range(20):
            tier.ingest(recs(range(2000), value=b"r%02d" % round_no, seqno_base=seq))
            seq += 2001
        for i in range(0, 2000, 111):
            rec, _ = tier.get(encode_key(i))
            assert rec is not None, i
            assert rec.value == b"r19"

    def test_preemptive_records_counted(self):
        tier = CapacityTier(make_fs(), config(), depth=2)
        rng = np.random.default_rng(7)
        seq = 1
        # Repeated overwrites of the same keys create deep duplicates that
        # preemptive compaction can route past the middle level.
        for _ in range(40):
            ids = rng.integers(0, 5000, size=400)
            tier.ingest(recs(ids.tolist(), seqno_base=seq))
            seq += 500
        assert tier.compactor.stats.preemptive_records > 0

    def test_newest_version_wins_across_levels(self):
        tier = CapacityTier(make_fs(), config())
        seq = 1
        for round_no in range(10):
            tier.ingest(recs(range(0, 3000, 3), value=b"%03d" % round_no, seqno_base=seq))
            seq += 1001
        rec, _ = tier.get(encode_key(0))
        assert rec.value == b"009"

    def test_tombstone_roundtrip(self):
        tier = CapacityTier(make_fs(), config())
        tier.ingest(recs(range(100)))
        tier.ingest([Record.tombstone(encode_key(5), 10**6)])
        rec, _ = tier.get(encode_key(5))
        assert rec is not None and rec.is_tombstone

    def test_scan_sorted_no_tombstones(self):
        tier = CapacityTier(make_fs(), config())
        tier.ingest(recs(range(200)))
        tier.ingest([Record.tombstone(encode_key(50), 10**6)])
        out, _ = tier.scan(encode_key(40), 20)
        keys = [r.key for r in out]
        assert keys == sorted(keys)
        assert encode_key(50) not in keys
        assert len(out) == 20

    def test_contains_key_no_io(self):
        tier = CapacityTier(make_fs(), config())
        tier.ingest(recs(range(100)))
        tier.fs.device.traffic.reset()
        assert tier.contains_key(encode_key(50))
        assert not tier.contains_key(encode_key(50_000))
        assert tier.fs.device.traffic.read_bytes(TrafficKind.FOREGROUND) == 0

    def test_space_amplification_bounded(self):
        tier = CapacityTier(make_fs(), config(), space_amp_limit=1.5, t_clean=0.4)
        rng = np.random.default_rng(3)
        seq = 1
        for _ in range(60):
            ids = rng.integers(0, 3000, size=300)
            tier.ingest(recs(ids.tolist(), seqno_base=seq))
            seq += 400
        # Stale blocks accumulate but full compaction keeps the debt bounded.
        assert tier.space_amplification() < 3.0

    def test_compaction_io_attributed_to_levels(self):
        tier = CapacityTier(make_fs(), config())
        rng = np.random.default_rng(5)
        seq = 1
        for _ in range(30):
            ids = rng.integers(0, KEYSPACE, size=400)
            tier.ingest(recs(ids.tolist(), seqno_base=seq))
            seq += 500
        stats = tier.compactor.stats
        assert stats.total_write_bytes() > 0
        assert set(stats.write_bytes_by_level) <= {2, 3}

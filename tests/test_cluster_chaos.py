"""Tests for the cluster chaos harness (repro.chaos.cluster): the scenario
matrix, the cluster-wide integrity oracle, serial/parallel report
equivalence, and the degraded-throughput measurement."""

import pytest

from repro.chaos.cluster import (
    ClusterScenario,
    ClusterSoakResult,
    NodeWindowSpec,
    _Oracle,
    _resolve_node_windows,
    default_cluster_scenarios,
    measure_cluster_throughput,
    run_cluster_scenario,
    run_cluster_soak,
    smoke_cluster_scenarios,
)
from repro.health.state import HealthState


class TestScenarioDefinitions:
    def test_full_matrix_shape(self):
        names = [s.name for s in default_cluster_scenarios()]
        assert names == [
            "cluster-node-outage",
            "cluster-rolling-brownouts",
            "cluster-outage-during-rebalance",
            "cluster-node-drain",
            "cluster-strict-quorum-outage",
            "cluster-latent-scrub",
            "cluster-latent-outage",
        ]

    def test_smoke_is_a_subset(self):
        full = {s.name for s in default_cluster_scenarios()}
        smoke = [s.name for s in smoke_cluster_scenarios()]
        assert set(smoke) <= full and len(smoke) == 2

    def test_every_scenario_config_is_valid(self):
        for s in default_cluster_scenarios():
            cfg = s.config()
            assert cfg.read_quorum + cfg.write_quorum > cfg.replication_factor

    def test_window_fractions_resolve_to_op_ordinals(self):
        sc = ClusterScenario(
            name="x",
            num_ops=200,
            windows=(NodeWindowSpec("node-1", HealthState.OFFLINE, 0.25, 0.50),),
        )
        (w,) = _resolve_node_windows(sc)
        assert (w.start_io, w.end_io) == (50, 100)
        assert w.device == "node-1"


class TestOracle:
    def result(self):
        return ClusterSoakResult(scenario="t")

    def test_acked_value_reads_back_ok(self):
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.classify(b"k", b"v1", r, final=False)
        assert r.reads_ok == 1 and r.lost_writes == 0

    def test_missing_acked_write_is_loss(self):
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.classify(b"k", None, r, final=True)
        assert r.lost_writes == 1 and r.keys_verified == 1

    def test_older_value_is_stale(self):
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.acked(b"k", b"v2")
        o.classify(b"k", b"v1", r, final=True)
        assert r.stale_reads == 1

    def test_acked_delete_returning_value_is_resurrection(self):
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.acked(b"k", None)
        o.classify(b"k", b"v1", r, final=True)
        assert r.resurrections == 1

    def test_partial_write_surfacing_is_indeterminate_not_loss(self):
        # A sub-quorum write that landed on a minority replica may win
        # newest-seqno resolution; reading it is legal, never loss.
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.partial(b"k", b"v2")
        o.classify(b"k", b"v2", r, final=True)
        assert r.indeterminate_reads == 1
        assert r.lost_writes == r.stale_reads == r.resurrections == 0

    def test_next_ack_clears_maybe_set(self):
        o, r = _Oracle(), self.result()
        o.partial(b"k", b"v-partial")
        o.acked(b"k", b"v-acked")
        o.classify(b"k", b"v-partial", r, final=True)
        assert r.stale_reads == 1 and r.indeterminate_reads == 0

    def test_partial_tombstone_none_read_is_indeterminate(self):
        o, r = _Oracle(), self.result()
        o.acked(b"k", b"v1")
        o.partial(b"k", None)  # unacked delete landed on one replica
        o.classify(b"k", None, r, final=True)
        assert r.indeterminate_reads == 1 and r.lost_writes == 0


class TestScenarioRuns:
    def test_node_outage_scenario_passes(self):
        sc = {s.name: s for s in default_cluster_scenarios(num_ops=160)}
        r = run_cluster_scenario(sc["cluster-node-outage"], seed=0)
        assert r.passed, r.summary()
        assert r.hints_stored > 0 and r.hints_replayed > 0
        assert r.keys_verified > 0

    def test_outage_during_rebalance_passes(self):
        sc = {s.name: s for s in default_cluster_scenarios(num_ops=160)}
        r = run_cluster_scenario(sc["cluster-outage-during-rebalance"], seed=0)
        assert r.passed, r.summary()
        assert r.rebalance_jobs > 0

    def test_strict_quorum_counts_unavailability_never_loss(self):
        sc = {s.name: s for s in default_cluster_scenarios(num_ops=160)}
        r = run_cluster_scenario(sc["cluster-strict-quorum-outage"], seed=0)
        assert r.passed, r.summary()
        assert r.unavailable_writes > 0
        assert r.lost_writes == 0

    def test_scenario_is_deterministic(self):
        sc = smoke_cluster_scenarios(num_ops=120)[0]
        a = run_cluster_scenario(sc, seed=3)
        b = run_cluster_scenario(sc, seed=3)
        assert a.summary() == b.summary()

    def test_seed_changes_the_run(self):
        sc = smoke_cluster_scenarios(num_ops=120)[0]
        a = run_cluster_scenario(sc, seed=0)
        b = run_cluster_scenario(sc, seed=7)
        assert a.summary() != b.summary()


class TestSoakFanOut:
    @pytest.fixture(scope="class")
    def reports(self):
        scenarios = smoke_cluster_scenarios(num_ops=120)
        serial = run_cluster_soak(scenarios, seed=0, workers=1)
        parallel = run_cluster_soak(scenarios, seed=0, workers=2)
        return serial, parallel

    def test_soak_passes(self, reports):
        serial, _ = reports
        assert serial.passed
        assert len(serial.results) == 2

    def test_serial_and_parallel_reports_identical(self, reports):
        serial, parallel = reports
        assert serial.summary() == parallel.summary()


class TestThroughputMeasurement:
    def test_degraded_ratio_and_determinism(self):
        a = measure_cluster_throughput(num_ops=120, seed=0)
        b = measure_cluster_throughput(num_ops=120, seed=0)
        assert a == b
        assert a["sim_ops_per_s_healthy"] > 0
        assert 0 < a["degraded_over_healthy"]
        assert a["hints_stored"] > 0
        assert a["unavailable_ops_degraded"] >= 0

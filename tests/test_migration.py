"""Unit tests for the migration scheduler and promotion manager."""

import pytest

from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.semi import CapacityTier, SemiLevelConfig
from repro.migration import MigrationScheduler, PromotionManager
from repro.nvme import NVMeConfig, PerformanceTier
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind

KEYSPACE = 20_000
KiB = 1024
MiB = 1024 * KiB


def nvme_device(mib=2):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


def sata_fs(mib=64):
    return SimFilesystem(
        SimDevice(
            DeviceProfile(
                name="sata",
                capacity_bytes=mib * MiB,
                page_size=4096,
                read_latency_s=2e-4,
                write_latency_s=6e-5,
                read_bandwidth=5.6e8,
                write_bandwidth=5.1e8,
            )
        )
    )


def make_tiers(nvme_mib=2):
    perf = PerformanceTier(
        nvme_device(nvme_mib),
        KeyRange(encode_key(0), encode_key(KEYSPACE)),
        NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
    )
    cap = CapacityTier(
        sata_fs(),
        SemiLevelConfig(
            key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
            num_levels=3,
            size_ratio=4,
            bottom_segments=16,
            level1_target_bytes=128 * KiB,
        ),
    )
    return perf, cap


def rec(i, size=400, seqno=None):
    return Record(encode_key(i), b"x" * size, seqno if seqno is not None else i + 1)


class TestMigrationScheduler:
    def test_noop_below_watermark(self):
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        perf.put(rec(1))
        assert sched.run_if_needed() == 0
        assert sched.stats.demotion_jobs == 0

    def test_demotes_until_low_watermark(self):
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        i = 0
        while not perf.partitions_over_watermark() and i < KEYSPACE:
            perf.put(rec(i))
            i += 1
        zones = sched.run_if_needed()
        assert zones > 0
        assert not perf.partitions_over_watermark()
        assert sched.stats.demoted_objects > 0
        assert cap.valid_bytes() > 0

    def test_demoted_values_readable_from_capacity_tier(self):
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        for i in range(1500):
            perf.put(rec(i))
            sched.run_if_needed()
        # Every key is on exactly one of the two tiers.
        for i in range(0, 1500, 53):
            key = encode_key(i)
            on_nvme = perf.contains(key)
            got, _ = cap.get(key)
            assert on_nvme or (got is not None and got.value == b"x" * 400), i

    def test_one_job_per_partition_invocation(self):
        # Regression: demotion_jobs used to count every demoted *zone*; a
        # job is one background migration invocation per partition and may
        # demote many zones before it finishes.
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        i = 0
        while not perf.partitions_over_watermark() and i < KEYSPACE:
            perf.put(rec(i))
            i += 1
        zones = sched.run_if_needed()
        assert zones > 1  # the drain to the low watermark spans zones
        assert sched.stats.demotion_jobs <= len(perf.partitions)
        assert sched.stats.demotion_jobs < zones

    def test_stats_track_bytes(self):
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        for i in range(1500):
            perf.put(rec(i))
            sched.run_if_needed()
        assert sched.stats.demoted_bytes >= sched.stats.demoted_objects * 400

    def test_max_zones_per_job_caps_one_invocation(self):
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap, max_zones_per_job=1)
        i = 0
        while not perf.partitions_over_watermark() and i < KEYSPACE:
            perf.put(rec(i))
            i += 1
        over = [p for p in perf.partitions if p.over_high_watermark()]
        zones = sched.run_if_needed()
        # One job per over-watermark partition, each demoting at most one
        # zone despite the partition still sitting above its low watermark.
        assert 0 < zones <= len(over)
        assert sched.stats.demotion_jobs == len(over)
        # Repeated invocations still drain the tier to the watermark.
        for _ in range(200):
            if not perf.partitions_over_watermark():
                break
            sched.run_if_needed()
        assert not perf.partitions_over_watermark()

    def test_hot_zone_only_partition_terminates_with_zero_zones(self):
        # Edge case: every object lives in the hot zone (promotions), so
        # select_demotion_zone() keeps answering None.  The job must
        # terminate immediately with zero zones instead of spinning.
        perf, cap = make_tiers()
        sched = MigrationScheduler(perf, cap)
        part = perf.partitions[0]
        i = 0
        while part.below_low_watermark() and i < KEYSPACE:
            if perf.partition_for_key(encode_key(i)) is part:
                part.promote(rec(i))
            i += 1
        assert not part.below_low_watermark()
        assert part.select_demotion_zone() is None
        assert sched._demote_partition(part) == 0
        assert sched.stats.demotion_jobs == 1
        assert sched.stats.demoted_objects == 0


class TestPromotionManager:
    def test_stage_and_lookup(self):
        perf, _ = make_tiers()
        pm = PromotionManager(perf, cache_entries=8)
        pm.stage(rec(5))
        assert pm.lookup(encode_key(5)).value == b"x" * 400
        assert pm.lookup(encode_key(6)) is None

    def test_eviction_flushes_to_hot_zone(self):
        perf, _ = make_tiers()
        pm = PromotionManager(perf, cache_entries=4)
        for i in range(10):
            pm.stage(rec(i))
        assert pm.promotions == 6  # 10 staged, 4 still cached
        flushed = encode_key(0)
        assert perf.contains(flushed)
        part = perf.partition_for_key(flushed)
        loc = part.index.get(flushed)
        assert loc.promoted and loc.zone_id == part.hot_zone.zone_id

    def test_invalidate_drops_staged_copy(self):
        perf, _ = make_tiers()
        pm = PromotionManager(perf, cache_entries=8)
        pm.stage(rec(5))
        pm.invalidate(encode_key(5))
        assert pm.lookup(encode_key(5)) is None
        pm.drain()
        assert not perf.contains(encode_key(5))

    def test_drain_flushes_everything(self):
        perf, _ = make_tiers()
        pm = PromotionManager(perf, cache_entries=100)
        for i in range(20):
            pm.stage(rec(i))
        pm.drain()
        assert pm.promotions == 20
        for i in range(20):
            assert perf.contains(encode_key(i))

    def test_on_pressure_invoked_when_hot_zone_cannot_shed(self):
        # Pressure is only reported when eviction cannot make room — i.e.
        # the hot zone is full of objects the tracker still considers hot.
        perf, _ = make_tiers(nvme_mib=1)
        calls = []
        pm = PromotionManager(perf, cache_entries=2, on_pressure=lambda: calls.append(1))
        part = perf.partitions[0]
        window = part.tracker.discriminator.window_capacity
        n_keys = 2000
        # Heat a large key set: several passes so every key appears in
        # consecutive windows.
        for _ in range(4):
            for i in range(0, n_keys, max(1, n_keys // window + 1)):
                pass
        for _ in range(4 * window // n_keys + 4):
            for i in range(n_keys):
                part.tracker.record_access(encode_key(i))
        i = 0
        while not calls and i < n_keys:
            if perf.partition_for_key(encode_key(i)) is part:
                pm.stage(rec(i, size=900))
            i += 1
        assert calls, "promotion pressure never reported"

    def test_promotion_charges_migration_traffic(self):
        perf, _ = make_tiers()
        pm = PromotionManager(perf, cache_entries=1)
        pm.stage(rec(1))
        pm.stage(rec(2))  # evicts 1 -> hot zone write
        dev = perf.device
        assert dev.traffic.write_bytes(TrafficKind.MIGRATION) > 0

"""Model-based property test of the full HyperDB engine.

Random operation sequences against a dict model, under NVMe pressure small
enough that migration, compaction, promotion, and zone splitting all fire
mid-sequence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice

KiB = 1024
MiB = 1024 * KiB
KEYSPACE = 600


def make_db():
    nvme = SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=256 * KiB,  # tiny: forces constant migration
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )
    sata = SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=32 * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        )
    )
    return HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
            nvme=NVMeConfig(
                num_partitions=2,
                initial_zones_per_partition=2,
                migration_batch_bytes=16 * KiB,
            ),
            semi_num_levels=3,
            semi_size_ratio=2,
            semi_bottom_segments=8,
            semi_level1_target_bytes=32 * KiB,
        ),
    )


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "put", "put", "delete", "get", "scan"]),
        st.integers(min_value=0, max_value=KEYSPACE - 1),
        st.binary(min_size=1, max_size=300),
    ),
    max_size=250,
)


class TestHyperDBModel:
    @given(ops_strategy)
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_random_ops_match_dict(self, ops):
        db = make_db()
        model: dict[bytes, bytes] = {}
        for op, kid, value in ops:
            key = encode_key(kid)
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "get":
                got, _ = db.get(key)
                assert got == model.get(key), key
            else:
                got, _ = db.scan(key, 8)
                expected = sorted(
                    (k, v) for k, v in model.items() if k >= key
                )[:8]
                assert got == expected, key
        # Final audit: every model entry readable, everything else absent.
        db.finalize()
        for key, value in model.items():
            assert db.get(key)[0] == value, key
        # Devices never over-committed.
        for dev in db.devices().values():
            assert dev.used_bytes <= dev.capacity_bytes

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_churn_convergence(self, seed):
        """Sustained overwrite churn: state stays consistent and bounded."""
        rng = np.random.default_rng(seed)
        db = make_db()
        latest: dict[int, int] = {}
        for step in range(1500):
            kid = int(rng.integers(0, KEYSPACE))
            db.put(encode_key(kid), b"%08d" % step)
            latest[kid] = step
        for kid, step in list(latest.items())[::17]:
            value, _ = db.get(encode_key(kid))
            assert value == b"%08d" % step
        assert db.capacity_tier.space_amplification() < 4.0

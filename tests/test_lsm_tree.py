"""Integration tests for the leveled LSM engine."""

import pytest

from repro.common.cache import LRUCache
from repro.common.keys import encode_key
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


def make_fs(mib=64, name="dev"):
    profile = DeviceProfile(
        name=name,
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=5e8,
        write_bandwidth=5e8,
    )
    return SimFilesystem(SimDevice(profile))


def small_options(**kw):
    defaults = dict(
        memtable_bytes=4 << 10,
        table_size_bytes=8 << 10,
        block_size=1024,
        level0_trigger=2,
        level_base_bytes=16 << 10,
        level_multiplier=4,
        num_levels=5,
        wal_group_size=8,
    )
    defaults.update(kw)
    return LSMOptions(**defaults)


@pytest.fixture
def tree():
    return LSMTree(make_fs(), small_options())


class TestLSMTreeBasics:
    def test_put_get(self, tree):
        tree.put(b"hello", b"world")
        value, _ = tree.get(b"hello")
        assert value == b"world"

    def test_get_missing(self, tree):
        value, _ = tree.get(b"nope")
        assert value is None

    def test_update_visible(self, tree):
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k")[0] == b"v2"

    def test_delete(self, tree):
        tree.put(b"k", b"v")
        tree.delete(b"k")
        assert tree.get(b"k")[0] is None

    def test_many_writes_survive_flushes_and_compactions(self, tree):
        n = 2000
        for i in range(n):
            tree.put(encode_key(i), b"value-%d" % i)
        assert tree.stats.counter("flushes").value > 0
        assert tree.compactor.stats.compactions > 0
        for i in range(0, n, 97):
            assert tree.get(encode_key(i))[0] == b"value-%d" % i

    def test_overwrites_deduplicated_by_compaction(self, tree):
        for round_no in range(5):
            for i in range(300):
                tree.put(encode_key(i), b"round-%d" % round_no)
        for i in range(0, 300, 13):
            assert tree.get(encode_key(i))[0] == b"round-4"

    def test_delete_survives_compaction(self, tree):
        for i in range(1000):
            tree.put(encode_key(i), b"v")
        tree.delete(encode_key(500))
        for i in range(1000, 2000):
            tree.put(encode_key(i), b"v")
        assert tree.get(encode_key(500))[0] is None
        assert tree.get(encode_key(501))[0] == b"v"

    def test_flush_explicit(self, tree):
        tree.put(b"k", b"v")
        tree.flush()
        assert len(tree.version.level(0)) >= 1 or tree.version.total_tables() >= 1
        assert tree.get(b"k")[0] == b"v"


class TestLSMTreeScan:
    def test_scan_ordered(self, tree):
        for i in range(500):
            tree.put(encode_key(i), bytes([i % 256]))
        out, _ = tree.scan(encode_key(100), 50)
        assert [k for k, _ in out] == [encode_key(i) for i in range(100, 150)]

    def test_scan_sees_memtable_and_disk(self, tree):
        for i in range(0, 100, 2):
            tree.put(encode_key(i), b"disk")
        tree.flush()
        for i in range(1, 100, 2):
            tree.put(encode_key(i), b"mem")
        out, _ = tree.scan(encode_key(0), 10)
        assert len(out) == 10
        assert out[0] == (encode_key(0), b"disk")
        assert out[1] == (encode_key(1), b"mem")

    def test_scan_skips_tombstones(self, tree):
        for i in range(20):
            tree.put(encode_key(i), b"v")
        tree.delete(encode_key(5))
        out, _ = tree.scan(encode_key(0), 20)
        keys = [k for k, _ in out]
        assert encode_key(5) not in keys
        assert len(out) == 19

    def test_scan_newest_value_wins(self, tree):
        tree.put(encode_key(1), b"old")
        tree.flush()
        tree.put(encode_key(1), b"new")
        out, _ = tree.scan(encode_key(0), 5)
        assert out[0] == (encode_key(1), b"new")


class TestLSMTreeLevels:
    def test_levels_respect_targets_after_compaction(self, tree):
        for i in range(5000):
            tree.put(encode_key(i), b"x" * 32)
        for lvl in tree.version.all_levels():
            score = tree.compactor.level_score(lvl.level)
            assert score < 1.5, f"L{lvl.level} score {score}"

    def test_sorted_levels_disjoint(self, tree):
        for i in range(5000):
            tree.put(encode_key(i * 7 % 5000), b"x" * 32)
        for lvl in tree.version.all_levels():
            if lvl.level == 0:
                continue
            tables = list(lvl)
            for a, b in zip(tables, tables[1:]):
                assert a.last_key < b.first_key

    def test_db_paths_split_levels_across_devices(self):
        fast = make_fs(8, "fast")
        slow = make_fs(64, "slow")
        opts = small_options()
        tree = LSMTree(
            [DbPath(fast, target_bytes=48 << 10), DbPath(slow, target_bytes=1 << 30)],
            opts,
        )
        # First level(s) on the fast path, deeper levels on the slow path.
        assert tree.fs_for_level(0) is fast
        deepest = opts.first_level + opts.num_levels - 1
        assert tree.fs_for_level(deepest) is slow
        for i in range(3000):
            tree.put(encode_key(i), b"x" * 32)
        assert slow.device.used_bytes > 0
        for i in range(0, 3000, 111):
            assert tree.get(encode_key(i))[0] == b"x" * 32

    def test_first_level_one_tree(self):
        opts = small_options(first_level=1, wal_enabled=False)
        tree = LSMTree(make_fs(), opts)
        for i in range(2000):
            tree.put(encode_key(i), b"v" * 16)
        for i in range(0, 2000, 101):
            assert tree.get(encode_key(i))[0] == b"v" * 16
        # No level 0 exists; every level is sorted and disjoint.
        for lvl in tree.version.all_levels():
            tables = list(lvl)
            for a, b in zip(tables, tables[1:]):
                assert a.last_key < b.first_key


class TestLSMTreeAccounting:
    def test_wal_traffic_recorded(self, tree):
        for i in range(100):
            tree.put(encode_key(i), b"v")
        dev = tree.paths[0].fs.device
        assert dev.traffic.write_bytes(TrafficKind.WAL) > 0

    def test_compaction_traffic_recorded(self, tree):
        for i in range(3000):
            tree.put(encode_key(i), b"x" * 32)
        dev = tree.paths[0].fs.device
        assert dev.traffic.write_bytes(TrafficKind.COMPACTION) > 0
        assert dev.traffic.read_bytes(TrafficKind.COMPACTION) > 0

    def test_per_level_compaction_stats(self, tree):
        for i in range(5000):
            tree.put(encode_key(i), b"x" * 32)
        stats = tree.compactor.stats
        assert stats.total_write_bytes() > 0
        assert len(stats.write_bytes_by_level) >= 1

    def test_write_amplification_above_one(self, tree):
        payload = 0
        for i in range(3000):
            tree.put(encode_key(i % 600), b"x" * 64)
            payload += 8 + 64
        dev = tree.paths[0].fs.device
        total_writes = dev.traffic.write_bytes()
        assert total_writes > payload  # WAL + flush + compaction rewrite

    def test_block_cache_reduces_foreground_reads(self):
        cache = LRUCache(4 << 20)
        tree = LSMTree(make_fs(), small_options(), cache=cache)
        for i in range(2000):
            tree.put(encode_key(i), b"x" * 32)
        tree.get(encode_key(123))
        dev = tree.paths[0].fs.device
        dev.traffic.reset()
        tree.get(encode_key(123))
        assert dev.traffic.read_bytes(TrafficKind.FOREGROUND) == 0

    def test_space_reclaimed_by_compaction(self, tree):
        # Overwrite the same small key set many times; stale versions must
        # not accumulate without bound.
        for _ in range(20):
            for i in range(200):
                tree.put(encode_key(i), b"x" * 64)
        live = 200 * (8 + 64)
        assert tree.size_bytes() < live * 30

"""Degraded-mode operation: health windows, admission control, failover.

Covers the device health-state machine (outage rejection, brownout
surcharges, epoch pinning), RocksDB-style write backpressure, engine
failover across tier outages, and the migration pause/catch-up edges —
including the satellite guarantees: a demotion interrupted mid-zone leaves
the zone fully migrated or fully resident, and the catch-up queue drains
exactly once on recovery.
"""

import pytest

from repro import obs
from repro.common.errors import DeviceOfflineError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.core import HyperDB, HyperDBConfig
from repro.baselines.prismdb import PrismDBStore
from repro.health import admission as admission_mod
from repro.health.admission import AdmissionConfig, AdmissionController
from repro.health.state import HealthState, HealthWindow, resolve_health
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.lsm.semi import CapacityTier, SemiLevelConfig
from repro.migration import MigrationScheduler
from repro.nvme import NVMeConfig, PerformanceTier
from repro.simssd import (
    DeviceProfile,
    FaultInjector,
    FaultPlan,
    SimDevice,
    SimFilesystem,
    TrafficKind,
)

KEYSPACE = 20_000
KiB = 1024
MiB = 1024 * KiB


def nvme_profile(mib=2):
    return DeviceProfile(
        name="nvme",
        capacity_bytes=mib * MiB,
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )


def sata_profile(mib=64):
    return DeviceProfile(
        name="sata",
        capacity_bytes=mib * MiB,
        page_size=4096,
        read_latency_s=2e-4,
        write_latency_s=6e-5,
        read_bandwidth=5.6e8,
        write_bandwidth=5.1e8,
    )


def paired_devices(windows=(), seed=0):
    inj = FaultInjector(FaultPlan(seed=seed, health_windows=tuple(windows)))
    return (
        SimDevice(nvme_profile(), injector=inj),
        SimDevice(sata_profile(), injector=inj),
        inj,
    )


def offline(device, start, end):
    return HealthWindow(device, HealthState.OFFLINE, start, end)


def brownout(device, start, end, mult):
    return HealthWindow(device, HealthState.BROWNOUT, start, end, mult)


def rec(i, size=400, seqno=None):
    return Record(encode_key(i), b"x" * size, seqno if seqno is not None else i + 1)


class TestHealthWindows:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            HealthWindow("nvme", HealthState.HEALTHY, 1, 2)
        with pytest.raises(ValueError):
            HealthWindow("nvme", HealthState.OFFLINE, 0, 2)
        with pytest.raises(ValueError):
            HealthWindow("nvme", HealthState.OFFLINE, 5, 5)
        with pytest.raises(ValueError):
            HealthWindow("nvme", HealthState.BROWNOUT, 1, 2, 0.5)

    def test_resolve_offline_dominates_and_brownouts_compound(self):
        ws = [
            brownout("a", 1, 10, 2.0),
            brownout("a", 1, 10, 3.0),
            offline("a", 5, 8),
        ]
        assert resolve_health(ws, "a", 1) == (HealthState.BROWNOUT, 6.0)
        assert resolve_health(ws, "a", 5) == (HealthState.OFFLINE, 1.0)
        assert resolve_health(ws, "a", 9) == (HealthState.BROWNOUT, 6.0)
        assert resolve_health(ws, "a", 10) == (HealthState.HEALTHY, 1.0)
        assert resolve_health(ws, "b", 5) == (HealthState.HEALTHY, 1.0)

    def test_offline_window_rejects_then_recovers_via_surviving_tier(self):
        # Window [2, 4) on nvme: I/O #1 serves, the next attempt is
        # rejected without charging, and only the sata device's traffic
        # ages the outage toward recovery.
        nvme, sata, inj = paired_devices([offline("nvme", 2, 4)])
        nvme.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 1
        with pytest.raises(DeviceOfflineError, match="nvme"):
            nvme.write_pages(1, TrafficKind.FOREGROUND)
        assert nvme.offline_rejections == 1
        assert nvme.traffic.write_ios() == 1  # the rejection charged nothing
        sata.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 2
        with pytest.raises(DeviceOfflineError):
            nvme.read_pages(1, TrafficKind.FOREGROUND)  # would be ordinal 3
        sata.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 3
        assert nvme.health() is HealthState.HEALTHY
        nvme.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 4: recovered

    def test_brownout_scales_service_time_and_counts_ios(self):
        slow, _, _ = paired_devices([brownout("nvme", 1, 100, 3.0)])
        fast, _, _ = paired_devices()
        s_slow = slow.write_pages(4, TrafficKind.FOREGROUND)
        s_fast = fast.write_pages(4, TrafficKind.FOREGROUND)
        assert s_slow == pytest.approx(3.0 * s_fast)
        assert slow.brownout_ios == 1
        assert fast.brownout_ios == 0
        # The surcharge is real ledger time, not a side channel.
        assert slow.traffic.busy_seconds() == pytest.approx(
            3.0 * fast.traffic.busy_seconds()
        )

    def test_health_transition_events_emitted(self):
        recdr = obs.install()
        try:
            nvme, sata, _ = paired_devices([offline("nvme", 2, 3)])
            nvme.write_pages(1, TrafficKind.FOREGROUND)
            with pytest.raises(DeviceOfflineError):
                nvme.write_pages(1, TrafficKind.FOREGROUND)
            sata.write_pages(1, TrafficKind.FOREGROUND)
            nvme.write_pages(1, TrafficKind.FOREGROUND)
        finally:
            obs.uninstall()
        health = [e for e in recdr.events() if e.type == "health"]
        assert [e.data["state"] for e in health] == ["offline", "healthy"]
        assert health[0].data["device"] == "nvme"
        assert health[0].data["prev"] == "healthy"

    def test_charge_stall_adds_time_without_ios(self):
        dev, _, _ = paired_devices()
        charged = dev.charge_stall(0.25)
        assert charged == 0.25
        assert dev.stall_seconds == 0.25
        assert dev.traffic.busy_seconds() == pytest.approx(0.25)
        assert dev.traffic.write_ios() == 0
        assert dev.traffic.write_bytes() == 0

    def test_unguarded_device_pays_nothing(self):
        dev = SimDevice(nvme_profile())
        assert dev.health() is HealthState.HEALTHY
        assert not dev._health_guarded


class TestHealthEpoch:
    def test_epoch_pins_health_across_window_start(self):
        # The window opens at ordinal 3, mid-epoch: every I/O inside the
        # epoch still serves (outages begin at operation boundaries).
        nvme, _, _ = paired_devices([offline("nvme", 3, 1000)])
        nvme.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 1
        with nvme.health_epoch:
            for _ in range(4):  # ordinals 2..5, two of them inside the window
                nvme.write_pages(1, TrafficKind.FOREGROUND)
        with pytest.raises(DeviceOfflineError):
            nvme.write_pages(1, TrafficKind.FOREGROUND)

    def test_epoch_entry_rejects_offline_before_any_mutation(self):
        nvme, _, _ = paired_devices([offline("nvme", 1, 1000)])
        with pytest.raises(DeviceOfflineError):
            with nvme.health_epoch:
                raise AssertionError("epoch body must not run while offline")
        assert nvme.offline_rejections == 1
        assert nvme.traffic.busy_seconds() == 0.0

    def test_epochs_nest_without_reconsulting(self):
        nvme, _, _ = paired_devices([offline("nvme", 2, 1000)])
        with nvme.health_epoch:
            nvme.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 1
            with nvme.health_epoch:  # inner entry must not re-consult
                nvme.write_pages(1, TrafficKind.FOREGROUND)  # ordinal 2
        with pytest.raises(DeviceOfflineError):
            nvme.write_pages(1, TrafficKind.FOREGROUND)

    def test_epoch_pins_brownout_multiplier(self):
        slow, _, _ = paired_devices([brownout("nvme", 1, 2, 5.0)])
        fast, _, _ = paired_devices()
        with slow.health_epoch:
            s0 = slow.write_pages(1, TrafficKind.FOREGROUND)  # in-window
            s1 = slow.write_pages(1, TrafficKind.FOREGROUND)  # past end, pinned
        f = fast.write_pages(1, TrafficKind.FOREGROUND)
        assert s0 == pytest.approx(5.0 * f)
        assert s1 == pytest.approx(5.0 * f)


class TestAdmissionControl:
    def test_assess_verdicts_and_triggers(self):
        ctl = AdmissionController(AdmissionConfig())
        assert ctl.assess() == (admission_mod.OK, None)
        assert ctl.assess(memtables=3) == (admission_mod.SLOWDOWN, "memtables")
        assert ctl.assess(memtables=5) == (admission_mod.STOP, "memtables")
        assert ctl.assess(l0_files=8) == (admission_mod.SLOWDOWN, "l0_files")
        assert ctl.assess(fill=0.98) == (admission_mod.STOP, "fill")
        # The most severe trigger wins.
        assert ctl.assess(memtables=3, l0_files=12) == (
            admission_mod.STOP,
            "l0_files",
        )

    def test_stall_accounting(self):
        ctl = AdmissionController(AdmissionConfig())
        assert ctl.stall_s(admission_mod.OK) == 0.0
        d1 = ctl.stall_s(admission_mod.SLOWDOWN)
        d2 = ctl.stall_s(admission_mod.STOP)
        assert 0 < d1 < d2
        assert ctl.stats.slowdowns == 1
        assert ctl.stats.stops == 1
        assert ctl.stats.stall_seconds == pytest.approx(d1 + d2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(slowdown_memtables=5, stop_memtables=3)
        with pytest.raises(ValueError):
            AdmissionConfig(slowdown_delay_s=-1.0)

    def test_lsm_write_stall_charged_deterministically(self):
        opts = LSMOptions(
            admission=AdmissionConfig(
                slowdown_memtables=1,
                stop_memtables=None,
                slowdown_l0_files=None,
                stop_l0_files=None,
                slowdown_fill=None,
                stop_fill=None,
            )
        )
        dev = SimDevice(nvme_profile(8))
        tree = LSMTree([DbPath(SimFilesystem(dev), target_bytes=1 << 62)], opts)
        recdr = obs.install()
        try:
            tree.put(b"k", b"v")
        finally:
            obs.uninstall()
        stalls = [e for e in recdr.events() if e.type == "write_stall"]
        assert len(stalls) == 1
        assert stalls[0].data["verdict"] == "slowdown"
        assert stalls[0].data["trigger"] == "memtables"
        assert dev.stall_seconds > 0
        assert tree.admission.stats.slowdowns == 1

    def test_lsm_without_admission_never_stalls(self):
        dev = SimDevice(nvme_profile(8))
        tree = LSMTree(
            [DbPath(SimFilesystem(dev), target_bytes=1 << 62)], LSMOptions()
        )
        for i in range(50):
            tree.put(b"k%03d" % i, b"v")
        assert tree.admission is None
        assert dev.stall_seconds == 0.0


def make_hyperdb(windows=(), admission=None, seed=0):
    inj = FaultInjector(FaultPlan(seed=seed, health_windows=tuple(windows)))
    nvme = SimDevice(nvme_profile(), injector=inj)
    sata = SimDevice(sata_profile(), injector=inj)
    db = HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
            nvme=NVMeConfig(
                num_partitions=2,
                initial_zones_per_partition=2,
                migration_batch_bytes=16 * KiB,
            ),
            semi_num_levels=3,
            semi_size_ratio=4,
            semi_bottom_segments=16,
            semi_level1_target_bytes=128 * KiB,
            admission=admission,
        ),
    )
    return db, inj


class TestHyperDBFailover:
    def _loaded_outage_db(self, n_load=60):
        """Load with a clean injector to learn the ordinal where the
        outage should start, then replay into a windowed instance."""
        db, inj = make_hyperdb()
        for i in range(n_load):
            db.put(encode_key(i), b"base-%04d" % i)
        start = inj.total_ios + 1
        db, inj = make_hyperdb([offline("nvme", start, start + 60)])
        for i in range(n_load):
            db.put(encode_key(i), b"base-%04d" % i)
        assert db.nvme_device.health() is HealthState.OFFLINE
        return db

    def test_nvme_outage_writes_fail_over_to_capacity_tier(self):
        db = self._loaded_outage_db()
        sata_fg_before = db.sata_device.traffic.write_bytes(TrafficKind.FOREGROUND)
        db.put(encode_key(500), b"degraded-write")
        assert db.stats.counter("failover_writes").value == 1
        assert (
            db.sata_device.traffic.write_bytes(TrafficKind.FOREGROUND)
            > sata_fg_before
        )
        # The failover write is immediately readable from the capacity tier.
        got, _ = db.get(encode_key(500))
        assert got == b"degraded-write"
        assert db.stats.counter("failover_reads").value >= 1

    def test_nvme_outage_blocks_stale_resident_reads(self):
        db = self._loaded_outage_db()
        with pytest.raises(DeviceOfflineError):
            db.get(encode_key(3))  # non-promoted NVMe resident: honest 503
        assert db.stats.counter("failover_blocked_reads").value == 1

    def test_failover_update_drops_stale_resident_copy(self):
        db = self._loaded_outage_db()
        part = db.performance_tier.partition_for_key(encode_key(3))
        assert part.resident_location(encode_key(3)) is not None
        db.put(encode_key(3), b"new-version")
        assert part.resident_location(encode_key(3)) is None
        # Now readable during the outage — the SATA copy is authoritative.
        got, _ = db.get(encode_key(3))
        assert got == b"new-version"
        # ... and still the latest after recovery.
        while db.nvme_device.health() is not HealthState.HEALTHY:
            db.put(encode_key(600), b"pump")
        got, _ = db.get(encode_key(3))
        assert got == b"new-version"

    def test_admission_slowdown_fires_on_fill(self):
        db, _ = make_hyperdb(
            admission=AdmissionConfig(
                slowdown_memtables=None,
                stop_memtables=None,
                slowdown_l0_files=None,
                stop_l0_files=None,
                slowdown_fill=0.0,
                stop_fill=None,
            )
        )
        db.put(encode_key(1), b"v")
        assert db.admission.stats.slowdowns == 1
        assert db.nvme_device.stall_seconds > 0

    def test_admission_stop_runs_migration_inline(self):
        db, _ = make_hyperdb(
            admission=AdmissionConfig(
                slowdown_memtables=None,
                stop_memtables=None,
                slowdown_l0_files=None,
                stop_l0_files=None,
                slowdown_fill=0.0,
                stop_fill=0.0,
            )
        )
        db.put(encode_key(1), b"v")
        assert db.admission.stats.stops == 1
        assert db.nvme_device.stall_seconds >= db.config.admission.stop_delay_s


class TestPrismDBFailover:
    def _loaded_outage_store(self, n_load=40):
        inj = FaultInjector(FaultPlan(seed=0))
        store = PrismDBStore(
            SimDevice(nvme_profile(), injector=inj),
            SimDevice(sata_profile(), injector=inj),
        )
        for i in range(n_load):
            store.put(encode_key(i), b"base-%04d" % i)
        start = inj.total_ios + 1
        inj = FaultInjector(
            FaultPlan(seed=0, health_windows=(offline("nvme", start, start + 60),))
        )
        store = PrismDBStore(
            SimDevice(nvme_profile(), injector=inj),
            SimDevice(sata_profile(), injector=inj),
        )
        for i in range(n_load):
            store.put(encode_key(i), b"base-%04d" % i)
        assert store.nvme_device.health() is HealthState.OFFLINE
        return store

    def test_writes_fail_over_and_reads_block_on_residents(self):
        store = self._loaded_outage_store()
        store.put(encode_key(500), b"degraded")
        assert store.failover_writes == 1
        got, _ = store.get(encode_key(500))
        assert got == b"degraded"
        # Slab copies are always authoritative in PrismDB: no fallthrough.
        with pytest.raises(DeviceOfflineError):
            store.get(encode_key(3))
        assert store.failover_blocked_reads == 1

    def test_failover_update_survives_recovery(self):
        store = self._loaded_outage_store()
        store.put(encode_key(3), b"new-version")
        while store.nvme_device.health() is not HealthState.HEALTHY:
            store.put(encode_key(600), b"pump")
        got, _ = store.get(encode_key(3))
        assert got == b"new-version"


def make_faulty_tiers(windows=(), seed=0):
    inj = FaultInjector(FaultPlan(seed=seed, health_windows=tuple(windows)))
    nvme = SimDevice(nvme_profile(), injector=inj)
    sata = SimDevice(sata_profile(), injector=inj)
    perf = PerformanceTier(
        nvme,
        KeyRange(encode_key(0), encode_key(KEYSPACE)),
        NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
    )
    cap = CapacityTier(
        SimFilesystem(sata),
        SemiLevelConfig(
            key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
            num_levels=3,
            size_ratio=4,
            bottom_segments=16,
            level1_target_bytes=128 * KiB,
        ),
    )
    return perf, cap, inj


def fill_over_watermark(perf):
    keys = []
    i = 0
    while not perf.partitions_over_watermark() and i < KEYSPACE:
        perf.put(rec(i))
        keys.append(encode_key(i))
        i += 1
    return keys


class TestMigrationPauseResume:
    def test_pause_when_capacity_offline_at_job_start(self):
        perf, cap, _ = make_faulty_tiers([offline("sata", 1, 1 << 30)])
        sched = MigrationScheduler(perf, cap)
        fill_over_watermark(perf)
        assert sched.run_if_needed() == 0
        assert sched.stats.paused_jobs >= 1
        assert sched.stats.demotion_jobs == 0
        assert sched.has_catch_up
        assert cap.valid_bytes() == 0

    def _interrupted_mid_zone(self):
        """Outage opens between a zone's collection and its ingest."""
        perf, cap, inj = make_faulty_tiers()
        sched = MigrationScheduler(perf, cap)
        keys = fill_over_watermark(perf)
        # Replay the identical fill into a windowed instance; the window
        # opens right after zone collection's first read.
        start = inj.total_ios + 2
        perf, cap, inj = make_faulty_tiers([offline("sata", start, start + 400)])
        sched = MigrationScheduler(perf, cap)
        keys = fill_over_watermark(perf)
        return perf, cap, sched, keys

    def test_mid_zone_interruption_leaves_zone_fully_resident(self):
        perf, cap, sched, keys = self._interrupted_mid_zone()
        assert sched.run_if_needed() == 0
        # The collected batch was rejected at the capacity tier's epoch
        # entry and re-inserted whole: fully resident, nothing migrated.
        assert sched.stats.requeued_objects > 0
        assert sched.stats.paused_jobs >= 1
        assert cap.valid_bytes() == 0
        for key in keys:
            assert perf.contains(key), key

    def test_catch_up_drains_exactly_once_on_recovery(self):
        perf, cap, sched, keys = self._interrupted_mid_zone()
        sched.run_if_needed()
        assert sched.has_catch_up
        # Still offline: catch-up must refuse to run.
        assert sched.run_catch_up() == 0
        assert sched.stats.catch_up_drains == 0
        # Age the outage past its window with surviving-tier traffic.
        for _ in range(2000):
            if sched.capacity_online():
                break
            perf.get(keys[0])
        assert sched.capacity_online()
        zones = sched.run_catch_up()
        assert zones > 0
        assert sched.stats.catch_up_drains == 1
        assert not sched.has_catch_up
        assert not perf.partitions_over_watermark()
        # A second drain is a no-op until another outage queues work.
        assert sched.run_catch_up() == 0
        assert sched.stats.catch_up_drains == 1
        # Nothing was lost across pause, requeue, and catch-up.
        for key in keys:
            on_nvme = perf.contains(key)
            got, _ = cap.get(key)
            assert on_nvme or (got is not None and not got.is_tombstone), key


class TestChaosHarness:
    def test_smoke_scenarios_pass_and_are_deterministic(self):
        from repro.chaos import run_scenario, smoke_scenarios

        scenarios = smoke_scenarios()
        results = [run_scenario(sc, seed=3) for sc in scenarios]
        for r in results:
            assert r.passed, r.summary()
        again = [run_scenario(sc, seed=3) for sc in scenarios]
        assert [r.summary() for r in results] == [r.summary() for r in again]

    def test_soak_report_identical_serial_and_parallel(self):
        from repro.chaos import run_soak, smoke_scenarios

        scenarios = smoke_scenarios()
        serial = run_soak(scenarios, seed=3, workers=1)
        fanned = run_soak(scenarios, seed=3, workers=2)
        assert serial.passed and fanned.passed
        assert serial.summary() == fanned.summary()

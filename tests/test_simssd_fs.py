"""Unit tests for the simulated filesystem."""

import pytest

from repro.common.errors import ClosedError, ReproError
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


@pytest.fixture
def fs():
    profile = DeviceProfile(
        name="t",
        capacity_bytes=64 * 4096,
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=1e8,
        write_bandwidth=5e7,
    )
    return SimFilesystem(SimDevice(profile))


class TestSimFile:
    def test_append_read_roundtrip(self, fs):
        f = fs.create("a")
        off, _ = f.append(b"hello", TrafficKind.FLUSH)
        assert off == 0
        off2, _ = f.append(b"world", TrafficKind.FLUSH)
        assert off2 == 5
        data, _ = f.read(0, 10, TrafficKind.FOREGROUND)
        assert data == b"helloworld"

    def test_page_allocation_lazy(self, fs):
        f = fs.create("a")
        f.append(b"x" * 100, TrafficKind.FLUSH)
        assert f.allocated_pages == 1
        f.append(b"x" * 4096, TrafficKind.FLUSH)
        assert f.allocated_pages == 2

    def test_write_at_no_new_allocation(self, fs):
        f = fs.create("a")
        f.append(b"\x00" * 4096, TrafficKind.FLUSH)
        before = fs.device.allocated_pages
        f.write_at(10, b"patch", TrafficKind.FOREGROUND)
        assert fs.device.allocated_pages == before
        data, _ = f.read(10, 5, TrafficKind.FOREGROUND)
        assert data == b"patch"

    def test_write_at_outside_extent_rejected(self, fs):
        f = fs.create("a")
        f.append(b"abc", TrafficKind.FLUSH)
        with pytest.raises(ReproError):
            f.write_at(2, b"xy", TrafficKind.FOREGROUND)

    def test_read_outside_extent_rejected(self, fs):
        f = fs.create("a")
        f.append(b"abc", TrafficKind.FLUSH)
        with pytest.raises(ReproError):
            f.read(0, 4, TrafficKind.FOREGROUND)

    def test_read_page_span_charging(self, fs):
        f = fs.create("a")
        f.append(b"x" * 8192, TrafficKind.FLUSH)
        fs.device.traffic.reset()
        # Crossing a page boundary touches two pages.
        f.read(4090, 10, TrafficKind.FOREGROUND)
        assert fs.device.traffic.read_bytes() == 2 * 4096

    def test_empty_ops_free(self, fs):
        f = fs.create("a")
        _, service = f.append(b"", TrafficKind.FLUSH)
        assert service == 0.0
        data, service = f.read(0, 0, TrafficKind.FOREGROUND)
        assert data == b"" and service == 0.0

    def test_delete_frees_pages(self, fs):
        f = fs.create("a")
        f.append(b"x" * 10000, TrafficKind.FLUSH)
        assert fs.device.allocated_pages == 3
        fs.delete("a")
        assert fs.device.allocated_pages == 0
        with pytest.raises(ClosedError):
            f.append(b"y", TrafficKind.FLUSH)


class TestSimFilesystem:
    def test_create_open_exists(self, fs):
        fs.create("a")
        assert fs.exists("a")
        assert fs.open("a").name == "a"
        assert not fs.exists("b")
        with pytest.raises(ReproError):
            fs.open("b")

    def test_duplicate_create_rejected(self, fs):
        fs.create("a")
        with pytest.raises(ReproError):
            fs.create("a")

    def test_autonaming(self, fs):
        f1 = fs.create()
        f2 = fs.create()
        assert f1.name != f2.name

    def test_delete_missing_rejected(self, fs):
        with pytest.raises(ReproError):
            fs.delete("nope")

    def test_used_bytes(self, fs):
        fs.create("a").append(b"x" * 5000, TrafficKind.FLUSH)
        assert fs.used_bytes == 2 * 4096
        assert len(fs) == 1

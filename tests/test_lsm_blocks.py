"""Unit tests for record/block encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.common.records import Record
from repro.lsm.blocks import (
    decode_block,
    decode_records,
    encode_block,
    encode_record,
    record_encoded_size,
)


class TestRecordEncoding:
    def test_roundtrip(self):
        rec = Record(b"key", b"value", 42)
        out = list(decode_records(encode_record(rec)))
        assert len(out) == 1
        assert out[0].key == b"key" and out[0].value == b"value" and out[0].seqno == 42

    def test_tombstone_roundtrip(self):
        rec = Record.tombstone(b"k", 7)
        (out,) = decode_records(encode_record(rec))
        assert out.is_tombstone

    def test_empty_value(self):
        rec = Record(b"k", b"", 1)
        (out,) = decode_records(encode_record(rec))
        assert out.value == b"" and not out.is_tombstone

    def test_encoded_size_matches(self):
        rec = Record(b"abc", b"x" * 100, 5)
        assert len(encode_record(rec)) == record_encoded_size(rec)

    def test_truncated_header_rejected(self):
        with pytest.raises(CorruptionError):
            list(decode_records(b"\x00" * 5))

    def test_truncated_body_rejected(self):
        data = encode_record(Record(b"key", b"value", 1))[:-2]
        with pytest.raises(CorruptionError):
            list(decode_records(data))


class TestBlockEncoding:
    def test_roundtrip_many(self):
        recs = [Record(bytes([i]), b"v" * i, i) for i in range(1, 50)]
        out = decode_block(encode_block(recs))
        assert [(r.key, r.value, r.seqno) for r in out] == [
            (r.key, r.value, r.seqno) for r in recs
        ]

    def test_empty_block(self):
        assert decode_block(encode_block([])) == []

    def test_corruption_detected(self):
        block = bytearray(encode_block([Record(b"k", b"v", 1)]))
        block[2] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_block(bytes(block))

    def test_short_block_rejected(self):
        with pytest.raises(CorruptionError):
            decode_block(b"ab")

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=20), st.binary(max_size=200)),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pairs):
        recs = [Record(k, v, i) for i, (k, v) in enumerate(pairs)]
        out = decode_block(encode_block(recs))
        assert [(r.key, r.value, r.seqno) for r in out] == [
            (r.key, r.value, r.seqno) for r in recs
        ]

"""Tests for workload trace capture, persistence, and replay."""

import pytest

from repro.common.errors import ReproError
from repro.common.keys import encode_key
from repro.bench.context import BenchScale, build_store
from repro.hotness.interval import (
    interval_conditional_probabilities,
    probability_summary,
)
from repro.ycsb import Trace, TraceOp, YCSB_WORKLOADS


class TestTraceOp:
    def test_validation(self):
        with pytest.raises(ReproError):
            TraceOp("frobnicate", 1)
        with pytest.raises(ReproError):
            TraceOp("get", -1)


class TestTraceGeneration:
    def test_from_workload_mix(self):
        trace = Trace.from_workload(
            YCSB_WORKLOADS["A"], operations=2000, record_count=1000, seed=1
        )
        assert len(trace) == 2000
        gets = sum(1 for o in trace if o.op == "get")
        puts = sum(1 for o in trace if o.op == "put")
        assert 800 < gets < 1200 and gets + puts == 2000

    def test_rmw_expands_to_two_ops(self):
        trace = Trace.from_workload(
            YCSB_WORKLOADS["F"], operations=1000, record_count=500, seed=2
        )
        assert len(trace) > 1000  # each RMW contributes get+put

    def test_insert_workload_grows_keys(self):
        trace = Trace.from_workload(
            YCSB_WORKLOADS["D"], operations=1000, record_count=500, seed=3
        )
        assert max(o.key_id for o in trace) >= 500

    def test_deterministic(self):
        a = Trace.from_workload(YCSB_WORKLOADS["B"], 500, 200, seed=9)
        b = Trace.from_workload(YCSB_WORKLOADS["B"], 500, 200, seed=9)
        assert a.ops == b.ops


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        trace = Trace(
            [
                TraceOp("put", 1, 100),
                TraceOp("get", 1),
                TraceOp("delete", 2),
                TraceOp("scan", 0, 10),
            ]
        )
        path = tmp_path / "trace.txt"
        trace.save(path)
        assert Trace.load(path).ops == trace.ops

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.txt"
        Trace().save(path)
        assert len(Trace.load(path)) == 0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nget 5\n")
        assert Trace.load(path).ops == [TraceOp("get", 5)]

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("get five\n")
        with pytest.raises(ReproError):
            Trace.load(path)
        path.write_text("put 3\n")  # missing size
        with pytest.raises(ReproError):
            Trace.load(path)


class TestTraceReplay:
    def test_replay_counts_and_hits(self):
        store = build_store("hyperdb", BenchScale(record_count=2000))
        trace = Trace(
            [TraceOp("put", i, 100) for i in range(100)]
            + [TraceOp("get", i) for i in range(150)]  # 50 misses
            + [TraceOp("delete", 0), TraceOp("scan", 1, 5)]
        )
        result = trace.replay(store)
        assert result.puts == 100 and result.gets == 150
        assert result.hits == 100
        assert result.hit_rate == pytest.approx(100 / 150)
        assert result.deletes == 1 and result.scans == 1
        assert result.scanned_records == 5
        assert result.operations == 252

    def test_same_trace_same_data_across_engines(self):
        trace = Trace.from_workload(
            YCSB_WORKLOADS["A"], operations=800, record_count=400, seed=4
        )
        values = {}
        for name in ("rocksdb", "hyperdb"):
            store = build_store(name, BenchScale(record_count=400))
            for i in range(400):
                store.put(encode_key(i), b"seed-value")
            trace.replay(store)
            values[name] = [store.get(encode_key(i))[0] for i in range(400)]
        assert values["rocksdb"] == values["hyperdb"]

    def test_access_sequence_feeds_interval_analysis(self):
        trace = Trace.from_workload(
            YCSB_WORKLOADS["C"], operations=20_000, record_count=1000, seed=5
        )
        probs = interval_conditional_probabilities(
            trace.access_sequence(), threshold=4000, history=1
        )
        summary = probability_summary(probs)
        assert summary["objects"] > 100
        assert 0.0 <= summary["median"] <= 1.0
        assert trace.key_count() <= 1000

"""Unit tests for the memtable and write-ahead log."""

import pytest

from repro.common.keys import encode_key
from repro.common.records import Record
from repro.lsm.memtable import MemTable
from repro.lsm.wal import WriteAheadLog
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


class TestMemTable:
    def test_put_get(self):
        mt = MemTable(1 << 20)
        mt.put(Record(b"a", b"1", 1))
        assert mt.get(b"a").value == b"1"
        assert mt.get(b"zz") is None

    def test_update_replaces_and_adjusts_size(self):
        mt = MemTable(1 << 20)
        mt.put(Record(b"a", b"x" * 100, 1))
        s1 = mt.size_bytes
        mt.put(Record(b"a", b"y", 2))
        assert mt.get(b"a").value == b"y"
        assert mt.size_bytes < s1
        assert len(mt) == 1

    def test_is_full(self):
        mt = MemTable(64)
        assert not mt.is_full
        mt.put(Record(b"k", b"v" * 64, 1))
        assert mt.is_full

    def test_tombstones_stored(self):
        mt = MemTable(1 << 20)
        mt.put(Record(b"a", b"1", 1))
        mt.put(Record.tombstone(b"a", 2))
        assert mt.get(b"a").is_tombstone

    def test_ordered_records(self):
        mt = MemTable(1 << 20)
        for i in (5, 1, 9, 3):
            mt.put(Record(encode_key(i), b"v", i))
        keys = [r.key for r in mt.records()]
        assert keys == sorted(keys)
        assert mt.first_key() == encode_key(1)
        assert mt.last_key() == encode_key(9)

    def test_records_from_start(self):
        mt = MemTable(1 << 20)
        for i in range(10):
            mt.put(Record(encode_key(i), b"v", i))
        got = [r.key for r in mt.records(start=encode_key(7))]
        assert got == [encode_key(i) for i in (7, 8, 9)]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemTable(0)


@pytest.fixture
def fs():
    profile = DeviceProfile(
        name="t",
        capacity_bytes=1024 * 4096,
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=1e8,
        write_bandwidth=5e7,
    )
    return SimFilesystem(SimDevice(profile))


class TestWriteAheadLog:
    def test_group_commit_batches_io(self, fs):
        wal = WriteAheadLog(fs, group_size=4)
        for i in range(3):
            assert wal.append(Record(encode_key(i), b"v", i)) == 0.0
        assert fs.device.traffic.write_ios(TrafficKind.WAL) == 0
        wal.append(Record(encode_key(3), b"v", 3))
        assert fs.device.traffic.write_ios(TrafficKind.WAL) == 1
        assert wal.synced_records == 4

    def test_sync_flushes_partial_group(self, fs):
        wal = WriteAheadLog(fs, group_size=100)
        wal.append(Record(b"k", b"v", 1))
        assert wal.sync() > 0
        assert wal.synced_records == 1
        assert wal.sync() == 0.0  # nothing pending

    def test_replay(self, fs):
        wal = WriteAheadLog(fs, group_size=2)
        recs = [Record(encode_key(i), bytes([i]), i) for i in range(6)]
        for r in recs:
            wal.append(r)
        out = wal.replay()
        assert [(r.key, r.value, r.seqno) for r in out] == [
            (r.key, r.value, r.seqno) for r in recs
        ]

    def test_reset_truncates(self, fs):
        wal = WriteAheadLog(fs, group_size=1)
        wal.append(Record(b"k", b"v", 1))
        assert wal.size_bytes > 0
        wal.reset()
        assert wal.size_bytes == 0
        assert wal.replay() == []

    def test_unsynced_records_lost_on_replay(self, fs):
        # Group commit trades durability window for latency: staged but
        # unsynced records do not survive.
        wal = WriteAheadLog(fs, group_size=10)
        wal.append(Record(b"k", b"v", 1))
        assert wal.replay() == []

    def test_group_size_validation(self, fs):
        with pytest.raises(ValueError):
            WriteAheadLog(fs, group_size=0)

"""Tests for the workload runner's simulated-time model.

These pin the documented properties of the concurrency model: transfer
time serializes on a device, per-command latency overlaps with threads,
and queueing penalties attach to the devices an op actually touched.
"""

import numpy as np
import pytest

from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.core.interface import KVStore
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice, TrafficKind
from repro.ycsb import WorkloadRunner, YCSB_WORKLOADS
from repro.ycsb.workload import WorkloadSpec

KiB = 1024
MiB = 1024 * KiB


class SyntheticStore(KVStore):
    """A store that charges a fixed I/O pattern, for model tests."""

    name = "synthetic"

    def __init__(self, fg_pages=1, bg_pages=0):
        self.device = SimDevice(
            DeviceProfile(
                name="dev",
                capacity_bytes=64 * MiB,
                page_size=4096,
                read_latency_s=1e-4,
                write_latency_s=1e-4,
                read_bandwidth=5e8,
                write_bandwidth=5e8,
            )
        )
        self.fg_pages = fg_pages
        self.bg_pages = bg_pages

    def put(self, key, value):
        s = self.device.write_pages(self.fg_pages, TrafficKind.FOREGROUND)
        if self.bg_pages:
            self.device.write_pages(self.bg_pages, TrafficKind.COMPACTION)
        return s

    def get(self, key):
        return b"v", self.device.read_pages(self.fg_pages, TrafficKind.FOREGROUND)

    def delete(self, key):
        return 0.0

    def scan(self, start, count):
        return [], 0.0

    def devices(self):
        return {"dev": self.device}


UPDATE_ONLY = WorkloadSpec("u", update=1.0, distribution="uniform")


class TestElapsedModel:
    def run_store(self, store, clients=8, bg=8, ops=2000):
        runner = WorkloadRunner(
            store, record_count=100, clients=clients, background_threads=bg, seed=0
        )
        return runner.run(UPDATE_ONLY, ops)

    def test_more_clients_hide_foreground_latency(self):
        t1 = self.run_store(SyntheticStore(), clients=1).elapsed_s
        t8 = self.run_store(SyntheticStore(), clients=8).elapsed_s
        assert t8 < t1
        # But not below the transfer floor: 8 clients can't make one device
        # channel move bytes faster.
        store = SyntheticStore()
        result = self.run_store(store, clients=64)
        transfer_floor = sum(
            l["write_transfer_s"] + l["read_transfer_s"]
            for l in result.traffic["dev"].values()
        )
        assert result.elapsed_s >= transfer_floor * 0.999

    def test_background_threads_hide_background_latency(self):
        t1 = self.run_store(SyntheticStore(bg_pages=4), bg=1).elapsed_s
        t8 = self.run_store(SyntheticStore(bg_pages=4), bg=8).elapsed_s
        assert t8 < t1

    def test_background_work_lowers_throughput(self):
        clean = self.run_store(SyntheticStore(bg_pages=0)).throughput_ops
        loaded = self.run_store(SyntheticStore(bg_pages=8)).throughput_ops
        assert loaded < clean

    def test_utilization_bounded(self):
        result = self.run_store(SyntheticStore(bg_pages=2))
        assert 0 < result.utilization["dev"] <= 1.0


class TestLatencyAttribution:
    def make_db(self):
        nvme = SimDevice(
            DeviceProfile(
                name="nvme",
                capacity_bytes=8 * MiB,
                page_size=4096,
                read_latency_s=8e-5,
                write_latency_s=2e-5,
                read_bandwidth=6.5e9,
                write_bandwidth=3.5e9,
            )
        )
        sata = SimDevice(
            DeviceProfile(
                name="sata",
                capacity_bytes=64 * MiB,
                page_size=4096,
                read_latency_s=2e-4,
                write_latency_s=6e-5,
                read_bandwidth=5.6e8,
                write_bandwidth=5.1e8,
            )
        )
        return HyperDB(
            nvme,
            sata,
            HyperDBConfig(
                key_space=KeyRange(encode_key(0), encode_key(20_000)),
                nvme=NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
            ),
        )

    def test_read_latency_reflects_tier(self):
        db = self.make_db()
        runner = WorkloadRunner(db, record_count=4000, value_size=256, seed=1)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["C"], 3000)
        # NVMe reads are much faster than SATA reads; with a mixed resident
        # set the p99 (SATA + queue) far exceeds the median.
        hist = result.latency_by_op["read"]
        assert hist.p99 > hist.median

    def test_zero_service_ops_not_queued(self):
        # Ops that never touch a device (staging-cache hits, memtable reads)
        # must not inherit another device's queueing penalty.
        db = self.make_db()
        runner = WorkloadRunner(db, record_count=500, value_size=100, seed=2)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["C"], 500)
        hist = result.latency_by_op["read"]
        # The fastest reads are pure CPU (a few microseconds).
        assert hist.percentile(1) < 2e-5


class TestRunResultHelpers:
    def test_traffic_accessors(self):
        store = SyntheticStore(bg_pages=2)
        runner = WorkloadRunner(store, record_count=100, seed=0)
        result = runner.run(UPDATE_ONLY, 500)
        assert result.write_bytes("dev") == result.write_bytes(
            "dev", "foreground"
        ) + result.write_bytes("dev", "compaction")
        assert result.read_bytes("dev") == 0

    def test_overall_latency_merges_ops(self):
        store = SyntheticStore()
        runner = WorkloadRunner(store, record_count=100, seed=0)
        spec = WorkloadSpec("mix", read=0.5, update=0.5, distribution="uniform")
        result = runner.run(spec, 1000)
        assert result.overall_latency.count == 1000

    def test_unknown_device_or_lane_reads_as_zero(self):
        # Regression: probing a device or lane absent from the traffic dict
        # used to raise KeyError; benchmark tables probe lanes (e.g. gc)
        # that some stores never exercise.
        store = SyntheticStore(bg_pages=2)
        runner = WorkloadRunner(store, record_count=100, seed=0)
        result = runner.run(UPDATE_ONLY, 200)
        assert result.write_bytes("no-such-device") == 0.0
        assert result.write_bytes("no-such-device", "compaction") == 0.0
        assert result.read_bytes("no-such-device") == 0.0
        assert result.read_bytes("dev", "no-such-lane") == 0.0
        assert result.write_bytes("dev", "no-such-lane") == 0.0


class TestOpMixValidation:
    def test_drifting_mix_accepted_and_runs(self):
        # Regression: a mix summing to 1±1e-8 (plain float arithmetic) is
        # within spec tolerance but past numpy's rng.choice tolerance
        # (~1.5e-8); the runner used to crash inside rng.choice.
        drift = 1e-7
        spec = WorkloadSpec(
            "drift", read=0.3, update=0.3, scan=0.4 - drift,
            distribution="uniform",
        )
        runner = WorkloadRunner(SyntheticStore(), record_count=100, seed=0)
        result = runner.run(spec, 300)
        assert result.operations == 300

    def test_invalid_mix_raises_clear_error(self):
        # A spec that dodged WorkloadSpec validation (e.g. constructed via
        # replace-free __new__) must still be rejected by the runner with a
        # ValueError naming the workload, not a numpy internals crash.
        spec = object.__new__(WorkloadSpec)
        for fld, v in dict(
            name="broken", read=0.7, update=0.0, insert=0.0, scan=0.0,
            rmw=0.0, distribution="uniform", theta=0.99, scan_length=50,
        ).items():
            object.__setattr__(spec, fld, v)
        runner = WorkloadRunner(SyntheticStore(), record_count=100, seed=0)
        with pytest.raises(ValueError, match="broken.*sum"):
            runner.run(spec, 100)

    def test_exact_mix_rng_stream_unchanged(self):
        # Mixes that sum to exactly 1.0 skip renormalization, so their RNG
        # consumption is bit-identical to the pre-fix behaviour.
        a = WorkloadRunner(SyntheticStore(), record_count=100, seed=3).run(
            UPDATE_ONLY, 400
        )
        b = WorkloadRunner(SyntheticStore(), record_count=100, seed=3).run(
            UPDATE_ONLY, 400
        )
        assert list(a.overall_latency.samples()) == list(b.overall_latency.samples())

"""Unit tests for the obs trace recorder: ring bounds, exact aggregates,
span depth, JSONL round trips, shard absorption, and the ambient install
lifecycle."""

import pytest

from repro import obs
from repro.obs.events import (
    DEFAULT_CAPACITY,
    LANE_FIELDS,
    TraceRecorder,
    events_of,
    read_trace,
)
from repro.obs.merge import merge_traces
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KiB = 1024
MiB = 1024 * KiB


def small_device(name="nvme", mib=8):
    return SimDevice(
        DeviceProfile(
            name=name,
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


class TestRecorderRing:
    def test_emit_sequencing_and_counts(self):
        rec = TraceRecorder(capacity=16)
        rec.emit("a", t=1.0, x=1)
        rec.emit("b")
        rec.emit("a", y=2)
        assert rec.total_events == 3
        assert rec.num_events == 3
        assert rec.dropped == 0
        assert rec.counts == {"a": 2, "b": 1}
        evs = rec.events()
        assert [e.seq for e in evs] == [1, 2, 3]
        assert evs[0].t == 1.0 and evs[1].t is None

    def test_ring_keeps_newest_and_counts_drops(self):
        rec = TraceRecorder(capacity=4)
        for i in range(6):
            rec.emit("tick", i=i)
        assert rec.num_events == 4
        assert rec.total_events == 6
        assert rec.dropped == 2
        # The census still covers every emission, dropped ones included.
        assert rec.counts == {"tick": 6}
        assert [e.data["i"] for e in rec.events()] == [2, 3, 4, 5]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_span_depth_tracked_and_clamped(self):
        rec = TraceRecorder()
        rec.begin("job")
        rec.emit("inner")
        rec.begin("sub")
        rec.end("sub")
        rec.end("job")
        rec.end("job")  # extra end must clamp at 0, not go negative
        depths = [(e.type, e.depth) for e in rec.events()]
        assert depths == [
            ("job_begin", 0),
            ("inner", 1),
            ("sub_begin", 1),
            ("sub_end", 1),
            ("job_end", 0),
            ("job_end", 0),
        ]

    def test_lane_totals_exact_despite_drops(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.io("nvme", "flush", "write", 4096, 1, t=float(i))
        rec.io("nvme", "flush", "read", 8192, 2)
        assert rec.dropped == 4
        tot = rec.lane_totals["nvme"]["flush"]
        assert tot["write_bytes"] == 5 * 4096
        assert tot["write_ios"] == 5
        assert tot["read_bytes"] == 8192
        assert tot["read_ios"] == 2


class TestExportAndMerge:
    def filled(self):
        rec = TraceRecorder(capacity=8)
        rec.begin("flush", t=0.1, records=3)
        rec.io("nvme", "flush", "write", 4096, 1, t=0.2)
        rec.end("flush", t=0.3)
        rec.note_phase({"phase": "load", "traffic": {}})
        return rec

    def test_to_doc_shape(self):
        doc = self.filled().to_doc()
        assert doc["header"]["events"] == 3
        assert doc["header"]["total_events"] == 3
        assert doc["header"]["dropped"] == 0
        assert doc["header"]["counts"] == {
            "flush_begin": 1, "io": 1, "flush_end": 1,
        }
        assert doc["lane_totals"]["nvme"]["flush"]["write_bytes"] == 4096
        assert doc["phases"] == [{"phase": "load", "traffic": {}}]
        assert [e["type"] for e in doc["events"]] == [
            "flush_begin", "io", "flush_end",
        ]

    def test_jsonl_round_trip(self, tmp_path):
        rec = self.filled()
        path = str(tmp_path / "trace.jsonl")
        rec.export_jsonl(path)
        doc = read_trace(path)
        assert doc == rec.to_doc()

    def test_events_of_filter(self):
        doc = self.filled().to_doc()
        assert len(events_of(doc)) == 3
        assert [e["type"] for e in events_of(doc, "io")] == ["io"]
        assert len(events_of(doc, "flush_begin", "flush_end")) == 2

    def test_absorb_renumbers_and_sums(self):
        a = TraceRecorder(capacity=8)
        a.io("nvme", "wal", "write", 4096, 1, t=0.1)
        b = TraceRecorder(capacity=2)
        for i in range(4):  # 2 dropped in the shard
            b.io("nvme", "wal", "write", 4096, 1, t=float(i))
        merged = TraceRecorder(capacity=16)
        merged.absorb(a.to_doc())
        merged.absorb(b.to_doc())
        assert [e.seq for e in merged.events()] == [1, 2, 3]
        assert merged.total_events == 3  # retained shard events replayed
        assert merged.dropped == 2  # the shard's own drops carry through
        assert merged.counts == {"io": 5}  # full census, drops included
        assert merged.lane_totals["nvme"]["wal"]["write_bytes"] == 5 * 4096

    def test_merge_traces_order_is_submission_order(self):
        a = TraceRecorder()
        a.emit("x", shard=0)
        b = TraceRecorder()
        b.emit("x", shard=1)
        doc = merge_traces([a.to_doc(), b.to_doc()])
        assert [e["data"]["shard"] for e in doc["events"]] == [0, 1]
        # Merging never truncates retained shard events.
        assert doc["header"]["dropped"] == 0
        assert doc["header"]["capacity"] >= DEFAULT_CAPACITY

    def test_merge_traces_empty(self):
        doc = merge_traces([])
        assert doc["events"] == []
        assert doc["header"]["total_events"] == 0


class TestAmbientInstall:
    def teardown_method(self):
        obs.uninstall()

    def test_install_uninstall(self):
        assert obs.RECORDER is None and not obs.active()
        rec = obs.install(capacity=32)
        assert obs.RECORDER is rec and obs.active()
        assert rec.capacity == 32
        assert obs.uninstall() is rec
        assert obs.RECORDER is None

    def test_recording_context_restores(self):
        with obs.recording(capacity=8) as rec:
            assert obs.RECORDER is rec
        assert obs.RECORDER is None

    def test_recording_context_leaves_foreign_recorder(self):
        with obs.recording() as rec:
            other = obs.install()
            assert other is not rec
        # The context only clears the recorder it installed itself.
        assert obs.RECORDER is other


class TestMetricScope:
    def teardown_method(self):
        obs.uninstall()

    def test_traffic_delta_is_phase_scoped(self):
        dev = small_device()
        dev.write_pages(4, TrafficKind.FLUSH)  # pre-phase traffic
        with obs.MetricScope("run", {"nvme": dev}) as scope:
            dev.write_pages(2, TrafficKind.FLUSH)
            dev.read_pages(3, TrafficKind.FOREGROUND)
        lanes = scope.report["traffic"]["nvme"]
        assert lanes["flush"]["write_bytes"] == 2 * 4096
        assert lanes["flush"]["write_ios"] == 1  # sequential write = 1 io
        assert lanes["foreground"]["read_bytes"] == 3 * 4096
        assert lanes["foreground"]["read_ios"] == 3

    def test_registry_counters_and_histograms(self):
        from repro.common.stats import StatsRegistry

        reg = StatsRegistry()
        reg.counter("ops").add(10)
        with obs.MetricScope("run", {}, registry=reg) as scope:
            reg.counter("ops").add(5)
            reg.histogram("lat").record_many([1.0, 2.0, 3.0])
        assert scope.report["counters"] == {"ops": 5}
        assert scope.report["histograms"]["lat"]["count"] == 3
        assert scope.report["histograms"]["lat"]["median"] == 2.0

    def test_publishes_to_ambient_recorder(self):
        dev = small_device()
        rec = obs.install()
        with obs.MetricScope("recovery", {"nvme": dev}):
            dev.read_pages(1, TrafficKind.FOREGROUND)
        assert len(rec.phases) == 1
        assert rec.phases[0]["phase"] == "recovery"

    def test_explicit_recorder_wins_over_ambient(self):
        dev = small_device()
        ambient = obs.install()
        mine = TraceRecorder()
        with obs.MetricScope("load", {"nvme": dev}, recorder=mine):
            pass
        assert mine.phases and not ambient.phases

"""End-to-end tests for the crash-consistency harness (repro.faultcheck)."""

import pytest

from repro.common.errors import CorruptionError
from repro.common.keys import encode_key
from repro.faultcheck import (
    run_hyperdb_crash_matrix,
    run_lsm_crash_matrix,
    run_transient_absorption,
)
from repro.faultcheck.harness import _build_hyperdb


class TestLSMCrashMatrix:
    def test_single_tier_points_verify(self):
        report = run_lsm_crash_matrix(
            num_points=3, seed=1, num_ops=160, two_tier=False
        )
        assert report.passed, report.summary()
        assert len(report.results) == 3
        for r in report.results:
            assert r.durable_watermark <= r.recovered_prefix <= r.ops_issued

    def test_rocksdb_like_points_verify(self):
        report = run_lsm_crash_matrix(
            num_points=3, seed=2, num_ops=160, two_tier=True
        )
        assert report.passed, report.summary()
        assert report.engine == "rocksdb-like"

    def test_deterministic_given_seed(self):
        a = run_lsm_crash_matrix(num_points=2, seed=3, num_ops=120)
        b = run_lsm_crash_matrix(num_points=2, seed=3, num_ops=120)
        assert [r.crash_after_write_io for r in a.results] == [
            r.crash_after_write_io for r in b.results
        ]
        assert [r.recovered_prefix for r in a.results] == [
            r.recovered_prefix for r in b.results
        ]

    def test_parallel_workers_identical_to_serial(self):
        serial = run_lsm_crash_matrix(num_points=3, seed=3, num_ops=120, workers=1)
        fanned = run_lsm_crash_matrix(num_points=3, seed=3, num_ops=120, workers=2)
        assert serial.summary() == fanned.summary()
        assert len(fanned.point_seconds) == len(fanned.results) == 3
        assert all(s >= 0 for s in fanned.point_seconds)


class TestHyperDBCrashMatrix:
    def test_checkpointed_state_survives(self):
        report = run_hyperdb_crash_matrix(
            num_points=3, seed=1, w1_ops=180, w2_ops=40
        )
        assert report.passed, report.summary()
        for r in report.results:
            assert r.recovered_prefix == r.durable_watermark

    def test_degraded_recovery_from_corrupt_checkpoint(self):
        db = _build_hyperdb(None)
        for i in range(120):
            db.put(encode_key(i), b"v%03d" % i)
        db.checkpoint()
        # Corrupt one partition's stored image; the other stays intact.
        victim = db.performance_tier.partitions[0]
        pid = victim._checkpoint_pages[0]
        victim.page_store._pages[pid][5] ^= 0xFF
        with pytest.raises(CorruptionError):
            db.recover(strict=True)
        db.recover()  # non-strict: degraded rebuild instead of failure
        assert db.stats.counter("degraded_partitions").value == 1
        assert victim.object_count() == 0
        # The store stays usable, including the degraded partition's range.
        db.put(encode_key(1), b"fresh")
        got, _ = db.get(encode_key(1))
        assert got == b"fresh"


class TestTransientAbsorption:
    def test_lsm_absorbs_and_charges(self):
        report = run_transient_absorption(
            engine="rocksdb-like", seed=4, num_ops=160, error_rate=0.1
        )
        assert report.passed, report.summary()
        assert report.faulty_bytes > report.clean_bytes
        assert report.retried_ios >= report.transient_faults

    def test_hyperdb_absorbs_and_charges(self):
        report = run_transient_absorption(
            engine="hyperdb", seed=4, num_ops=160, error_rate=0.02
        )
        assert report.passed, report.summary()

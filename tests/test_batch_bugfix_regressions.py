"""Regression tests for the accounting bugs found during the batched-
pipeline sweep.  Each test fails on the pre-fix code:

1. ``LatencyHistogram(initial_capacity=0)`` could never grow: the buffer
   doubles on overflow and ``2 * 0 == 0``, so ``record`` stepped past the
   end (IndexError) and ``record_many`` looped forever.
2. ``Partition.put``'s in-place-update path returned before calling
   ``_maybe_calibrate_tracker``, so update-heavy workloads never re-derived
   the hotness window from the measured object size (Eq. 1).
3. ``PageStore.free`` released a page without invalidating its
   ``page_id``-keyed cache entry.  Page ids are never reused, so every
   non-tombstone free path (zone demotion, promoted-entry eviction,
   ``drop_resident``, ``reset_state``) leaked dead bytes into the
   byte-budgeted DRAM LRU forever, evicting live entries.
"""

import numpy as np

from repro.common.cache import LRUCache
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.common.stats import LatencyHistogram
from repro.nvme import NVMeConfig, PageStore, PerformanceTier
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KEYSPACE = 100_000


def make_device(mib=32):
    profile = DeviceProfile(
        name="nvme",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )
    return SimDevice(profile)


def key_space():
    return KeyRange(encode_key(0), encode_key(KEYSPACE))


class TestHistogramZeroCapacity:
    def test_record_grows_from_zero_capacity(self):
        h = LatencyHistogram(initial_capacity=0)
        h.record(1.0)
        h.record(2.0)
        assert h.count == 2
        assert list(h.samples()) == [1.0, 2.0]

    def test_record_many_grows_from_zero_capacity(self):
        # Pre-fix this looped forever (the grow loop doubled a zero-length
        # buffer); the fix makes it terminate, so a plain assertion is safe
        # once test 1 (the IndexError form of the same bug) passes.
        h = LatencyHistogram(initial_capacity=0)
        h.record_many(np.array([3.0, 4.0, 5.0]))
        assert h.count == 3
        assert list(h.samples()) == [3.0, 4.0, 5.0]


class TestInPlaceCalibration:
    def test_update_heavy_workload_still_calibrates(self):
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1)
        )
        part = tier.partitions[0]
        value = b"v" * 100
        seq = 0
        # 100 distinct keys (new-slot writes), then same-size updates that
        # all take the in-place path.  Calibration triggers at 512 written
        # objects — reached only by in-place writes here.
        for i in range(100):
            seq += 1
            part.put(Record(encode_key(i * 7), value, seq))
        assert not part._tracker_calibrated
        for round_no in range(5):
            for i in range(100):
                seq += 1
                part.put(Record(encode_key(i * 7), value, seq))
        assert part._written_objects >= 512
        assert part._tracker_calibrated

    def test_new_slot_path_still_calibrates(self):
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1)
        )
        part = tier.partitions[0]
        for i in range(520):
            part.put(Record(encode_key(i * 3), b"v" * 100, i + 1))
        assert part._tracker_calibrated


class TestFreeInvalidatesCache:
    def test_pagestore_free_drops_cached_page(self):
        cache = LRUCache(1 << 20)
        ps = PageStore(make_device(1), cache=cache)
        (pid,) = ps.allocate()
        ps.write(pid, 0, b"payload", TrafficKind.FOREGROUND, cache)
        ps.read(pid, TrafficKind.FOREGROUND, cache)
        assert pid in cache
        ps.free(pid)
        assert pid not in cache
        assert cache.used_bytes == 0

    def test_drop_resident_leaves_no_dead_cache_bytes(self):
        # End-to-end form: drop_resident frees slot pages without writing a
        # tombstone, which was the leak path (tombstone writes incidentally
        # invalidated; bare frees never did).
        cache = LRUCache(1 << 20)
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1), cache=cache
        )
        part = tier.partitions[0]
        key = encode_key(42)
        # A big value gets a dedicated (oversized) slot, so freeing it
        # releases its pages immediately.
        part.put(Record(key, b"v" * 8000, 1))
        part.get(key)  # populate the page cache
        loc = part.resident_location(key)
        assert loc.page_id in cache
        assert part.drop_resident(key)
        assert loc.page_id not in cache

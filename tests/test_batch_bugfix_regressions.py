"""Regression tests for the accounting bugs found during the batched-
pipeline sweep.  Each test fails on the pre-fix code:

1. ``LatencyHistogram(initial_capacity=0)`` could never grow: the buffer
   doubles on overflow and ``2 * 0 == 0``, so ``record`` stepped past the
   end (IndexError) and ``record_many`` looped forever.
2. ``Partition.put``'s in-place-update path returned before calling
   ``_maybe_calibrate_tracker``, so update-heavy workloads never re-derived
   the hotness window from the measured object size (Eq. 1).
3. ``PageStore.free`` released a page without invalidating its
   ``page_id``-keyed cache entry.  Page ids are never reused, so every
   non-tombstone free path (zone demotion, promoted-entry eviction,
   ``drop_resident``, ``reset_state``) leaked dead bytes into the
   byte-budgeted DRAM LRU forever, evicting live entries.
4. ``write_pages_batch``/``read_pages_batch`` diverged from the
   per-charge fallback on non-positive page counts: the fastpath ran
   them through the charge memo (``ios=1`` plus a latency charge) while
   ``write_pages``/``read_pages`` return 0.0 without touching the
   ledger.  The batch fastpath must charge nothing for empty elements
   and produce the same ``busy_out`` rows (values *and* types) as the
   fallback.
"""

import random

import numpy as np

from repro.common.cache import LRUCache
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.common.stats import LatencyHistogram
from repro.nvme import NVMeConfig, PageStore, PerformanceTier
from repro.simssd import DeviceProfile, SimDevice, TrafficKind
from repro.simssd.faults import FaultInjector, FaultPlan

KEYSPACE = 100_000


def make_device(mib=32):
    profile = DeviceProfile(
        name="nvme",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )
    return SimDevice(profile)


def key_space():
    return KeyRange(encode_key(0), encode_key(KEYSPACE))


class TestHistogramZeroCapacity:
    def test_record_grows_from_zero_capacity(self):
        h = LatencyHistogram(initial_capacity=0)
        h.record(1.0)
        h.record(2.0)
        assert h.count == 2
        assert list(h.samples()) == [1.0, 2.0]

    def test_record_many_grows_from_zero_capacity(self):
        # Pre-fix this looped forever (the grow loop doubled a zero-length
        # buffer); the fix makes it terminate, so a plain assertion is safe
        # once test 1 (the IndexError form of the same bug) passes.
        h = LatencyHistogram(initial_capacity=0)
        h.record_many(np.array([3.0, 4.0, 5.0]))
        assert h.count == 3
        assert list(h.samples()) == [3.0, 4.0, 5.0]


class TestInPlaceCalibration:
    def test_update_heavy_workload_still_calibrates(self):
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1)
        )
        part = tier.partitions[0]
        value = b"v" * 100
        seq = 0
        # 100 distinct keys (new-slot writes), then same-size updates that
        # all take the in-place path.  Calibration triggers at 512 written
        # objects — reached only by in-place writes here.
        for i in range(100):
            seq += 1
            part.put(Record(encode_key(i * 7), value, seq))
        assert not part._tracker_calibrated
        for round_no in range(5):
            for i in range(100):
                seq += 1
                part.put(Record(encode_key(i * 7), value, seq))
        assert part._written_objects >= 512
        assert part._tracker_calibrated

    def test_new_slot_path_still_calibrates(self):
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1)
        )
        part = tier.partitions[0]
        for i in range(520):
            part.put(Record(encode_key(i * 3), b"v" * 100, i + 1))
        assert part._tracker_calibrated


class TestFreeInvalidatesCache:
    def test_pagestore_free_drops_cached_page(self):
        cache = LRUCache(1 << 20)
        ps = PageStore(make_device(1), cache=cache)
        (pid,) = ps.allocate()
        ps.write(pid, 0, b"payload", TrafficKind.FOREGROUND, cache)
        ps.read(pid, TrafficKind.FOREGROUND, cache)
        assert pid in cache
        ps.free(pid)
        assert pid not in cache
        assert cache.used_bytes == 0

    def test_drop_resident_leaves_no_dead_cache_bytes(self):
        # End-to-end form: drop_resident frees slot pages without writing a
        # tombstone, which was the leak path (tombstone writes incidentally
        # invalidated; bare frees never did).
        cache = LRUCache(1 << 20)
        tier = PerformanceTier(
            make_device(), key_space(), NVMeConfig(num_partitions=1), cache=cache
        )
        part = tier.partitions[0]
        key = encode_key(42)
        # A big value gets a dedicated (oversized) slot, so freeing it
        # releases its pages immediately.
        part.put(Record(key, b"v" * 8000, 1))
        part.get(key)  # populate the page cache
        loc = part.resident_location(key)
        assert loc.page_id in cache
        assert part.drop_resident(key)
        assert loc.page_id not in cache


class TestBatchFastpathFallbackParity:
    """The batch fastpath must be indistinguishable from the per-charge
    fallback — same service times, same ledger, same ``busy_out`` rows.

    The fallback is forced with a benign injector (``FaultPlan()``: no
    fault rates, no windows, so no RNG draws perturb the charges), which
    clears ``_fastpath`` without changing any float math.
    """

    def _devices(self):
        fast = make_device()
        slow = SimDevice(fast.profile, injector=FaultInjector(FaultPlan()))
        assert fast._fastpath and not slow._fastpath
        return fast, slow

    def _check(self, counts, write):
        fast, slow = self._devices()
        fast_busy, slow_busy = [], []
        if write:
            fsvc = fast.write_pages_batch(
                counts, TrafficKind.FLUSH, busy_out=fast_busy
            )
            ssvc = slow.write_pages_batch(
                counts, TrafficKind.FLUSH, busy_out=slow_busy
            )
        else:
            fsvc = fast.read_pages_batch(
                counts, TrafficKind.MIGRATION, busy_out=fast_busy
            )
            ssvc = slow.read_pages_batch(
                counts, TrafficKind.MIGRATION, busy_out=slow_busy
            )
        assert fsvc.tolist() == ssvc.tolist(), counts
        assert fast_busy == slow_busy, counts
        assert all(type(b) is float for b in fast_busy), counts
        assert all(type(b) is float for b in slow_busy), counts
        assert fast.traffic.snapshot() == slow.traffic.snapshot(), counts

    def test_zero_page_elements_charge_nothing_on_both_paths(self):
        for write in (True, False):
            self._check([3, 0, 1, 7, 0, 2, 1, 16], write)
            self._check([0], write)
            self._check([0, 0, 5], write)

    def test_property_random_batches_agree(self):
        # Property-style sweep: random batch shapes (including empty
        # elements and repeats that exercise the charge memo) agree
        # bit for bit between the two paths.
        rng = random.Random(0xBA7C4)
        for _ in range(40):
            counts = [
                rng.choice([0, 1, 2, 3, 8, 17, 64]) for _ in range(rng.randrange(1, 12))
            ]
            self._check(counts, rng.random() < 0.5)

    def test_batch_equals_scalar_charge_sequence(self):
        # One grouped charge must land the ledger exactly where the same
        # charges issued one by one through write_pages/read_pages would.
        counts = [5, 0, 3, 3, 12, 0, 1]
        batch = make_device()
        scalar = make_device()
        batch.write_pages_batch(counts, TrafficKind.FLUSH)
        batch.read_pages_batch(counts, TrafficKind.MIGRATION)
        for p in counts:
            scalar.write_pages(p, TrafficKind.FLUSH)
        for p in counts:
            scalar.read_pages(p, TrafficKind.MIGRATION)
        assert batch.traffic.snapshot() == scalar.traffic.snapshot()

"""Tests for the fault-injection layer and the engines' hardening against it:
seeded injectors, device retry accounting, torn writes, post-crash images,
manifest-based reopen, quarantine, and checkpoint CRC/degraded recovery."""

import pytest

from repro.common.errors import (
    CorruptionError,
    PowerLossError,
    RecoveryError,
    TransientIOError,
)
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.lsm.manifest import decode_manifest, encode_manifest, TableMeta
from repro.lsm.wal import WriteAheadLog
from repro.nvme import NVMeConfig
from repro.nvme.pagestore import PageStore
from repro.nvme.partition import Partition
from repro.simssd import (
    DeviceProfile,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimDevice,
    TrafficKind,
)
from repro.simssd.fs import SimFilesystem

KiB = 1024
MiB = 1024 * KiB


def profile(mib=8):
    return DeviceProfile(
        name="nvme",
        capacity_bytes=mib * MiB,
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )


def device(plan=None, retry=None, mib=8):
    injector = FaultInjector(plan) if plan is not None else None
    return SimDevice(profile(mib), injector=injector, retry_policy=retry)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(bitflip_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash_after_write_io=0)

    def test_deterministic_given_seed(self):
        def faults(seed):
            inj = FaultInjector(FaultPlan(seed=seed, write_error_rate=0.3))
            return [inj.pull_write_fault() for _ in range(50)]

        assert faults(7) == faults(7)
        assert faults(7) != faults(8)

    def test_explicit_ordinals_fire(self):
        inj = FaultInjector(FaultPlan(fail_write_ios=frozenset({2})))
        assert not inj.pull_write_fault()
        assert inj.pull_write_fault()
        assert not inj.pull_write_fault()
        assert inj.transient_write_faults == 1

    def test_max_transient_faults_caps_injection(self):
        inj = FaultInjector(
            FaultPlan(write_error_rate=0.5, max_transient_faults=3, seed=1)
        )
        for _ in range(200):
            inj.pull_write_fault()
        assert inj.transient_faults == 3


class TestRetryPolicy:
    def test_backoff_grows_then_exhausts(self):
        pol = RetryPolicy(max_retries=2, backoff_base_s=1e-3, multiplier=2.0)
        assert pol.backoff_s(0) == pytest.approx(1e-3)
        assert pol.backoff_s(1) == pytest.approx(2e-3)
        assert pol.backoff_s(2) is None

    def test_device_retries_charge_ledger(self):
        # One injected failure: the write is issued twice and both attempts
        # land in the traffic ledger, plus backoff in the service time.
        plan = FaultPlan(fail_write_ios=frozenset({1}))
        dev = device(plan)
        clean = device()
        s_faulty = dev.write_pages(1, TrafficKind.FOREGROUND)
        s_clean = clean.write_pages(1, TrafficKind.FOREGROUND)
        assert dev.retried_ios == 1
        assert dev.traffic.write_ios() == 2 * clean.traffic.write_ios()
        assert dev.traffic.write_bytes() == 2 * clean.traffic.write_bytes()
        assert s_faulty > s_clean

    def test_exhausted_retries_surface_transient_error(self):
        plan = FaultPlan(fail_write_ios=frozenset(range(1, 10)))
        dev = device(plan, retry=RetryPolicy(max_retries=2))
        with pytest.raises(TransientIOError):
            dev.write_pages(1, TrafficKind.FOREGROUND)
        assert dev.traffic.write_ios() == 3  # initial + 2 retries, all charged

    def test_read_path_retries_too(self):
        plan = FaultPlan(fail_read_ios=frozenset({1}))
        dev = device(plan)
        dev.allocate(1)
        dev.read_pages(1, TrafficKind.FOREGROUND)
        assert dev.retried_ios == 1
        assert dev.traffic.read_ios() == 2


class TestCrashAndTornWrites:
    def test_crash_point_freezes_device(self):
        plan = FaultPlan(crash_after_write_io=1)
        dev = device(plan)
        with pytest.raises(PowerLossError):
            dev.write_pages(1, TrafficKind.FOREGROUND)
        assert dev.powered_off
        with pytest.raises(PowerLossError):
            dev.read_pages(1, TrafficKind.FOREGROUND)

    def test_torn_append_persists_prefix(self):
        plan = FaultPlan(seed=3, crash_after_write_io=2)
        dev = device(plan)
        fs = SimFilesystem(dev)
        f = fs.create("f")
        f.append(b"A" * 100, TrafficKind.FOREGROUND)
        with pytest.raises(PowerLossError) as exc:
            f.append(b"B" * 100, TrafficKind.FOREGROUND)
        torn = dev.injector.torn_prefix_len(100, exc.value.torn_fraction)
        assert f._data[100:] == b"B" * torn
        assert 0 <= torn < 100

    def test_untorn_crash_persists_everything(self):
        plan = FaultPlan(crash_after_write_io=1, torn_write=False)
        dev = device(plan)
        fs = SimFilesystem(dev)
        f = fs.create("f")
        with pytest.raises(PowerLossError):
            f.append(b"C" * 64, TrafficKind.FOREGROUND)
        assert bytes(f._data) == b"C" * 64

    def test_post_crash_image_preserves_bytes_and_powers_on(self):
        plan = FaultPlan(seed=1, crash_after_write_io=3)
        dev = device(plan)
        fs = SimFilesystem(dev)
        f = fs.create("keep")
        f.append(b"D" * 500, TrafficKind.FOREGROUND)
        f.append(b"E" * 500, TrafficKind.FOREGROUND)
        with pytest.raises(PowerLossError):
            f.append(b"F" * 500, TrafficKind.FOREGROUND)
        image = fs.post_crash_image()
        g = image.open("keep")
        data, _ = g.read(0, g.size, TrafficKind.FOREGROUND)
        assert data[:1000] == b"D" * 500 + b"E" * 500
        assert data[1000:] == bytes(f._data[1000:])  # the torn tail, verbatim

    def test_reboot_restores_power_once(self):
        plan = FaultPlan(crash_after_write_io=1)
        dev = device(plan)
        with pytest.raises(PowerLossError):
            dev.write_pages(1, TrafficKind.FOREGROUND)
        dev.injector.reboot()
        dev.write_pages(1, TrafficKind.FOREGROUND)  # crash point consumed

    def test_shared_injector_crashes_all_devices(self):
        inj = FaultInjector(FaultPlan(crash_after_write_io=2))
        a = SimDevice(profile(), injector=inj)
        b = SimDevice(profile(), injector=inj)
        a.write_pages(1, TrafficKind.FOREGROUND)
        with pytest.raises(PowerLossError):
            b.write_pages(1, TrafficKind.FOREGROUND)
        with pytest.raises(PowerLossError):
            a.write_pages(1, TrafficKind.FOREGROUND)


class TestBitflips:
    def test_bitflip_lands_on_media(self):
        plan = FaultPlan(seed=5, bitflip_rate=0.999)
        dev = device(plan)
        fs = SimFilesystem(dev)
        f = fs.create("f")
        f.append(b"\x00" * 64, TrafficKind.FOREGROUND)
        assert dev.injector.bitflips >= 1
        data, _ = f.read(0, 64, TrafficKind.FOREGROUND)
        assert data != b"\x00" * 64
        assert sum(bin(byte).count("1") for byte in data) == dev.injector.bitflips

    def test_engine_checksums_catch_bitflips(self):
        # Write under heavy bitflip: reads either succeed with the correct
        # value or the table is quarantined — corrupt bytes never surface.
        plan = FaultPlan(seed=11, bitflip_rate=0.4)
        dev = device(plan)
        tree = LSMTree(
            [DbPath(SimFilesystem(dev), target_bytes=1 << 62)],
            LSMOptions(
                memtable_bytes=KiB, table_size_bytes=KiB, block_size=512,
                manifest_enabled=True,
            ),
        )
        expect = {}
        for i in range(120):
            key = b"k%04d" % i
            val = b"value-%04d" % i
            tree.put(key, val)
            expect[key] = val
        for key, want in expect.items():
            got, _ = tree.get(key)
            assert got in (want, None)
        assert tree.stats.counter("quarantined_tables").value >= 1
        assert tree.quarantined


class TestWALTornTail:
    def test_replay_returns_clean_prefix_and_flags_tear(self):
        fs = SimFilesystem(device())
        wal = WriteAheadLog(fs, group_size=4)
        for i in range(8):
            wal.append(Record(b"k%d" % i, b"v%d" % i, i + 1))
        assert wal.total_synced_records == 8
        # Tear the tail mid-record.
        f = fs.open("wal")
        torn_size = f.size - 5
        del f._data[torn_size:]
        replay = wal.replay()
        assert replay.truncated
        assert len(replay) == 7
        assert replay.dropped_bytes == f.size - replay.valid_bytes
        assert [r.key for r in replay] == [b"k%d" % i for i in range(7)]

    def test_clean_replay_not_truncated(self):
        fs = SimFilesystem(device())
        wal = WriteAheadLog(fs, group_size=2)
        for i in range(4):
            wal.append(Record(b"k%d" % i, b"v", i + 1))
        replay = wal.replay()
        assert not replay.truncated
        assert replay.dropped_bytes == 0
        assert len(replay) == 4

    def test_truncate_torn_tail_enables_clean_reuse(self):
        fs = SimFilesystem(device())
        wal = WriteAheadLog(fs, group_size=1)
        for i in range(3):
            wal.append(Record(b"k%d" % i, b"v", i + 1))
        f = fs.open("wal")
        del f._data[-3:]
        replay = wal.replay()
        wal.truncate_torn_tail(replay.valid_bytes)
        wal.append(Record(b"new", b"nv", 99))
        replay2 = wal.replay()
        assert not replay2.truncated
        assert [r.key for r in replay2] == [b"k0", b"k1", b"new"]

    def test_failed_group_commit_keeps_records_staged(self):
        plan = FaultPlan(fail_write_ios=frozenset({1, 2}))
        dev = device(plan, retry=RetryPolicy(max_retries=1))
        fs = SimFilesystem(dev)
        wal = WriteAheadLog(fs, group_size=1)
        with pytest.raises(TransientIOError):
            wal.append(Record(b"k", b"v", 1))
        assert wal.total_synced_records == 0
        wal.sync()  # plan ordinals exhausted: this attempt succeeds
        assert wal.total_synced_records == 1


class TestManifestAndReopen:
    def _tree(self, fs):
        return LSMTree(
            [DbPath(fs, target_bytes=1 << 62)],
            LSMOptions(
                memtable_bytes=2 * KiB, table_size_bytes=2 * KiB,
                block_size=512, manifest_enabled=True,
            ),
        )

    def test_manifest_roundtrip(self):
        meta = TableMeta(
            level=1, table_id=7, num_records=3, file_name="sst_7",
            bloom=b"\x01\x02", handles=[],
        )
        data = encode_manifest([meta], table_seq=9)
        tables, seq = decode_manifest(data)
        assert seq == 9
        assert tables[0].file_name == "sst_7"

    def test_manifest_corruption_detected(self):
        data = bytearray(encode_manifest([], table_seq=1))
        data[3] ^= 0x10
        with pytest.raises(CorruptionError):
            decode_manifest(bytes(data))
        with pytest.raises(CorruptionError):
            decode_manifest(b"\x00\x01")

    def test_reopen_recovers_tables_and_wal(self):
        fs = SimFilesystem(device())
        tree = self._tree(fs)
        expect = {}
        for i in range(200):
            key = b"k%04d" % i
            val = b"val-%04d" % i
            tree.put(key, val)
            expect[key] = val
        tree.wal.sync()  # make the memtable tail durable (group commit)
        reopened = LSMTree.reopen([DbPath(fs.post_crash_image(), 1 << 62)],
                                  tree.options)
        report = reopened.recovery_report
        assert report is not None
        assert report.manifest_found
        assert report.tables_recovered >= 1
        for key, want in expect.items():
            got, _ = reopened.get(key)
            assert got == want

    def test_reopen_gcs_unreferenced_tables(self):
        fs = SimFilesystem(device())
        tree = self._tree(fs)
        for i in range(200):
            tree.put(b"k%04d" % i, b"v%04d" % i)
        # A half-written table from a crash mid-flush: on media, not in the
        # manifest.
        leak = fs.create("sst_9999")
        leak.append(b"junk", TrafficKind.FLUSH)
        image = fs.post_crash_image()
        reopened = LSMTree.reopen([DbPath(image, 1 << 62)], tree.options)
        assert reopened.recovery_report.leaked_files_removed >= 1
        assert not image.exists("sst_9999")


class TestCheckpointCRC:
    def _partition(self):
        dev = device()
        store = PageStore(dev)
        return Partition(
            partition_id=0,
            key_range=KeyRange(encode_key(0), encode_key(10_000)),
            page_store=store,
            config=NVMeConfig(num_partitions=1, initial_zones_per_partition=2),
            page_budget=dev.profile.num_pages,
        ), store

    def test_corrupt_checkpoint_detected(self):
        part, store = self._partition()
        for i in range(100):
            part.put(Record(encode_key(i), b"v%03d" % i, i + 1))
        part.checkpoint()
        # Flip a byte inside the stored image.
        pid = part._checkpoint_pages[0]
        store._pages[pid][10] ^= 0xFF
        with pytest.raises(CorruptionError):
            part.recover()

    def test_recover_without_checkpoint_raises_recovery_error(self):
        part, _ = self._partition()
        with pytest.raises(RecoveryError):
            part.recover()

    def test_checkpoint_write_keeps_old_image_until_new_is_durable(self):
        part, store = self._partition()
        for i in range(50):
            part.put(Record(encode_key(i), b"v%03d" % i, i + 1))
        part.checkpoint()
        old_pages = list(part._checkpoint_pages)
        for i in range(50, 80):
            part.put(Record(encode_key(i), b"v%03d" % i, i + 1))
        part.checkpoint()
        assert part._checkpoint_pages != old_pages
        part.recover()  # the new image is intact and recoverable
        assert part.contains(encode_key(79))

    def test_reset_state_rebuilds_empty(self):
        part, store = self._partition()
        for i in range(100):
            part.put(Record(encode_key(i), b"v%03d" % i, i + 1))
        part.checkpoint()
        used_before = part.page_store.device.allocated_pages
        part.reset_state()
        assert part.object_count() == 0
        assert part.page_store.device.allocated_pages < used_before
        part.put(Record(encode_key(5), b"fresh", 1000))
        rec, _ = part.get(encode_key(5))
        assert rec.value == b"fresh"

"""Property-based tests of cross-module invariants.

These drive random operation sequences through the engines and check the
properties a key-value store must never violate: linearizable-at-client
visibility (a store behaves like a dict), ordered iteration, device-space
conservation, and the semi-SSTable's structural invariants.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.lsmtree import LSMOptions, LSMTree
from repro.lsm.semi import CapacityTier, SemiLevelConfig, SemiSSTable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem
from repro.simssd.traffic import TrafficKind


def make_fs(mib=64, page=4096):
    profile = DeviceProfile(
        name="t",
        capacity_bytes=mib * (1 << 20),
        page_size=page,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=5e8,
        write_bandwidth=5e8,
    )
    return SimFilesystem(SimDevice(profile))


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "get"]),
        st.integers(min_value=0, max_value=300),
        st.binary(min_size=0, max_size=60),
    ),
    max_size=200,
)


class TestLSMTreeBehavesLikeADict:
    @given(ops_strategy)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_ops(self, ops):
        tree = LSMTree(
            make_fs(),
            LSMOptions(
                memtable_bytes=2 << 10,
                table_size_bytes=4 << 10,
                block_size=512,
                level_base_bytes=8 << 10,
                level_multiplier=4,
                num_levels=4,
                wal_group_size=4,
            ),
        )
        model: dict[bytes, bytes] = {}
        for op, kid, value in ops:
            key = encode_key(kid)
            if op == "put":
                tree.put(key, value)
                model[key] = value
            elif op == "delete":
                tree.delete(key)
                model.pop(key, None)
            else:
                got, _ = tree.get(key)
                assert got == model.get(key)
        for key, value in model.items():
            assert tree.get(key)[0] == value
        # Scans agree with the model too.
        got, _ = tree.scan(encode_key(0), len(model) + 10)
        assert got == sorted(model.items())


class TestCapacityTierInvariants:
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=2000),
                    st.binary(min_size=1, max_size=40),
                ),
                min_size=1,
                max_size=60,
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ingest_batches_behave_like_dict(self, batches):
        tier = CapacityTier(
            make_fs(),
            SemiLevelConfig(
                key_space=KeyRange(encode_key(0), encode_key(2001)),
                num_levels=3,
                size_ratio=2,
                bottom_segments=8,
                block_size=256,
                level1_target_bytes=2 << 10,
            ),
        )
        model: dict[bytes, bytes] = {}
        seq = 1
        for batch in batches:
            records = []
            for kid, value in batch:
                records.append(Record(encode_key(kid), value, seq))
                seq += 1
            tier.ingest(records)
            for rec in records:
                model[rec.key] = rec.value
        for key, value in model.items():
            rec, _ = tier.get(key)
            assert rec is not None, key
            assert rec.value == value
        # Structural invariants after arbitrary compaction activity:
        for table in tier.levels.all_tables():
            check_semisstable_invariants(table)
        # Levels hold at most one live copy per key, newest shallowest.
        seen: dict[bytes, int] = {}
        for level_no in range(1, tier.levels.num_levels + 1):
            for table in tier.levels.level(level_no).tables.values():
                for key in table.valid_keys():
                    if key in seen:
                        shallow = seen[key]
                        shallow_t = tier.levels.table_for_key(shallow, key)
                        deep_t = tier.levels.table_for_key(level_no, key)
                        assert (
                            shallow_t.key_seqno(key) >= deep_t.key_seqno(key)
                        ), f"newer version below older for {key!r}"
                    else:
                        seen[key] = level_no


def check_semisstable_invariants(table: SemiSSTable) -> None:
    """Structural checks every semi-SSTable must satisfy."""
    # 1. valid bytes equals the sum of indexed record sizes.
    assert table.valid_bytes == sum(
        entry[2] for entry in table._key_map.values()
    )
    # 2. block valid counts match the index.
    from collections import Counter

    per_block = Counter(entry[0] for entry in table._key_map.values())
    for block in table.blocks:
        assert block.valid_count == per_block.get(block.block_id, 0)
    # 3. every valid key is inside the declared range.
    for key in table._key_map:
        assert table.declared_range.contains(key)
    # 4. records are sorted within each live block.
    for block in table.blocks:
        if block.is_dead:
            continue
        records, _ = table._read_block(block, kind=TrafficKind.COMPACTION)
        keys = [r.key for r in records]
        assert keys == sorted(keys)
        assert block.first_key == keys[0]
        assert block.last_key == keys[-1]


class TestDeviceSpaceConservation:
    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_tree_teardown_frees_everything(self, n, seed):
        fs = make_fs()
        rng = np.random.default_rng(seed)
        tree = LSMTree(
            fs,
            LSMOptions(
                memtable_bytes=4 << 10,
                table_size_bytes=8 << 10,
                level_base_bytes=16 << 10,
                level_multiplier=4,
                num_levels=4,
            ),
        )
        for kid in rng.integers(0, 10_000, size=min(n, 1500)):
            tree.put(encode_key(int(kid)), b"x" * 40)
        # Allocated pages on the device equal the sum of live file pages.
        assert fs.device.allocated_pages == sum(
            f.allocated_pages for f in fs.files()
        )

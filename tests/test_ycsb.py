"""Tests for distributions, workload specs, and the workload runner."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.simssd import DeviceProfile, SimDevice
from repro.ycsb import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WorkloadRunner,
    WorkloadSpec,
    YCSB_WORKLOADS,
    ZipfianGenerator,
)

KiB = 1024
MiB = 1024 * KiB


class TestDistributions:
    def test_uniform_covers_range(self):
        gen = UniformGenerator(100, np.random.default_rng(0))
        samples = {gen.next() for _ in range(5000)}
        assert min(samples) >= 0 and max(samples) < 100
        assert len(samples) > 90

    def test_zipfian_skewed(self):
        gen = ZipfianGenerator(10_000, np.random.default_rng(0), theta=0.99)
        samples = np.array([gen.next() for _ in range(20_000)])
        assert np.all(samples >= 0) and np.all(samples < 10_000)
        top_fraction = np.mean(samples < 100)  # top 1% of ranks
        assert top_fraction > 0.3  # heavily concentrated

    def test_zipfian_theta_controls_skew(self):
        rng = np.random.default_rng(0)
        hot_share = {}
        for theta in (0.6, 0.99):
            gen = ZipfianGenerator(10_000, np.random.default_rng(1), theta=theta)
            samples = np.array([gen.next() for _ in range(20_000)])
            hot_share[theta] = np.mean(samples < 100)
        assert hot_share[0.99] > hot_share[0.6]

    def test_scrambled_zipfian_spreads_hotset(self):
        gen = ScrambledZipfianGenerator(10_000, np.random.default_rng(0))
        samples = np.array([gen.next() for _ in range(20_000)])
        # Still skewed (few unique keys dominate) but hot keys not clustered
        # at rank 0: the most common key can be anywhere.
        values, counts = np.unique(samples, return_counts=True)
        assert counts.max() > 200
        assert values[np.argmax(counts)] > 100

    def test_latest_prefers_new_keys(self):
        gen = LatestGenerator(10_000, np.random.default_rng(0))
        samples = np.array([gen.next() for _ in range(10_000)])
        assert np.mean(samples > 9_900) > 0.3

    def test_item_count_growth(self):
        gen = LatestGenerator(100, np.random.default_rng(0))
        gen.set_item_count(200)
        assert max(gen.next() for _ in range(1000)) > 100

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            UniformGenerator(0, rng)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, rng, theta=1.0)


class _ForcedRng:
    """Stub RNG whose uniform draws always return a fixed value."""

    def __init__(self, u: float) -> None:
        self._u = u

    def random(self, n=None):
        if n is None:
            return self._u
        return np.full(n, self._u)


class TestDistributionBoundaries:
    def test_zipfian_tail_draw_stays_in_range(self):
        # Regression: the closed-form inverse CDF reaches item_count exactly
        # as u -> 1, and the generator used to return that out-of-range rank.
        n = 1000
        gen = ZipfianGenerator(n, _ForcedRng(np.nextafter(1.0, 0.0)))
        assert gen.next() == n - 1
        batch = gen.next_many(5)
        assert batch.tolist() == [n - 1] * 5

    def test_zipfian_low_u_hits_head_ranks(self):
        n = 1000
        gen = ZipfianGenerator(n, _ForcedRng(0.0))
        assert gen.next() == 0
        assert gen.next_many(3).tolist() == [0, 0, 0]

    def test_scrambled_and_latest_tail_in_range(self):
        n = 1000
        u = np.nextafter(1.0, 0.0)
        scrambled = ScrambledZipfianGenerator(n, _ForcedRng(u))
        assert 0 <= scrambled.next() < n
        assert all(0 <= int(k) < n for k in scrambled.next_many(5))
        # Latest maps rank r to item_count-1-r; an out-of-range rank would
        # have surfaced here as a negative key.
        latest = LatestGenerator(n, _ForcedRng(u))
        assert latest.next() == 0
        assert latest.next_many(5).tolist() == [0] * 5

    @pytest.mark.parametrize(
        "cls", [UniformGenerator, ZipfianGenerator, ScrambledZipfianGenerator, LatestGenerator]
    )
    def test_next_many_matches_sequential(self, cls):
        # Batched draws must consume the RNG stream exactly like serial ones.
        serial = cls(5000, np.random.default_rng(42))
        batched = cls(5000, np.random.default_rng(42))
        expect = [serial.next() for _ in range(500)]
        got = batched.next_many(500)
        assert [int(k) for k in got] == expect

    def test_fnv1a_many_matches_scalar(self):
        from repro.ycsb.distributions import fnv1a_64, fnv1a_64_many

        values = np.array([0, 1, 2, 97, 2**40, 2**63 - 1], dtype=np.uint64)
        got = fnv1a_64_many(values)
        assert [int(h) for h in got] == [fnv1a_64(int(v)) for v in values]


class TestWorkloadSpecs:
    def test_standard_workloads_defined(self):
        assert set(YCSB_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}
        assert YCSB_WORKLOADS["A"].read == 0.5
        assert YCSB_WORKLOADS["C"].read == 1.0
        assert YCSB_WORKLOADS["D"].distribution == "latest"
        assert YCSB_WORKLOADS["E"].scan == 0.95
        assert YCSB_WORKLOADS["E"].scan_length == 50

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", read=0.5, update=0.6)

    def test_with_distribution(self):
        uni = YCSB_WORKLOADS["A"].with_distribution("uniform")
        assert uni.distribution == "uniform"
        assert uni.read == 0.5

    def test_write_heavy_flag(self):
        assert YCSB_WORKLOADS["A"].is_write_heavy
        assert not YCSB_WORKLOADS["B"].is_write_heavy


def make_hyperdb(keyspace, nvme_mib=2, sata_mib=64):
    nvme = SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=nvme_mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )
    sata = SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=sata_mib * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        )
    )
    cfg = HyperDBConfig(
        key_space=KeyRange(encode_key(0), encode_key(keyspace)),
        nvme=NVMeConfig(
            num_partitions=2,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
    )
    return HyperDB(nvme, sata, cfg)


class TestWorkloadRunner:
    def test_load_then_read_workload(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=3000, value_size=128, seed=1)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["C"], operations=2000)
        assert result.operations == 2000
        assert result.throughput_ops > 0
        assert result.elapsed_s > 0
        assert "read" in result.latency_by_op
        assert result.latency_by_op["read"].count == 2000

    def test_mixed_workload_op_mix(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=2000, seed=2)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["A"], operations=2000)
        reads = result.latency_by_op["read"].count
        updates = result.latency_by_op["update"].count
        assert reads + updates == 2000
        assert 800 < reads < 1200

    def test_insert_workload_grows_keyspace(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=2000, seed=3)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["D"], operations=1000)
        assert runner._insert_count > 0
        inserted = runner.record_count + runner._insert_count - 1
        value, _ = db.get(encode_key(inserted))
        assert value is not None

    def test_scan_workload(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=2000, seed=4)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["E"], operations=200)
        assert result.latency_by_op["scan"].count > 0

    def test_latency_percentiles_ordered(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=2000, seed=5)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["B"], operations=1500)
        med = result.median_latency("read")
        p99 = result.p99_latency("read")
        assert 0 <= med <= p99

    def test_traffic_deltas_cover_run_only(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=3000, seed=6)
        runner.load()
        loaded_writes = db.nvme_device.traffic.write_bytes()
        result = runner.run(YCSB_WORKLOADS["C"], operations=500)
        # A read-only workload must not attribute load-phase writes.
        assert result.write_bytes("nvme", "foreground") == 0
        assert db.nvme_device.traffic.write_bytes() == loaded_writes

    def test_more_clients_higher_throughput_when_cpu_bound(self):
        results = {}
        for clients in (1, 8):
            db = make_hyperdb(keyspace=20_000)
            runner = WorkloadRunner(
                db, record_count=2000, clients=clients, seed=7
            )
            runner.load()
            results[clients] = runner.run(
                YCSB_WORKLOADS["C"], operations=1000
            ).throughput_ops
        assert results[8] > results[1]

    def test_utilization_reported(self):
        db = make_hyperdb(keyspace=20_000)
        runner = WorkloadRunner(db, record_count=3000, seed=8)
        runner.load()
        result = runner.run(YCSB_WORKLOADS["A"], operations=1000)
        assert set(result.utilization) == {"nvme", "sata"}
        assert all(0 <= u <= 1 for u in result.utilization.values())

    def test_deterministic_given_seed(self):
        outs = []
        for _ in range(2):
            db = make_hyperdb(keyspace=20_000)
            runner = WorkloadRunner(db, record_count=1000, seed=42)
            runner.load()
            outs.append(runner.run(YCSB_WORKLOADS["A"], operations=500))
        assert outs[0].throughput_ops == pytest.approx(outs[1].throughput_ops)
        assert outs[0].median_latency() == pytest.approx(outs[1].median_latency())

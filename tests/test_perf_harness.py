"""Tests for the repro.perf microbenchmark harness plumbing."""

import json

from repro.perf.harness import (
    HEADLINE_BENCH,
    BenchResult,
    PerfScale,
    bench_names,
    format_table,
    record_run,
    run_benches,
)

#: A deliberately tiny scale so the whole harness runs in well under a
#: second inside the test suite.
TINY = PerfScale(
    trace_ops=200,
    dist_draws=500,
    bloom_keys=100,
    lru_ops=500,
    device_ios=200,
    lsm_records=100,
    interval_accesses=500,
    e2e_records=150,
    e2e_operations=150,
    mode="smoke",
    par_cells=2,
    par_records=120,
    par_operations=120,
    queue_cell_ops=300,
)


class TestRunBenches:
    def test_all_benches_run_and_measure(self):
        results = run_benches(TINY)
        assert set(results) == set(bench_names())
        assert HEADLINE_BENCH in results
        for name, r in results.items():
            assert isinstance(r, BenchResult)
            assert r.ops > 0, name
            assert r.seconds >= 0, name

    def test_bench_subset_and_unknown_rejected(self):
        results = run_benches(TINY, only=["lru_churn"])
        assert list(results) == ["lru_churn"]
        try:
            run_benches(TINY, only=["nope"])
        except ValueError as exc:
            assert "nope" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("unknown bench accepted")


class TestRecordRun:
    def test_trajectory_and_speedups(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        base = {"lru_churn": BenchResult(ops=1000, seconds=2.0),
                HEADLINE_BENCH: BenchResult(ops=1000, seconds=3.0)}
        cur = {"lru_churn": BenchResult(ops=1000, seconds=1.0),
               HEADLINE_BENCH: BenchResult(ops=1000, seconds=2.0)}
        record_run(path, "baseline", TINY, base)
        run = record_run(path, "current", TINY, cur)
        assert run["speedup_vs_baseline"]["lru_churn"] == 2.0
        assert run["speedup_vs_baseline"][HEADLINE_BENCH] == 1.5

        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert [r["label"] for r in doc["runs"]] == ["baseline", "current"]
        assert doc["headline_speedup"] == 1.5

    def test_speedup_only_against_same_mode_baseline(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        full = PerfScale.full()
        record_run(path, "baseline", full, {"lru_churn": BenchResult(1000, 2.0)})
        run = record_run(path, "current", TINY, {"lru_churn": BenchResult(1000, 1.0)})
        assert "speedup_vs_baseline" not in run

    def test_corrupt_trajectory_restarts(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{not json")
        record_run(path, "baseline", TINY, {"lru_churn": BenchResult(10, 0.1)})
        doc = json.loads(path.read_text())
        assert len(doc["runs"]) == 1

    def test_format_table_mentions_every_bench(self):
        results = {"lru_churn": BenchResult(ops=1000, seconds=0.5)}
        out = format_table(results)
        assert "lru_churn" in out
        assert "2.0" in out  # 1000 ops / 0.5 s = 2.0 kops/s

    def test_host_metadata_recorded(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        run = record_run(
            path, "baseline", TINY, {"lru_churn": BenchResult(10, 0.1)}, workers=3
        )
        host = run["host"]
        assert host["workers"] == 3
        assert host["cpu_count"] >= 1
        assert host["machine"] and host["python"]
        doc = json.loads(path.read_text())
        assert doc["runs"][0]["host"] == host

    def test_speedup_skipped_across_host_shapes(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        res = {"lru_churn": BenchResult(1000, 1.0)}
        record_run(path, "baseline", TINY, res, workers=1)
        run = record_run(path, "current", TINY, res, workers=4)
        assert "speedup_vs_baseline" not in run
        assert "differs" in run["speedup_skipped"]

    def test_legacy_baseline_without_host_still_compares(self, tmp_path):
        # Entries written before host metadata existed must keep the
        # trajectory comparable (they all came from one serial-era host).
        path = tmp_path / "BENCH_perf.json"
        doc = {
            "schema": 1,
            "runs": [{
                "label": "baseline", "mode": "smoke",
                "benches": {"lru_churn": {"ops": 1000, "seconds": 2.0}},
            }],
        }
        path.write_text(json.dumps(doc))
        run = record_run(
            path, "current", TINY, {"lru_churn": BenchResult(1000, 1.0)}, workers=1
        )
        assert run["speedup_vs_baseline"]["lru_churn"] == 2.0


class TestLruChurnAccounting:
    def test_bench_exercises_hits_misses_and_evictions(self):
        # Regression for the lru_churn charging-accounting bug: the old
        # loop swept a cyclic key range twice the cache's entry budget, so
        # every get missed and every put evicted — it measured only the
        # eviction micro-path (hit_rate 0, host-scheduling sensitive) and
        # reported phantom regressions.  The bench must exercise all three
        # paths: recency-refresh hits, cold misses, and evictions.
        from repro.perf.harness import bench_lru_churn

        r = bench_lru_churn(TINY)
        assert r.extra is not None
        assert r.extra["hit_rate"] > 0.2
        assert r.extra["evictions"] > 0
        # Not the old all-miss loop: most ops hit the resident set.
        assert r.extra["evictions"] < TINY.lru_ops // 2


class TestQueueDepthBench:
    def test_records_isolation_figure_shape(self):
        from repro.perf.harness import bench_queue_depth

        r = bench_queue_depth(TINY)
        extra = r.extra
        cells = extra["sim_kops"]
        assert set(cells) == {
            "qc1_qd32", "qc2_qd32", "qc4_qd32", "qc4_qd4", "qc4_qd1"
        }
        for cell in cells.values():
            assert cell["healthy"] > 0 and cell["degraded"] > 0
            # Brownouts can only slow the simulated device down.
            assert cell["degraded"] <= cell["healthy"]
        assert extra["isolation_gain_degraded"] > 0
        # 5 shapes x (healthy, degraded) x (load + run) ops per cell.
        assert r.ops == 5 * 2 * 2 * TINY.queue_cell_ops


class TestParallelMode:
    def test_run_benches_parallel_matches_names(self):
        results = run_benches(TINY, only=["bloom", "lru_churn"], workers=2)
        assert list(results) == ["bloom", "lru_churn"]
        for r in results.values():
            assert r.ops > 0

    def test_parallel_e2e_speedup_and_merge(self):
        from repro.perf.harness import bench_parallel_e2e

        r = bench_parallel_e2e(TINY, workers=2)
        extra = r.extra
        assert extra["cells"] == 2 and extra["workers"] == 2
        assert extra["merge_identical"] is True
        assert extra["fanout_speedup"] > 0
        assert extra["serial_seconds"] > 0 and extra["parallel_seconds"] > 0
        assert r.ops == 2 * (120 + 120)
        assert "extra" in r.to_json()

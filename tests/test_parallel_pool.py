"""Tests for the deterministic process-pool scheduler (repro.parallel.pool)."""

import numpy as np
import pytest

from repro.parallel import Job, derive_seeds, run_jobs
from repro.parallel.pool import (
    JobResult,
    default_workers,
    timing_records,
    unwrap_all,
)


def square(x):
    return x * x


def seeded_draw(n, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1_000_000, size=n).tolist()


def boom(x):
    raise ValueError(f"boom {x}")


def slow_then_value(x):
    # Jitter completion order a little so parallel collection order is
    # actually exercised (results must come back by index, not finish time).
    import time

    time.sleep(0.01 * ((7 - x) % 3))
    return x


class TestSerialExecution:
    def test_results_in_order_with_labels_and_values(self):
        jobs = [Job(square, args=(i,), label=f"sq{i}") for i in range(5)]
        results = run_jobs(jobs, workers=1)
        assert [r.index for r in results] == list(range(5))
        assert [r.label for r in results] == [f"sq{i}" for i in range(5)]
        assert unwrap_all(results) == [0, 1, 4, 9, 16]
        assert all(r.ok and r.seconds >= 0 for r in results)

    def test_seed_passed_as_keyword(self):
        jobs = [Job(seeded_draw, args=(4,), seed=s) for s in (1, 2, 1)]
        a, b, a2 = unwrap_all(run_jobs(jobs, workers=1))
        assert a == a2
        assert a != b

    def test_failure_captured_not_raised(self):
        results = run_jobs([Job(boom, args=(3,))], workers=1)
        assert not results[0].ok
        assert "boom 3" in results[0].error
        assert "ValueError" in results[0].error
        with pytest.raises(RuntimeError, match="boom 3"):
            results[0].unwrap()

    def test_raise_on_error(self):
        jobs = [Job(square, args=(1,)), Job(boom, args=(9,), label="bad")]
        with pytest.raises(RuntimeError, match="bad"):
            run_jobs(jobs, workers=1, raise_on_error=True)


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        jobs = [Job(seeded_draw, args=(16,), seed=s, label=f"s{s}") for s in range(6)]
        serial = unwrap_all(run_jobs(jobs, workers=1))
        parallel = unwrap_all(run_jobs(jobs, workers=3))
        assert serial == parallel

    def test_collection_order_independent_of_completion(self):
        jobs = [Job(slow_then_value, args=(i,)) for i in range(6)]
        results = run_jobs(jobs, workers=3)
        assert unwrap_all(results) == list(range(6))

    def test_parallel_failure_isolated_to_its_job(self):
        jobs = [Job(square, args=(2,)), Job(boom, args=(1,)), Job(square, args=(3,))]
        results = run_jobs(jobs, workers=2)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].value == 4 and results[2].value == 9
        assert "boom 1" in results[1].error

    def test_workers_zero_means_per_core(self):
        assert default_workers() >= 1
        results = run_jobs([Job(square, args=(5,))], workers=0)
        assert results[0].value == 25


class TestSeedsAndTimings:
    def test_derive_seeds_deterministic_and_distinct(self):
        a = derive_seeds(42, 8)
        b = derive_seeds(42, 8)
        c = derive_seeds(43, 8)
        assert a == b
        assert a != c
        assert len(set(a)) == 8

    def test_timing_records_shape(self):
        recs = timing_records(
            [JobResult(index=0, label="x", seconds=0.5, ok=True, value=1)]
        )
        assert recs == [{"index": 0, "label": "x", "seconds": 0.5, "ok": True}]

"""Tests for the cascading discriminator, tracker, and interval analysis."""

import numpy as np
import pytest

from repro.common.keys import encode_key
from repro.hotness import (
    CascadingDiscriminator,
    HotnessTracker,
    access_intervals,
    interval_conditional_probabilities,
)
from repro.hotness.interval import probability_summary


class TestCascadingDiscriminator:
    def test_hot_object_detected(self):
        d = CascadingDiscriminator(window_capacity=100, max_filters=4, hot_threshold=3)
        hot_key = encode_key(0)
        # The hot key appears in every window; filler keys rotate.
        filler = 1
        for _ in range(500):
            d.access(hot_key)
            for _ in range(9):
                d.access(encode_key(filler))
                filler += 1
        assert d.num_sealed >= 3
        assert d.is_hot(hot_key)

    def test_cold_object_not_hot(self):
        d = CascadingDiscriminator(window_capacity=100, hot_threshold=3)
        for i in range(1000):
            d.access(encode_key(i))
        assert not d.is_hot(encode_key(10**7))

    def test_one_shot_object_not_hot(self):
        d = CascadingDiscriminator(window_capacity=50, hot_threshold=3)
        once = encode_key(999_999)
        d.access(once)
        for i in range(1000):
            d.access(encode_key(i))
        assert not d.is_hot(once)

    def test_requires_consecutive_windows(self):
        d = CascadingDiscriminator(window_capacity=10, max_filters=4, hot_threshold=3)
        k = encode_key(42)
        # Present in windows 1, 2, skip 3, present in 4: runs of 2 and 1.
        patterns = [True, True, False, True]
        for present in patterns:
            if present:
                d.access(k)
                for i in range(9):
                    d.access(encode_key(1000 + i))
            else:
                for i in range(10):
                    d.access(encode_key(2000 + i))
        assert d.num_sealed == 4
        assert not d.is_hot(k)

    def test_fifo_eviction_bounds_filters(self):
        d = CascadingDiscriminator(window_capacity=10, max_filters=4)
        for i in range(200):
            d.access(encode_key(i))
        assert d.num_sealed <= 4

    def test_too_few_windows_never_hot(self):
        d = CascadingDiscriminator(window_capacity=1000, hot_threshold=3)
        k = encode_key(1)
        for _ in range(100):
            d.access(k)
        assert not d.is_hot(k)  # nothing sealed yet

    def test_memory_bounded(self):
        d = CascadingDiscriminator(window_capacity=1000, max_filters=4, bits_per_key=10)
        for i in range(10_000):
            d.access(encode_key(i))
        # 5 filters (4 sealed + 1 open) * 10000 bits / 8.
        assert d.memory_bytes <= 5 * (1000 * 10 // 8) + 1024

    def test_reset(self):
        d = CascadingDiscriminator(window_capacity=10)
        for i in range(100):
            d.access(encode_key(i))
        d.reset()
        assert d.num_sealed == 0 and d.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CascadingDiscriminator(window_capacity=0)
        with pytest.raises(ValueError):
            CascadingDiscriminator(window_capacity=10, max_filters=2, hot_threshold=3)


class TestHotnessTracker:
    def test_skewed_workload_separates_hot_and_cold(self):
        # 80/20 workload: 20% of keys receive 80% of accesses.
        rng = np.random.default_rng(0)
        n_keys = 1000
        tracker = HotnessTracker(partition_capacity_objects=1000)
        hot_keys = set(range(n_keys // 5))
        for _ in range(20_000):
            if rng.random() < 0.8:
                kid = int(rng.integers(0, n_keys // 5))
            else:
                kid = int(rng.integers(n_keys // 5, n_keys))
            tracker.record_access(encode_key(kid))
        hot_detected = sum(
            1 for k in range(n_keys) if tracker.is_hot(encode_key(k))
        )
        hot_correct = sum(
            1 for k in hot_keys if tracker.is_hot(encode_key(k))
        )
        # Most detected-hot objects are truly hot, and most truly hot
        # objects are detected.
        assert hot_correct > len(hot_keys) * 0.7
        assert hot_detected < n_keys * 0.5

    def test_counters(self):
        tracker = HotnessTracker(10)
        tracker.record_access(b"k")
        tracker.is_hot(b"k")
        assert tracker.accesses == 1
        assert tracker.queries == 1


class TestIntervalAnalysis:
    def test_access_intervals(self):
        trace = ["a", "b", "a", "c", "a", "b"]
        iv = access_intervals(trace)
        assert list(iv["a"]) == [2, 2]
        assert list(iv["b"]) == [4]
        assert "c" not in iv  # single access, no interval

    def test_periodic_object_fully_predictable(self):
        trace = ["x", "y", "z"] * 100
        probs = interval_conditional_probabilities(trace, threshold=5, history=1)
        assert np.all(probs == 1.0)

    def test_interval_above_threshold_excluded(self):
        trace = ["x", "y", "z"] * 100
        probs = interval_conditional_probabilities(trace, threshold=2, history=1)
        assert len(probs) == 0  # every interval is 3 >= threshold

    def test_higher_history_raises_confidence_on_8020(self):
        # Reproduce the Fig. 6a trend: conditioning on more past intervals
        # (s=5 vs s=1) increases the conditional probability.
        rng = np.random.default_rng(42)
        n_keys = 500
        trace = []
        for _ in range(50_000):
            if rng.random() < 0.8:
                trace.append(int(rng.integers(0, n_keys // 5)))
            else:
                trace.append(int(rng.integers(n_keys // 5, n_keys)))
        t = int(0.02 * len(trace))
        p1 = probability_summary(
            interval_conditional_probabilities(trace, threshold=t, history=1)
        )
        p5 = probability_summary(
            interval_conditional_probabilities(trace, threshold=t, history=5)
        )
        assert p5["median"] >= p1["median"]
        # At the paper's threshold (20% of the workload size) the median
        # conditional probability is high.
        p_wide = probability_summary(
            interval_conditional_probabilities(
                trace, threshold=len(trace) // 5, history=1
            )
        )
        assert p_wide["median"] > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_conditional_probabilities(["a"], threshold=0)
        with pytest.raises(ValueError):
            interval_conditional_probabilities(["a"], threshold=1, history=0)

    def test_summary_empty(self):
        # Regression: an empty input used to report all-zero quantiles
        # (indistinguishable from "every object is cold") and a float
        # object count.  Emptiness is now explicit: NaN quantiles, int 0.
        s = probability_summary(np.array([]))
        assert s["objects"] == 0
        assert isinstance(s["objects"], int)
        assert np.isnan(s["median"])
        assert np.isnan(s["p25"])
        assert np.isnan(s["p75"])

    def test_summary_objects_is_int(self):
        s = probability_summary(np.array([0.25, 0.75]))
        assert s["objects"] == 2
        assert isinstance(s["objects"], int)

"""Unit tests for SSTable build and read paths."""

import pytest

from repro.common.cache import LRUCache
from repro.common.errors import ReproError
from repro.common.keys import encode_key
from repro.common.records import Record
from repro.lsm.sstable import SSTableBuilder, build_sstable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


@pytest.fixture
def fs():
    profile = DeviceProfile(
        name="t",
        capacity_bytes=4096 * 4096,
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=1e8,
        write_bandwidth=5e7,
    )
    return SimFilesystem(SimDevice(profile))


def records(n, vlen=100):
    return [Record(encode_key(i), bytes([i % 256]) * vlen, i + 1) for i in range(n)]


class TestSSTableBuilder:
    def test_build_and_get_all(self, fs):
        recs = records(500)
        table = build_sstable(fs, 1, recs)
        assert table.num_records == 500
        for r in recs[:: 50]:
            got, _ = table.get(r.key)
            assert got is not None and got.value == r.value

    def test_get_missing_key(self, fs):
        table = build_sstable(fs, 1, records(100))
        got, _ = table.get(encode_key(10**6))
        assert got is None

    def test_out_of_order_rejected(self, fs):
        b = SSTableBuilder(fs, 1)
        b.add(Record(encode_key(5), b"v", 1))
        with pytest.raises(ReproError):
            b.add(Record(encode_key(4), b"v", 2))
        with pytest.raises(ReproError):
            b.add(Record(encode_key(5), b"v", 3))
        b.abandon()

    def test_empty_table_rejected(self, fs):
        b = SSTableBuilder(fs, 1)
        with pytest.raises(ReproError):
            b.finish()
        assert fs.device.allocated_pages == 0  # space reclaimed

    def test_abandon_frees_space(self, fs):
        b = SSTableBuilder(fs, 1)
        for r in records(100):
            b.add(r)
        b.abandon()
        assert fs.device.allocated_pages == 0

    def test_double_finish_rejected(self, fs):
        b = SSTableBuilder(fs, 1)
        b.add(Record(b"k", b"v", 1))
        b.finish()
        with pytest.raises(ReproError):
            b.finish()

    def test_blocks_respect_block_size(self, fs):
        table = build_sstable(fs, 1, records(500, vlen=100), block_size=1024)
        assert len(table.handles) > 1
        for h in table.handles:
            assert h.length <= 1024 + 200  # one record of slack past the target

    def test_key_range(self, fs):
        table = build_sstable(fs, 1, records(100))
        assert table.first_key == encode_key(0)
        assert table.last_key == encode_key(99)
        assert table.key_range.contains(encode_key(50))

    def test_metadata_charged_to_file(self, fs):
        table = build_sstable(fs, 1, records(100))
        assert table.size_bytes > table.data_bytes


class TestSSTableReads:
    def test_bloom_screens_missing_keys_without_io(self, fs):
        table = build_sstable(fs, 1, records(200))
        fs.device.traffic.reset()
        misses = 0
        for i in range(10**5, 10**5 + 200):
            got, _ = table.get(encode_key(i))
            assert got is None
            misses += 1
        # Bloom lets most misses avoid any device read.
        read_ios = fs.device.traffic.read_ios(TrafficKind.FOREGROUND)
        assert read_ios < misses * 0.05

    def test_point_read_charges_one_block(self, fs):
        table = build_sstable(fs, 1, records(500))
        fs.device.traffic.reset()
        table.get(encode_key(250))
        assert 0 < fs.device.traffic.read_bytes(TrafficKind.FOREGROUND) <= 2 * 4096

    def test_cache_absorbs_repeat_reads(self, fs):
        table = build_sstable(fs, 1, records(500))
        cache = LRUCache(1 << 20)
        table.get(encode_key(250), cache=cache)
        fs.device.traffic.reset()
        _, service = table.get(encode_key(250), cache=cache)
        assert service == 0.0
        assert fs.device.traffic.read_bytes() == 0

    def test_iter_records_sorted_complete(self, fs):
        recs = records(300)
        table = build_sstable(fs, 1, recs)
        out = list(table.iter_records())
        assert [r.key for r in out] == [r.key for r in recs]

    def test_iter_from(self, fs):
        table = build_sstable(fs, 1, records(100))
        out = [r.key for r in table.iter_from(encode_key(90))]
        assert out == [encode_key(i) for i in range(90, 100)]

    def test_iter_from_between_keys(self, fs):
        table = build_sstable(fs, 1, [Record(encode_key(i * 10), b"v", i + 1) for i in range(10)])
        out = [r.key for r in table.iter_from(encode_key(45))]
        assert out[0] == encode_key(50)

    def test_get_with_compaction_kind_charges_compaction(self, fs):
        table = build_sstable(fs, 1, records(100))
        fs.device.traffic.reset()
        list(table.iter_records(TrafficKind.COMPACTION))
        assert fs.device.traffic.read_bytes(TrafficKind.COMPACTION) > 0
        assert fs.device.traffic.read_bytes(TrafficKind.FOREGROUND) == 0

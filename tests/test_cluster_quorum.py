"""Tests for cluster quorum mechanics (repro.cluster.router).

Covers the quorum edge cases called out in the robustness issue: the RF=1
degenerate cluster matching a bare single-node engine byte-for-byte,
``R + W <= RF`` rejected at construction, and write-quorum-met-with-one-
replica-down read-back — plus hinted handoff, read repair, tombstone
resolution, and rebalance migration jobs.
"""

import hashlib

import pytest

from repro.chaos.harness import _ops_stream
from repro.cluster import (
    ClusterConfig,
    HyperDBCluster,
    pack_envelope,
    unpack_envelope,
)
from repro.cluster.node import _NODE_NVME, _NODE_SATA, _node_config
from repro.common.errors import (
    ConfigError,
    DeviceOfflineError,
    KeyNotFoundError,
    QuorumError,
)
from repro.common.keys import encode_key
from repro.core.hyperdb import HyperDB
from repro.health.state import HealthState, HealthWindow
from repro.simssd.device import SimDevice


def cluster(num_nodes=3, rf=3, r=2, w=2, windows=(), seed=0):
    cfg = ClusterConfig(
        num_nodes=num_nodes, replication_factor=rf, read_quorum=r, write_quorum=w
    )
    return HyperDBCluster(cfg, windows=tuple(windows), seed=seed)


def offline(node, start, end):
    return HealthWindow(
        device=node, state=HealthState.OFFLINE, start_io=start, end_io=end
    )


def key_with_replica(c, node, position=1):
    """First key whose preference list has ``node`` at ``position``."""
    for i in range(10_000):
        k = encode_key(i)
        reps = c.ring.replicas_for(k, c.config.replication_factor)
        if reps[position] == node:
            return k
    raise AssertionError(f"no key places {node} at position {position}")


class TestConfigValidation:
    def test_quorum_overlap_required(self):
        # R + W <= RF would let a read quorum miss the last write quorum.
        with pytest.raises(ConfigError):
            ClusterConfig(replication_factor=3, read_quorum=1, write_quorum=2)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ClusterConfig(replication_factor=3, read_quorum=1, write_quorum=1)

    def test_rf_bounded_by_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=2, replication_factor=3)

    def test_quorums_bounded_by_rf(self):
        with pytest.raises(ConfigError):
            ClusterConfig(replication_factor=2, read_quorum=3, write_quorum=2)
        with pytest.raises(ConfigError):
            ClusterConfig(replication_factor=2, read_quorum=2, write_quorum=0)

    def test_node_name_count_checked(self):
        with pytest.raises(ConfigError):
            HyperDBCluster(ClusterConfig(num_nodes=3), node_names=["a", "b"])

    def test_valid_shapes_accepted(self):
        ClusterConfig(num_nodes=1, replication_factor=1, read_quorum=1, write_quorum=1)
        ClusterConfig(num_nodes=5, replication_factor=3, read_quorum=2, write_quorum=2)
        ClusterConfig(num_nodes=3, replication_factor=3, read_quorum=1, write_quorum=3)


class TestEnvelope:
    def test_round_trip(self):
        env = pack_envelope(42, b"payload")
        assert unpack_envelope(env) == (42, False, b"payload")

    def test_tombstone_flag(self):
        env = pack_envelope(7, b"", tombstone=True)
        assert unpack_envelope(env) == (7, True, b"")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            unpack_envelope(b"\x00" * 8)

    def test_negative_seqno_rejected(self):
        with pytest.raises(ValueError):
            pack_envelope(-1, b"x")


class TestDegenerateClusterEqualsSingleNode:
    def test_rf1_matches_bare_engine_digest(self):
        # An RF=1/R=1/W=1 single-node cluster is just routing overhead
        # around one HyperDB: the final logical state must be
        # byte-identical to a bare engine fed the same op stream.
        seed = 0
        c = cluster(num_nodes=1, rf=1, r=1, w=1, seed=seed)
        rng_seed = seed * 1_000_003 + sum(b"node-0")
        bare = HyperDB(
            SimDevice(_NODE_NVME), SimDevice(_NODE_SATA), _node_config(rng_seed)
        )

        ops = _ops_stream(seed=11, n=150)
        touched = sorted({key for _, key, _ in ops})
        for op, key, value in ops:
            if op == "put":
                c.put(key, value)
                bare.put(key, value)
            elif op == "get":
                c.get(key)
                bare.get(key)
            else:
                c.delete(key)
                try:
                    bare.delete(key)
                except KeyNotFoundError:
                    pass

        def digest(read):
            h = hashlib.sha256()
            for key in touched:
                value = read(key)
                h.update(key)
                h.update(b"\x00" if value is None else b"\x01" + value)
            return h.hexdigest()

        assert digest(lambda k: c.get(k)[0]) == digest(lambda k: bare.get(k)[0])


class TestQuorumWrites:
    def test_write_quorum_met_with_one_replica_down(self):
        c = cluster(windows=[offline("node-1", 1, 200)])
        k = key_with_replica(c, "node-1")
        c.put(k, b"survives")
        # 2/3 acks met W=2; the down replica got a hint, not a write.
        assert c.counters()["quorum_writes"] == 1
        assert c.counters()["hints_stored"] == 1
        assert c.pending_hints == 1
        value, _ = c.get(k)
        assert value == b"survives"

    def test_sub_quorum_write_raises_with_attribution(self):
        c = cluster(windows=[offline("node-0", 1, 200), offline("node-1", 1, 200)])
        k = encode_key(0)
        with pytest.raises(QuorumError) as ei:
            c.put(k, b"x")
        err = ei.value
        assert err.kind == "write"
        assert err.acks == 1 and err.required == 2 and err.rf == 3
        assert set(err.failures) == {"node-0", "node-1"}
        assert all(reason == "offline" for reason in err.failures.values())
        assert c.counters()["quorum_write_failures"] == 1

    def test_offline_rejection_carries_node_id(self):
        c = cluster(windows=[offline("node-2", 1, 200)])
        c.clock = 1  # the guard resolves health at the current op tick
        with pytest.raises(DeviceOfflineError) as ei:
            c._replica_guard("node-2")
        assert ei.value.node_id == "node-2"
        assert c.offline_rejections["node-2"] == 1

    def test_delete_is_a_quorum_tombstone(self):
        c = cluster()
        k = encode_key(1)
        c.put(k, b"v1")
        c.delete(k)
        value, _ = c.get(k)
        assert value is None
        # The engine still holds tombstone envelopes on every replica —
        # deletes never erase version information.
        for name in c.ring.replicas_for(k, 3):
            env, _ = c.nodes[name].get_envelope(k)
            assert env is not None and env[1] is True


class TestHintedHandoff:
    def test_hints_replay_when_node_recovers(self):
        c = cluster(windows=[offline("node-1", 1, 2)])
        k = key_with_replica(c, "node-1")
        c.put(k, b"missed")  # tick 1: node-1 down, hint stored
        assert c.pending_hints == 1
        c.put(encode_key(9_999), b"unrelated")  # tick 2: node-1 back, replay
        assert c.pending_hints == 0
        assert c.counters()["hints_replayed"] == 1
        env, _ = c.nodes["node-1"].get_envelope(k)
        assert env is not None and env[2] == b"missed"

    def test_obsolete_hint_skipped(self):
        c = cluster(windows=[offline("node-1", 1, 2)])
        k = key_with_replica(c, "node-1")
        c.put(k, b"old")  # tick 1: hint for node-1 at seqno 1
        # tick 2: read_full repairs node-1 to the newest envelope before
        # the hint queue drains (read_full does not replay hints).
        c.read_full(k)
        assert c.counters()["read_repairs"] >= 1
        assert c.drain_hints() == 0
        assert c.counters()["hints_obsolete"] == 1
        env, _ = c.nodes["node-1"].get_envelope(k)
        assert env is not None and env[2] == b"old"

    def test_newer_write_supersedes_queued_hint(self):
        c = cluster(windows=[offline("node-1", 1, 3)])
        k = key_with_replica(c, "node-1")
        c.put(k, b"v1")  # tick 1, hint seqno 1
        c.put(k, b"v2")  # tick 2, hint seqno 2
        assert c.pending_hints == 2
        assert c.drain_hints() >= 1  # tick 3: node-1 back
        env, _ = c.nodes["node-1"].get_envelope(k)
        assert env is not None and env[2] == b"v2"
        value, _ = c.get(k)
        assert value == b"v2"


class TestReadsAndRepair:
    def test_read_quorum_failure_attributed(self):
        c = cluster(windows=[offline("node-0", 1, 200), offline("node-1", 1, 200)])
        with pytest.raises(QuorumError) as ei:
            c.get(encode_key(3))
        assert ei.value.kind == "read"
        assert ei.value.acks == 1 and ei.value.required == 2

    def test_read_repair_heals_stale_replica(self):
        c = cluster(windows=[offline("node-1", 1, 2)])
        k = key_with_replica(c, "node-1")
        c.put(k, b"fresh")  # node-1 missed it
        before = c.counters()["read_repairs"]
        value, _ = c.read_full(k)  # tick 2: node-1 up, empty, repaired
        assert value == b"fresh"
        assert c.counters()["read_repairs"] == before + 1
        env, _ = c.nodes["node-1"].get_envelope(k)
        assert env is not None and env[2] == b"fresh"

    def test_newest_seqno_wins_across_replicas(self):
        c = cluster()
        k = encode_key(5)
        c.put(k, b"v1")
        c.put(k, b"v2")
        # Force one replica stale by hand, then read with full fan-out.
        name = c.ring.replicas_for(k, 3)[2]
        c.nodes[name].put_envelope(k, pack_envelope(1, b"v1"))
        value, _ = c.read_full(k)
        assert value == b"v2"

    def test_missing_key_reads_none(self):
        c = cluster()
        value, _ = c.get(encode_key(4_321))
        assert value is None


class TestRebalance:
    def seeded(self):
        c = cluster()
        for i in range(60):
            c.put(encode_key(i), b"val-%03d" % i)
        return c

    def test_join_copies_gained_shards(self):
        c = self.seeded()
        jobs = c.add_node("node-3")
        assert jobs and all(j.dst == "node-3" for j in jobs)
        moved = sum(j.copied for j in jobs)
        assert moved == c.counters()["rebalanced_keys"] > 0
        # Every migrated key is readable from the new full preference list.
        for i in range(60):
            value, _ = c.get(encode_key(i))
            assert value == b"val-%03d" % i

    def test_join_of_down_node_hints_instead(self):
        c = self.seeded()
        tick = c.clock
        c.windows = (offline("node-3", 1, tick + 100),)
        jobs = c.add_node("node-3")
        assert sum(j.hinted for j in jobs) > 0
        assert sum(j.copied for j in jobs) == 0
        assert c.pending_hints == sum(j.hinted for j in jobs)

    def test_graceful_drain_preserves_every_key(self):
        c = self.seeded()
        c.add_node("node-3")
        jobs = c.remove_node("node-1")
        assert "node-1" not in c.nodes and "node-1" not in c.ring
        assert sum(j.copied for j in jobs) > 0
        for i in range(60):
            value, _ = c.get(encode_key(i))
            assert value == b"val-%03d" % i

    def test_rebalance_is_deterministic(self):
        def run():
            c = self.seeded()
            jobs = c.add_node("node-3")
            return [(j.dst, j.copied, j.hinted, j.skipped, j.keys) for j in jobs]

        assert run() == run()

"""Tests for the trace report renderers and the ``python -m repro.obs`` CLI."""

import pytest

from repro.obs.events import TraceRecorder
from repro.obs.report import (
    cascade,
    diff,
    lane_totals_from_events,
    render,
    summarize,
    timeline,
)
from repro.obs.__main__ import main as obs_main


def sample_recorder():
    rec = TraceRecorder(capacity=64)
    rec.begin("flush", t=0.0, records=10)
    rec.io("nvme", "flush", "write", 8192, 1, t=0.001)
    rec.begin("compaction", t=0.002, parent_level=1, child_level=2)
    rec.io("sata", "compaction", "read", 4096, 1, t=0.003)
    rec.io("sata", "compaction", "write", 4096, 1, t=0.004)
    rec.end("compaction", t=0.005, output_tables=1)
    rec.end("flush", t=0.006)
    rec.note_phase(
        {
            "phase": "run",
            "traffic": {"nvme": {"flush": {"read_bytes": 0, "write_bytes": 8192}}},
        }
    )
    return rec


class TestRenderers:
    def test_summarize_lists_census_lanes_and_phases(self):
        out = summarize(sample_recorder().to_doc())
        assert "== trace summary ==" in out
        assert "7 retained / 7 emitted (0 dropped)" in out
        assert "io" in out and "flush_begin" in out
        assert "device nvme:" in out and "device sata:" in out
        assert "8.0KiB" in out  # nvme flush write total
        assert "run" in out  # the phase line

    def test_lane_totals_from_events_cross_check(self):
        doc = sample_recorder().to_doc()
        assert lane_totals_from_events(doc) == doc["lane_totals"]

    def test_lane_totals_diverge_only_when_ring_dropped(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.io("nvme", "wal", "write", 4096, 1, t=float(i))
        doc = rec.to_doc()
        from_ring = lane_totals_from_events(doc)
        assert from_ring["nvme"]["wal"]["write_bytes"] == 2 * 4096  # truncated
        assert doc["lane_totals"]["nvme"]["wal"]["write_bytes"] == 5 * 4096

    def test_timeline_strips_and_empty_case(self):
        out = timeline(sample_recorder().to_doc(), buckets=8)
        assert "== timeline ==" in out
        assert "device nvme:" in out
        assert "|" in out
        empty = timeline({"events": []})
        assert "no timestamped io events" in empty

    def test_cascade_nests_spans(self):
        out = cascade(sample_recorder().to_doc())
        lines = out.splitlines()
        assert lines[1].startswith("+ flush")
        # The compaction span is indented one level under the flush span.
        assert any(l.startswith("  + compaction") for l in lines)
        assert cascade({"events": []}).endswith("(no span events in the ring)")

    def test_diff_agreement_and_delta(self):
        doc = sample_recorder().to_doc()
        assert "traces agree" in diff(doc, doc)
        other = sample_recorder()
        other.io("nvme", "flush", "write", 4096, 1, t=0.01)
        out = diff(doc, other.to_doc(), label_a="base", label_b="cand")
        assert "(cand - base)" in out
        assert "+4,096" in out
        assert "io" in out  # event-count delta section

    def test_render_dispatch(self):
        doc = sample_recorder().to_doc()
        assert render(doc).startswith("== trace summary ==")
        assert "== cascade ==" in render(doc, mode="timeline")
        with pytest.raises(ValueError):
            render(doc, mode="nope")


class TestCli:
    def export(self, tmp_path, name="t.jsonl", rec=None):
        path = str(tmp_path / name)
        (rec or sample_recorder()).export_jsonl(path)
        return path

    def test_summarize_command(self, tmp_path, capsys):
        assert obs_main(["summarize", self.export(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== trace summary ==" in out
        assert "device nvme:" in out

    def test_timeline_command(self, tmp_path, capsys):
        assert obs_main(["timeline", self.export(tmp_path), "--buckets", "4"]) == 0
        out = capsys.readouterr().out
        assert "== timeline ==" in out
        assert "== cascade ==" in out

    def test_diff_command(self, tmp_path, capsys):
        a = self.export(tmp_path, "a.jsonl")
        b = self.export(tmp_path, "b.jsonl")
        assert obs_main(["diff", a, b]) == 0
        assert "traces agree" in capsys.readouterr().out

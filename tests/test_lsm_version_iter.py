"""Unit tests for the version (level) structure and merge iterator."""

import pytest

from repro.common.errors import ReproError
from repro.common.keys import encode_key
from repro.common.records import Record
from repro.lsm.iterator import merge_records
from repro.lsm.version import Version
from repro.lsm.sstable import build_sstable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem


@pytest.fixture
def fs():
    profile = DeviceProfile(
        name="t",
        capacity_bytes=4096 * 4096,
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=1e8,
        write_bandwidth=5e7,
    )
    return SimFilesystem(SimDevice(profile))


def mktable(fs, tid, lo, hi):
    return build_sstable(
        fs, tid, [Record(encode_key(i), b"v", i + 1) for i in range(lo, hi)]
    )


class TestMergeRecords:
    def test_merges_sorted(self):
        a = [Record(encode_key(i), b"a", 1) for i in (1, 3, 5)]
        b = [Record(encode_key(i), b"b", 2) for i in (2, 4, 6)]
        out = list(merge_records([iter(a), iter(b)]))
        assert [r.key for r in out] == [encode_key(i) for i in range(1, 7)]

    def test_newest_seqno_wins(self):
        old = [Record(encode_key(1), b"old", 1)]
        new = [Record(encode_key(1), b"new", 9)]
        out = list(merge_records([iter(old), iter(new)]))
        assert len(out) == 1 and out[0].value == b"new"

    def test_stream_priority_breaks_seqno_ties(self):
        a = [Record(encode_key(1), b"first", 5)]
        b = [Record(encode_key(1), b"second", 5)]
        out = list(merge_records([iter(a), iter(b)]))
        assert out[0].value == b"first"

    def test_drop_tombstones(self):
        recs = [Record.tombstone(encode_key(1), 2), Record(encode_key(2), b"v", 1)]
        out = list(merge_records([iter(recs)], drop_tombstones=True))
        assert [r.key for r in out] == [encode_key(2)]

    def test_tombstone_shadows_older_value(self):
        values = [Record(encode_key(1), b"v", 1)]
        tomb = [Record.tombstone(encode_key(1), 2)]
        out = list(merge_records([iter(tomb), iter(values)], drop_tombstones=True))
        assert out == []

    def test_empty_streams(self):
        assert list(merge_records([iter([]), iter([])])) == []
        assert list(merge_records([])) == []


class TestVersion:
    def test_level0_allows_overlap(self, fs):
        v = Version(4)
        v.add_table(0, mktable(fs, 1, 0, 100))
        v.add_table(0, mktable(fs, 2, 50, 150))
        assert len(v.level(0)) == 2

    def test_sorted_level_rejects_overlap(self, fs):
        v = Version(4)
        v.add_table(1, mktable(fs, 1, 0, 100))
        with pytest.raises(ReproError):
            v.add_table(1, mktable(fs, 2, 50, 150))

    def test_sorted_level_keeps_order(self, fs):
        v = Version(4)
        v.add_table(1, mktable(fs, 1, 200, 300))
        v.add_table(1, mktable(fs, 2, 0, 100))
        v.add_table(1, mktable(fs, 3, 100, 200))
        firsts = [t.first_key for t in v.level(1)]
        assert firsts == sorted(firsts)

    def test_overlapping_query(self, fs):
        v = Version(4)
        t1 = mktable(fs, 1, 0, 100)
        t2 = mktable(fs, 2, 100, 200)
        v.add_table(1, t1)
        v.add_table(1, t2)
        hits = v.overlapping(1, encode_key(50), encode_key(60))
        assert hits == [t1]
        hits = v.overlapping(1, encode_key(95), encode_key(105))
        assert set(h.table_id for h in hits) == {1, 2}

    def test_remove_table(self, fs):
        v = Version(4)
        t = mktable(fs, 1, 0, 10)
        v.add_table(1, t)
        v.remove_table(1, t)
        assert len(v.level(1)) == 0
        with pytest.raises(ReproError):
            v.remove_table(1, t)

    def test_first_level_one(self, fs):
        v = Version(4, first_level=1)
        assert v.level(1).level == 1
        with pytest.raises(ReproError):
            v.level(0)
        # Level 1 in a first_level=1 tree is sorted (non-overlapping).
        v.add_table(1, mktable(fs, 1, 0, 100))
        with pytest.raises(ReproError):
            v.add_table(1, mktable(fs, 2, 50, 150))

    def test_deepest_nonempty(self, fs):
        v = Version(5)
        assert v.deepest_nonempty_level() == 0
        v.add_table(3, mktable(fs, 1, 0, 10))
        assert v.deepest_nonempty_level() == 3

    def test_size_accounting(self, fs):
        v = Version(4)
        t = mktable(fs, 1, 0, 100)
        v.add_table(1, t)
        assert v.total_size_bytes() == t.size_bytes
        assert v.total_tables() == 1

    def test_min_levels_validation(self):
        with pytest.raises(ReproError):
            Version(1)

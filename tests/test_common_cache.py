"""Unit tests for LRUCache and ObjectCache."""

import pytest

from repro.common.cache import LRUCache, ObjectCache


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(100)
        c.put("a", 1, charge=10)
        assert c.get("a") == 1
        assert c.used_bytes == 10

    def test_eviction_order(self):
        c = LRUCache(30)
        c.put("a", 1, charge=10)
        c.put("b", 2, charge=10)
        c.put("c", 3, charge=10)
        c.get("a")  # refresh a; b is now LRU
        c.put("d", 4, charge=10)
        assert "b" not in c
        assert "a" in c and "c" in c and "d" in c

    def test_replace_adjusts_charge(self):
        c = LRUCache(100)
        c.put("a", 1, charge=60)
        c.put("a", 2, charge=10)
        assert c.used_bytes == 10
        assert c.get("a") == 2

    def test_oversized_entry_not_cached(self):
        c = LRUCache(10)
        c.put("big", 1, charge=100)
        assert "big" not in c
        assert c.used_bytes == 0

    def test_oversized_replaces_existing(self):
        c = LRUCache(10)
        c.put("k", 1, charge=5)
        c.put("k", 2, charge=100)
        assert "k" not in c

    def test_hit_miss_counters(self):
        c = LRUCache(100)
        c.put("a", 1)
        c.get("a")
        c.get("zz")
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_peek_no_side_effects(self):
        c = LRUCache(100)
        c.put("a", 1)
        assert c.peek("a") == 1
        assert c.hits == 0 and c.misses == 0

    def test_invalidate(self):
        c = LRUCache(100)
        c.put("a", 1, charge=7)
        assert c.invalidate("a")
        assert not c.invalidate("a")
        assert c.used_bytes == 0

    def test_clear(self):
        c = LRUCache(100)
        c.put("a", 1, charge=7)
        c.clear()
        assert len(c) == 0 and c.used_bytes == 0

    def test_uncacheable_overwrite_releases_charge(self):
        # Regression: overwriting a cached entry with an uncacheable value
        # used to drop the entry without refunding its charge, leaking
        # used_bytes until the budget was permanently exhausted.
        c = LRUCache(10)
        c.put("k", 1, charge=8)
        c.put("k", 2, charge=100)  # uncacheable; must release the old 8B
        assert c.used_bytes == 0
        c.put("a", 3, charge=10)  # the full budget is available again
        assert c.get("a") == 3
        assert c.used_bytes == 10

    def test_repeated_uncacheable_overwrites_do_not_leak(self):
        c = LRUCache(10)
        for _ in range(5):
            c.put("k", 1, charge=6)
            c.put("k", 2, charge=11)
        assert len(c) == 0
        assert c.used_bytes == 0

    def test_zero_capacity(self):
        c = LRUCache(0)
        c.put("a", 1, charge=1)
        assert "a" not in c

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestObjectCache:
    def test_spill_on_eviction(self):
        spilled = []
        c = ObjectCache(2, on_evict=lambda k, v: spilled.append((k, v)))
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert spilled == [("a", 1)]
        assert "a" not in c

    def test_get_refreshes(self):
        spilled = []
        c = ObjectCache(2, on_evict=lambda k, v: spilled.append(k))
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")
        c.put("c", 3)
        assert spilled == ["b"]

    def test_pop(self):
        c = ObjectCache(4)
        c.put("a", 1)
        assert c.pop("a") == 1
        assert c.pop("a", "dflt") == "dflt"

    def test_drain(self):
        spilled = []
        c = ObjectCache(4, on_evict=lambda k, v: spilled.append(k))
        c.put("a", 1)
        c.put("b", 2)
        out = c.drain()
        assert [k for k, _ in out] == ["a", "b"]
        assert spilled == ["a", "b"]
        assert len(c) == 0

    def test_drain_callback_failure_no_double_spill(self):
        # Regression: drain used to spill an entry before removing it, so a
        # callback failure left the entry in the cache and a retried drain
        # flushed it to the hot zone twice.
        spilled = []

        def on_evict(key, value):
            if key == "b":
                raise RuntimeError("spill target unavailable")
            spilled.append(key)

        c = ObjectCache(4, on_evict=on_evict)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        with pytest.raises(RuntimeError):
            c.drain()
        # "a" spilled once; "b" was popped before its callback failed.
        assert spilled == ["a"]
        assert "a" not in c and "b" not in c
        out = c.drain()
        assert [k for k, _ in out] == ["c"]
        assert spilled == ["a", "c"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ObjectCache(0)

"""Tests for the background integrity scrub & repair subsystem (DESIGN.md §14).

Covers the scrubber's repair escalation ladder on every surface it walks
(zone slots, semi-SSTable blocks, checkpoints), the health pause/catch-up
discipline, the LSM-tree scrub (WAL sidecar verify, table quarantine),
cluster corrupt-replica read-repair and anti-entropy, the scrub-disabled
digest guarantee, and a property sweep asserting the end-to-end corruption
contract: a single bit-flip in any persisted structure is either healed,
provably harmless, or surfaced (suspect/CorruptionError) — never silently
served as wrong bytes.
"""

import random
import zlib

import pytest

from repro.common.errors import CorruptionError, ReproError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.core import HyperDB, HyperDBConfig
from repro.cluster import ClusterConfig, HyperDBCluster
from repro.health.state import HealthState, HealthWindow
from repro.lsm.lsmtree import LSMOptions, LSMTree
from repro.nvme.config import NVMeConfig
from repro.scrub import ScrubConfig, Scrubber, ScrubStats, scrub_lsm_tree
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind
from repro.simssd.faults import FaultInjector, FaultPlan

KEYSPACE = 50_000
KiB = 1024
MiB = 1024 * KiB


def nvme_device(mib=4, injector=None):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        ),
        injector=injector,
    )


def sata_device(mib=64, injector=None):
    return SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        ),
        injector=injector,
    )


def make_db(nvme_mib=4, sata_mib=64, injector=None, **cfg_kw):
    cfg = HyperDBConfig(
        key_space=KeyRange(encode_key(0), encode_key(KEYSPACE)),
        nvme=NVMeConfig(
            num_partitions=4,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
        **cfg_kw,
    )
    return HyperDB(
        nvme_device(nvme_mib, injector=injector),
        sata_device(sata_mib, injector=injector),
        cfg,
    )


def k(i):
    return encode_key(i)


def corrupt_slot(db, key, bit=0):
    """Flip one bit of ``key``'s resident NVMe slot bytes on media."""
    partition = db.performance_tier.partition_for_key(key)
    loc = partition.resident_location(key)
    assert loc is not None, "key is not NVMe-resident"
    page = partition.page_store._pages[loc.page_id]
    page[loc.offset + bit // 8] ^= 1 << (bit % 8)
    return partition, loc


def plant_promoted(db, key, value, seqno=None):
    """Install ``key`` as a promoted NVMe resident whose authoritative twin
    sits in the capacity tier (the §3.5 promote-on-read layout)."""
    rec = Record(key, value, db.next_seqno() if seqno is None else seqno)
    db.capacity_tier.ingest([rec], TrafficKind.MIGRATION)
    partition = db.performance_tier.partition_for_key(key)
    partition.promote(rec, TrafficKind.MIGRATION)
    loc = partition.resident_location(key)
    assert loc is not None and loc.promoted
    return rec


def semi_table_for(db, key):
    """The capacity-tier table currently holding ``key``."""
    levels = db.capacity_tier.levels
    for level_no in range(1, levels.num_levels + 1):
        for table in levels.level(level_no).tables.values():
            if key in table._key_map:
                return table
    raise AssertionError("key not found in any capacity table")


def corrupt_semi_block(table, key):
    """Flip one bit of the media block holding ``key``; returns the block."""
    block = table._blocks_by_id[table._key_map[key][0]]
    table.file._data[block.offset] ^= 0x01
    return block


def fill_past_watermark(db, value_size=512, start=0):
    i = start
    while db.migration.stats.demotion_jobs == 0 and i < KEYSPACE:
        db.put(k(i), bytes([i % 256]) * value_size)
        i += 1
    assert db.migration.stats.demotion_jobs > 0
    return i


# ---------------------------------------------------------------------------
# Config + cadence
# ---------------------------------------------------------------------------


class TestScrubConfig:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ScrubConfig(interval_ops=0)

    def test_reread_attempts_nonnegative(self):
        with pytest.raises(ValueError):
            ScrubConfig(reread_attempts=-1)

    def test_db_without_scrubber(self):
        db = make_db()
        assert db.scrubber is None
        with pytest.raises(ReproError):
            db.scrub()

    def test_maybe_run_cadence(self):
        db = make_db(scrub=ScrubConfig(interval_ops=10))
        scrubber = db.scrubber
        assert not scrubber.maybe_run(4)
        assert not scrubber.maybe_run(5)
        assert scrubber.maybe_run(1)  # 10 ops accounted -> pass fires
        assert scrubber.stats.passes == 1
        assert not scrubber.maybe_run(9)  # counter reset after the pass


class TestCleanStoreScrub:
    def test_full_pass_scans_everything_and_heals_nothing(self):
        db = make_db(nvme_mib=2, scrub=ScrubConfig())
        written = fill_past_watermark(db)
        assert db.scrub() is True
        st = db.scrubber.stats
        assert st.passes == 1
        assert st.zone_slots_scanned > 0
        assert st.semi_blocks_scanned > 0
        assert st.detected == 0
        assert st.repaired == 0
        assert st.unrecoverable == 0
        # Scrub reads ride the dedicated background lane, not foreground.
        assert db.nvme_device.traffic.read_bytes(TrafficKind.SCRUB) > 0
        for i in range(0, written, max(1, written // 40)):
            assert db.get(k(i))[0] == bytes([i % 256]) * 512

    def test_scrub_traffic_charged_on_both_devices(self):
        db = make_db(nvme_mib=2, scrub=ScrubConfig())
        fill_past_watermark(db)
        db.scrub()
        assert db.sata_device.traffic.read_bytes(TrafficKind.SCRUB) > 0


# ---------------------------------------------------------------------------
# Zone-slot repair ladder
# ---------------------------------------------------------------------------


class TestZoneSlotLadder:
    def test_promoted_slot_rebuilt_from_capacity_twin(self):
        db = make_db(scrub=ScrubConfig())
        plant_promoted(db, k(1), b"twin" * 40)
        corrupt_slot(db, k(1))
        assert db.scrub() is True
        st = db.scrubber.stats
        assert st.detected == 1
        assert st.repaired == 1
        assert st.unrecoverable == 0
        # The rebuilt resident carries a fresh valid checksum.
        loc = db.performance_tier.partition_for_key(k(1)).resident_location(k(1))
        assert loc is not None and loc.promoted
        assert db.get(k(1))[0] == b"twin" * 40
        assert db.stats.counter("scrub_repaired").value == 1

    def test_nonpromoted_slot_surfaces_as_unrecoverable(self):
        db = make_db(scrub=ScrubConfig())
        db.put(k(2), b"newest")
        corrupt_slot(db, k(2))
        db.scrub()
        st = db.scrubber.stats
        assert st.detected == 1
        assert st.unrecoverable == 1
        assert st.unrecoverable_keys == [k(2)]
        assert k(2) in db.suspect_keys
        # The corrupt copy is gone: readers see honest absence, not garbage.
        assert db.get(k(2))[0] is None

    def test_second_pass_finds_nothing_new(self):
        db = make_db(scrub=ScrubConfig())
        plant_promoted(db, k(3), b"v" * 64)
        corrupt_slot(db, k(3))
        db.scrub()
        detected = db.scrubber.stats.detected
        db.scrub()
        assert db.scrubber.stats.detected == detected

    def test_foreground_read_falls_back_for_promoted(self):
        db = make_db()
        plant_promoted(db, k(4), b"safe" * 16)
        corrupt_slot(db, k(4))
        value, _ = db.get(k(4))
        assert value == b"safe" * 16  # served from the capacity twin
        assert db.stats.counter("nvme_corrupt_reads").value == 1
        assert k(4) not in db.suspect_keys

    def test_foreground_read_nonpromoted_counts_stale_fallback(self):
        db = make_db()
        db.put(k(5), b"only-copy")
        corrupt_slot(db, k(5))
        value, _ = db.get(k(5))
        assert value is None
        assert db.stats.counter("corrupt_stale_fallbacks").value == 1
        assert k(5) in db.suspect_keys


# ---------------------------------------------------------------------------
# Semi-SSTable block repair
# ---------------------------------------------------------------------------


class TestSemiBlockLadder:
    def test_block_rebuilt_from_promoted_residents(self):
        db = make_db(scrub=ScrubConfig())
        keys = [k(100 + i) for i in range(6)]
        recs = [Record(key, b"cap" * 30, db.next_seqno()) for key in keys]
        db.capacity_tier.ingest(recs, TrafficKind.MIGRATION)
        for rec in recs:
            db.performance_tier.partition_for_key(rec.key).promote(
                rec, TrafficKind.MIGRATION
            )
        table = semi_table_for(db, keys[0])
        block = corrupt_semi_block(table, keys[0])
        victims = [key for key, e in table._key_map.items() if e[0] == block.block_id]
        db.scrub()
        st = db.scrubber.stats
        assert st.detected >= 1
        assert st.repaired >= len(victims)  # every victim healed from NVMe
        assert st.unrecoverable == 0
        assert block.is_dead
        for key in keys:
            assert db.get(key)[0] == b"cap" * 30

    def test_block_with_no_resident_copy_is_unrecoverable(self):
        db = make_db(scrub=ScrubConfig())
        rec = Record(k(200), b"gone" * 20, db.next_seqno())
        db.capacity_tier.ingest([rec], TrafficKind.MIGRATION)
        table = semi_table_for(db, k(200))
        corrupt_semi_block(table, k(200))
        db.scrub()
        st = db.scrubber.stats
        assert st.unrecoverable >= 1
        assert k(200) in db.suspect_keys

    def test_superseded_copy_is_harmless(self):
        db = make_db(scrub=ScrubConfig())
        old = Record(k(300), b"old" * 20, db.next_seqno())
        db.capacity_tier.ingest([old], TrafficKind.MIGRATION)
        db.put(k(300), b"newer")  # strictly newer non-promoted NVMe resident
        table = semi_table_for(db, k(300))
        corrupt_semi_block(table, k(300))
        db.scrub()
        st = db.scrubber.stats
        assert st.harmless >= 1
        assert st.unrecoverable == 0
        assert db.get(k(300))[0] == b"newer"


# ---------------------------------------------------------------------------
# Checkpoint scrub + post-recovery reprotection
# ---------------------------------------------------------------------------


class TestCheckpointScrub:
    def test_corrupt_checkpoint_rewritten_from_live_index(self):
        db = make_db(scrub=ScrubConfig())
        for i in range(20):
            db.put(k(400 + i), b"c" * 64)
        partition = db.performance_tier.partition_for_key(k(400))
        partition.checkpoint()
        pid = partition._checkpoint_pages[0]
        partition.page_store._pages[pid][3] ^= 0x10
        db.scrub()
        st = db.scrubber.stats
        assert st.checkpoints_scanned >= 1
        assert st.detected >= 1
        assert st.repaired >= 1
        # The rewritten image verifies clean on the next pass.
        detected = st.detected
        db.scrub()
        assert st.detected == detected

    def test_recovered_slots_are_reprotected(self):
        db = make_db(scrub=ScrubConfig())
        for i in range(20):
            db.put(k(500 + i), b"r" * 64)
        partition = db.performance_tier.partition_for_key(k(500))
        partition.checkpoint()
        partition.recover()
        recovered = [
            key
            for key, loc in partition.index.items()
            if loc.crc is None
        ]
        assert recovered, "recovery should leave slots without checksums"
        db.scrub()
        assert db.scrubber.stats.reprotected_slots >= len(recovered)
        assert db.scrubber.stats.detected == 0
        for key in recovered:
            loc = partition.resident_location(key)
            assert loc is not None and loc.crc is not None


# ---------------------------------------------------------------------------
# Health pause / catch-up discipline
# ---------------------------------------------------------------------------


class TestScrubHealthDiscipline:
    def test_pass_pauses_in_window_and_drains_after(self):
        window = HealthWindow(
            device="sata", state=HealthState.OFFLINE, start_io=1, end_io=60
        )
        injector = FaultInjector(FaultPlan(seed=0, health_windows=(window,)))
        db = make_db(injector=injector, scrub=ScrubConfig())
        db.put(k(1), b"v")
        assert db.sata_device.health() is HealthState.OFFLINE
        assert db.scrub() is False
        st = db.scrubber.stats
        assert st.paused_passes == 1
        assert st.passes == 0
        assert db.scrubber.has_catch_up
        # Foreground writes advance the shared I/O clock past the window;
        # the write path drains the queued pass exactly once.
        i = 2
        while db.scrubber.has_catch_up and i < 300:
            db.put(k(i), b"v" * 32)
            i += 1
        assert st.catch_up_drains == 1
        assert st.passes == 1

    def test_catch_up_noop_while_still_unhealthy(self):
        window = HealthWindow(
            device="sata", state=HealthState.OFFLINE, start_io=1, end_io=10**9
        )
        injector = FaultInjector(FaultPlan(seed=0, health_windows=(window,)))
        db = make_db(injector=injector, scrub=ScrubConfig())
        assert db.scrub() is False
        assert db.scrubber.run_catch_up() is False
        assert db.scrubber.has_catch_up  # still queued, not dropped


# ---------------------------------------------------------------------------
# LSM-tree scrub (baseline engines)
# ---------------------------------------------------------------------------


def lsm_fs(mib=64):
    return SimFilesystem(
        SimDevice(
            DeviceProfile(
                name="lsm",
                capacity_bytes=mib * MiB,
                page_size=4096,
                read_latency_s=1e-4,
                write_latency_s=5e-5,
                read_bandwidth=5e8,
                write_bandwidth=5e8,
            )
        )
    )


def small_tree(**kw):
    defaults = dict(
        memtable_bytes=4 << 10,
        table_size_bytes=8 << 10,
        block_size=1024,
        level0_trigger=2,
        level_base_bytes=16 << 10,
        level_multiplier=4,
        num_levels=5,
        wal_group_size=8,
    )
    defaults.update(kw)
    return LSMTree(lsm_fs(), LSMOptions(**defaults))


class TestLSMScrub:
    def test_clean_tree_scrub_counts(self):
        tree = small_tree()
        for i in range(200):
            tree.put(k(i), b"x" * 64)
        st = scrub_lsm_tree(tree)
        assert st.passes == 1
        assert st.sst_blocks_scanned > 0
        assert st.wal_groups_scanned >= 0
        assert st.detected == 0
        assert st.quarantined_tables == 0

    def test_wal_corruption_detected_and_flushed_away(self):
        tree = small_tree(memtable_bytes=1 << 20)  # keep records in memtable
        for i in range(16):
            tree.put(k(i), b"w" * 32)
        tree.wal.sync()
        offset, length, _ = tree.wal._group_sums[0]
        tree.wal._file._data[offset] ^= 0x01
        st = scrub_lsm_tree(tree)
        assert st.detected >= 1
        assert st.repaired >= 1  # memtable flush retired the corrupt bytes
        # Flush reset the WAL: the sidecar has nothing left to distrust.
        assert tree.wal.verify() == (0, 0)
        for i in range(16):
            assert tree.get(k(i))[0] == b"w" * 32

    def test_corrupt_table_quarantined_with_record_count(self):
        tree = small_tree()
        for i in range(200):
            tree.put(k(i), b"q" * 64)
        victim = None
        for lvl in tree.version.all_levels():
            for table in lvl:
                victim = table
                break
            if victim is not None:
                break
        assert victim is not None
        victim.file._data[victim.handles[0].offset] ^= 0x01
        st = scrub_lsm_tree(tree)
        assert st.detected >= 1
        assert st.quarantined_tables == 1
        assert st.unrecoverable == victim.num_records
        assert (
            tree.stats.counter("unrecoverable_records").value
            == victim.num_records
        )


# ---------------------------------------------------------------------------
# Cluster: corrupt-replica read-repair + anti-entropy
# ---------------------------------------------------------------------------


def cluster(num_nodes=3, rf=3, r=2, w=2, scrub=None, seed=0):
    cfg = ClusterConfig(
        num_nodes=num_nodes,
        replication_factor=rf,
        read_quorum=r,
        write_quorum=w,
    )
    return HyperDBCluster(cfg, seed=seed, scrub=scrub)


class TestClusterCorruptReplica:
    def test_corrupt_replica_excluded_from_quorum_and_repaired(self):
        c = cluster()
        key = k(7)
        c.put(key, b"payload")
        victim = c.ring.replicas_for(key, 3)[0]
        node = c.nodes[victim]
        original = node.get_envelope
        fired = []

        def corrupt_once(key_):
            if not fired:
                fired.append(key_)
                raise CorruptionError("injected checksum mismatch")
            return original(key_)

        node.get_envelope = corrupt_once
        value, _ = c.get(key)
        node.get_envelope = original
        # The corrupt copy was no response: quorum met from the healthy
        # replicas and the winning envelope was rewritten onto the victim.
        assert value == b"payload"
        assert c.stats.counter("corrupt_replica_reads").value == 1
        assert c.stats.counter("corrupt_replica_repairs").value == 1
        env, _ = node.get_envelope(key)
        assert env is not None and env[2] == b"payload"

    def test_corrupt_capacity_copy_end_to_end(self):
        """A replica whose only copy is a corrupt capacity-tier block
        raises a real CorruptionError through the quorum read path."""
        c = cluster()
        key = k(11)
        c.put(key, b"deep")
        victim = c.ring.replicas_for(key, 3)[0]
        db = c.nodes[victim].db
        env, _ = c.nodes[victim].get_envelope(key)
        assert env is not None
        partition = db.performance_tier.partition_for_key(key)
        loc = partition.resident_location(key)
        blob = partition.page_store.peek(loc.page_id, loc.offset, loc.record_size)
        from repro.lsm.blocks import decode_one

        rec = decode_one(blob)
        db.capacity_tier.ingest([rec], TrafficKind.MIGRATION)
        partition.drop_resident(key)
        table = semi_table_for(db, key)
        corrupt_semi_block(table, key)
        value, _ = c.read_full(key)
        assert value == b"deep"
        assert c.stats.counter("corrupt_replica_reads").value == 1
        assert c.stats.counter("corrupt_replica_repairs").value == 1
        env, _ = c.nodes[victim].get_envelope(key)
        assert env is not None and env[2] == b"deep"

    def test_corrupt_replicas_count_toward_quorum_liveness(self):
        """R intact responses may be unreachable when copies are corrupt:
        a corrupt ack contributes liveness (the node accepts the repair)
        but no data, so one intact copy still resolves the read."""
        c = cluster()
        key = k(13)
        c.put(key, b"live")
        replicas = c.ring.replicas_for(key, 3)
        originals = {}
        for name in replicas[:2]:
            node = c.nodes[name]
            originals[name] = node.get_envelope
            node.get_envelope = lambda key_: (_ for _ in ()).throw(
                CorruptionError("injected")
            )
        value, _ = c.get(key)  # R=2: both preferred replicas corrupt
        for name, orig in originals.items():
            c.nodes[name].get_envelope = orig
        assert value == b"live"
        assert c.stats.counter("corrupt_replica_repairs").value == 2
        for name in replicas[:2]:
            env, _ = c.nodes[name].get_envelope(key)
            assert env is not None and env[2] == b"live"

    def test_all_replicas_corrupt_is_a_quorum_failure(self):
        from repro.common.errors import QuorumError

        c = cluster()
        key = k(17)
        c.put(key, b"doomed")
        for name in c.ring.replicas_for(key, 3):
            c.nodes[name].get_envelope = lambda key_: (_ for _ in ()).throw(
                CorruptionError("injected")
            )
        with pytest.raises(QuorumError):
            c.get(key)

    def test_anti_entropy_drains_suspects_and_heals(self):
        c = cluster(scrub=ScrubConfig())
        keys = [k(20 + i) for i in range(8)]
        for key in keys:
            c.put(key, b"ae" * 16)
        victim_key = keys[0]
        victim = c.ring.replicas_for(victim_key, 3)[0]
        corrupt_slot(c.nodes[victim].db, victim_key)
        report = c.anti_entropy()
        assert report["scrubbed"] == 3  # every node has an armed scrubber
        assert report["suspects"] == 1
        assert report["repairs"] >= 1
        assert report["unreadable"] == 0
        assert c.stats.counter("anti_entropy_passes").value == 1
        assert c.stats.counter("anti_entropy_suspects").value == 1
        # The victim holds an intact copy again; all suspects were drained.
        env, _ = c.nodes[victim].get_envelope(victim_key)
        assert env is not None and env[2] == b"ae" * 16
        assert c.nodes[victim].db.suspect_keys == []
        for key in keys:
            assert c.get(key)[0] == b"ae" * 16

    def test_unreadable_suspect_requeued_for_next_pass(self):
        """A suspect whose audit read cannot reach quorum (replica down)
        is deferred — not dropped — and heals on the next pass."""
        c = cluster()
        key = k(50)
        c.put(key, b"defer" * 8)
        clock = c.clock
        window = HealthWindow(
            device="node-1",
            state=HealthState.OFFLINE,
            start_io=clock + 1,
            end_io=clock + 8,
        )
        c.windows = (window,)
        victim = next(
            n for n in c.ring.replicas_for(key, 3) if n != "node-1"
        )
        corrupt_slot(c.nodes[victim].db, key)
        c.nodes[victim].db.suspect_keys.append(key)
        report = c.anti_entropy()  # node-1 down: audit read fails quorum
        assert report["unreadable"] == 1
        assert c.unhealed_suspects == [key]
        while c.clock < clock + 8:  # advance the op clock past the window
            c.drain_hints()
        report = c.anti_entropy()
        assert report["unreadable"] == 0
        assert report["repairs"] >= 1
        assert c.unhealed_suspects == []
        env, _ = c.nodes[victim].get_envelope(key)
        assert env is not None and env[2] == b"defer" * 8

    def test_anti_entropy_without_scrubbers_still_audits_suspects(self):
        c = cluster()  # no scrub config: nodes have no scrubber
        key = k(40)
        c.put(key, b"x" * 16)
        victim = c.ring.replicas_for(key, 3)[0]
        c.nodes[victim].db.suspect_keys.append(key)
        report = c.anti_entropy()
        assert report["scrubbed"] == 0
        assert report["suspects"] == 1


# ---------------------------------------------------------------------------
# Scrub disabled => byte-identical behavior
# ---------------------------------------------------------------------------


class TestScrubDisabledDigest:
    def test_armed_but_idle_scrubber_changes_nothing(self):
        """Arming a scrubber that is never driven must not perturb a single
        service-time float — the digest-neutrality guarantee."""
        plain = make_db()
        armed = make_db(scrub=ScrubConfig())
        rng = random.Random(0)
        for i in range(300):
            key = k(rng.randrange(600))
            if rng.random() < 0.7:
                assert plain.put(key, b"d" * 100) == armed.put(key, b"d" * 100)
            else:
                assert plain.get(key) == armed.get(key)
        assert (
            plain.nvme_device.busy_seconds() == armed.nvme_device.busy_seconds()
        )
        assert (
            plain.sata_device.busy_seconds() == armed.sata_device.busy_seconds()
        )

    def test_scrub_on_clean_store_preserves_foreground_values(self):
        db = make_db(scrub=ScrubConfig())
        for i in range(100):
            db.put(k(i), bytes([i % 251]) * 80)
        db.scrub()
        for i in range(100):
            assert db.get(k(i))[0] == bytes([i % 251]) * 80


# ---------------------------------------------------------------------------
# Property sweep: one bit-flip anywhere is never silent
# ---------------------------------------------------------------------------


class TestBitflipPropertySweep:
    def test_single_bitflip_is_healed_surfaced_or_harmless(self):
        """For a sample of resident slots and capacity blocks: flip one bit,
        then read.  The engine must return the correct value (healed or
        fallback), raise CorruptionError (detected), or have surfaced the
        key via ``suspect_keys`` — silently returning wrong bytes fails."""
        db = make_db(nvme_mib=2, scrub=ScrubConfig())
        written = fill_past_watermark(db, value_size=256)
        expected = {k(i): bytes([i % 256]) * 256 for i in range(written)}
        rng = random.Random(0)

        resident = []
        for partition in db.performance_tier.partitions:
            for key, loc in partition.index.items():
                if key in expected:
                    resident.append((partition, key, loc))
        assert resident
        victims = rng.sample(resident, min(25, len(resident)))
        for partition, key, loc in victims:
            bit = rng.randrange(loc.record_size * 8)
            page = partition.page_store._pages[loc.page_id]
            page[loc.offset + bit // 8] ^= 1 << (bit % 8)

        flipped = {key for _, key, _ in victims}
        for key in sorted(expected):
            try:
                value, _ = db.get(key)
            except CorruptionError:
                assert key in flipped  # detected, attributable, not silent
                continue
            if value != expected[key]:
                # Older/absent version may be served only when the loss was
                # recorded (corrupt newest copy dropped + key surfaced).
                assert key in flipped
                assert key in db.suspect_keys
        # The scrub pass over the damaged store accounts for every
        # remaining flipped slot without inventing data.
        db.scrub()
        st = db.scrubber.stats
        handled = (
            st.detected
            + db.stats.counter("nvme_corrupt_reads").value
            + db.stats.counter("nvme_corrupt_maintenance").value
        )
        assert handled >= 1
        for key in sorted(expected):
            try:
                value, _ = db.get(key)
            except CorruptionError:
                assert key in flipped
                continue
            if value != expected[key]:
                assert key in flipped

    def test_bitflip_in_slot_padding_is_harmless(self):
        """Flips beyond the encoded record (slot-class padding) touch bytes
        no reader or checksum covers: reads and scrub both stay clean."""
        db = make_db(scrub=ScrubConfig())
        db.put(k(1), b"pad" * 10)
        partition = db.performance_tier.partition_for_key(k(1))
        loc = partition.resident_location(k(1))
        page = partition.page_store._pages[loc.page_id]
        if loc.offset + loc.record_size < len(page):
            page[loc.offset + loc.record_size] ^= 0xFF
        assert db.get(k(1))[0] == b"pad" * 10
        db.scrub()
        assert db.scrubber.stats.detected == 0

    def test_semi_block_bitflip_never_silent(self):
        db = make_db(scrub=ScrubConfig())
        keys = [k(700 + i) for i in range(6)]
        recs = [Record(key, b"sb" * 40, db.next_seqno()) for key in keys]
        db.capacity_tier.ingest(recs, TrafficKind.MIGRATION)
        table = semi_table_for(db, keys[0])
        block = corrupt_semi_block(table, keys[0])
        victims = {
            key for key, e in table._key_map.items() if e[0] == block.block_id
        }
        for key in keys:
            try:
                value, _ = db.get(key)
            except CorruptionError:
                assert key in victims
                continue
            assert value == b"sb" * 40

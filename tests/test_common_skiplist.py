"""Unit and property tests for the skip list."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.keys import encode_key
from repro.common.skiplist import SkipList


class TestSkipListBasics:
    def test_insert_get(self):
        sl = SkipList()
        assert sl.insert(b"b", 2)
        assert sl.insert(b"a", 1)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"c") is None

    def test_replace_returns_false(self):
        sl = SkipList()
        assert sl.insert(b"k", 1)
        assert not sl.insert(b"k", 2)
        assert sl.get(b"k") == 2
        assert len(sl) == 1

    def test_len(self):
        sl = SkipList()
        for i in range(100):
            sl.insert(encode_key(i), i)
        assert len(sl) == 100

    def test_contains(self):
        sl = SkipList()
        sl.insert(b"x", None)  # value None must still count as present
        assert b"x" in sl
        assert b"y" not in sl

    def test_ordered_iteration(self):
        sl = SkipList()
        import random

        ids = list(range(200))
        random.Random(42).shuffle(ids)
        for i in ids:
            sl.insert(encode_key(i), i)
        keys = [k for k, _ in sl.items()]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_items_from_start_key(self):
        sl = SkipList()
        for i in range(10):
            sl.insert(encode_key(i * 2), i)
        got = [k for k, _ in sl.items(start=encode_key(5))]
        assert got[0] == encode_key(6)

    def test_delete(self):
        sl = SkipList()
        for i in range(20):
            sl.insert(encode_key(i), i)
        assert sl.delete(encode_key(10))
        assert not sl.delete(encode_key(10))
        assert encode_key(10) not in sl
        assert len(sl) == 19
        keys = [k for k, _ in sl.items()]
        assert keys == sorted(keys)

    def test_first_last_key(self):
        sl = SkipList()
        assert sl.first_key() is None
        assert sl.last_key() is None
        sl.insert(encode_key(5), None)
        sl.insert(encode_key(1), None)
        sl.insert(encode_key(9), None)
        assert sl.first_key() == encode_key(1)
        assert sl.last_key() == encode_key(9)


class TestSkipListProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6)))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_semantics(self, ids):
        sl = SkipList()
        model = {}
        for i, kid in enumerate(ids):
            k = encode_key(kid)
            sl.insert(k, i)
            model[k] = i
        assert len(sl) == len(model)
        for k, v in model.items():
            assert sl.get(k) == v
        assert [k for k, _ in sl.items()] == sorted(model)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1),
        st.lists(st.integers(min_value=0, max_value=1000)),
    )
    @settings(max_examples=50, deadline=None)
    def test_delete_matches_dict(self, inserts, deletes):
        sl = SkipList()
        model = {}
        for kid in inserts:
            sl.insert(encode_key(kid), kid)
            model[encode_key(kid)] = kid
        for kid in deletes:
            k = encode_key(kid)
            assert sl.delete(k) == (k in model)
            model.pop(k, None)
        assert [k for k, _ in sl.items()] == sorted(model)

"""Unit and property tests for the B-tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.btree import BTreeIndex
from repro.common.keys import encode_key


class TestBTreeBasics:
    def test_insert_get(self):
        bt = BTreeIndex(order=4)
        assert bt.insert(b"b", 2)
        assert bt.insert(b"a", 1)
        assert bt.get(b"a") == 1
        assert bt.get(b"missing", "dflt") == "dflt"

    def test_replace(self):
        bt = BTreeIndex()
        bt.insert(b"k", 1)
        assert not bt.insert(b"k", 2)
        assert bt.get(b"k") == 2
        assert len(bt) == 1

    def test_splits_stay_sorted(self):
        bt = BTreeIndex(order=4)
        import random

        ids = list(range(1000))
        random.Random(7).shuffle(ids)
        for i in ids:
            bt.insert(encode_key(i), i)
        assert len(bt) == 1000
        keys = [k for k, _ in bt.items()]
        assert keys == [encode_key(i) for i in range(1000)]

    def test_range_scan(self):
        bt = BTreeIndex(order=8)
        for i in range(100):
            bt.insert(encode_key(i), i)
        got = [v for _, v in bt.items(start=encode_key(10), end=encode_key(20))]
        assert got == list(range(10, 20))

    def test_scan_start_between_keys(self):
        bt = BTreeIndex(order=8)
        for i in range(0, 100, 10):
            bt.insert(encode_key(i), i)
        got = [v for _, v in bt.items(start=encode_key(15))]
        assert got[0] == 20

    def test_delete(self):
        bt = BTreeIndex(order=4)
        for i in range(100):
            bt.insert(encode_key(i), i)
        for i in range(0, 100, 2):
            assert bt.delete(encode_key(i))
        assert len(bt) == 50
        assert [v for _, v in bt.items()] == list(range(1, 100, 2))
        assert not bt.delete(encode_key(0))

    def test_contains_none_value(self):
        bt = BTreeIndex()
        bt.insert(b"x", None)
        assert b"x" in bt
        assert b"y" not in bt

    def test_first_key(self):
        bt = BTreeIndex()
        assert bt.first_key() is None
        bt.insert(encode_key(9), 9)
        bt.insert(encode_key(3), 3)
        assert bt.first_key() == encode_key(3)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTreeIndex(order=2)


class TestBTreeProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6)))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict(self, ids):
        bt = BTreeIndex(order=5)
        model = {}
        for i, kid in enumerate(ids):
            k = encode_key(kid)
            bt.insert(k, i)
            model[k] = i
        assert len(bt) == len(model)
        for k, v in model.items():
            assert bt.get(k) == v
        assert [k for k, _ in bt.items()] == sorted(model)

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1),
        st.lists(st.integers(min_value=0, max_value=500)),
    )
    @settings(max_examples=50, deadline=None)
    def test_delete_matches_dict(self, inserts, deletes):
        bt = BTreeIndex(order=4)
        model = {}
        for kid in inserts:
            bt.insert(encode_key(kid), kid)
            model[encode_key(kid)] = kid
        for kid in deletes:
            k = encode_key(kid)
            assert bt.delete(k) == (k in model)
            model.pop(k, None)
        assert [k for k, _ in bt.items()] == sorted(model)
        assert len(bt) == len(model)

"""Property tests for the exact shard mergers (repro.parallel.merge).

The parallel harness's core invariant: merging K shards reproduces the
unsharded aggregate.  Float accumulation is only associative when every
partial sum is exactly representable, so the hypothesis strategies draw
dyadic rationals (multiples of 1/1024 with bounded magnitude) — for those
every addition below is exact, and equality assertions are ``==``, not
approx.  Integer fields (bytes, IOs, sample counts) are exact regardless.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import LatencyHistogram
from repro.parallel import (
    merge_latency_maps,
    merge_run_results,
    merge_traffic_deltas,
)
from repro.simssd.traffic import TrafficKind, TrafficStats
from repro.ycsb.runner import RunResult

# Dyadic rationals: float addition over these is exact, so sharded sums
# equal unsharded sums bit-for-bit in any grouping.
dyadic = st.integers(min_value=0, max_value=1 << 20).map(lambda v: v / 1024.0)

traffic_op = st.tuples(
    st.sampled_from(list(TrafficKind)),
    st.booleans(),  # True = write, False = read
    st.integers(min_value=0, max_value=1 << 24),  # nbytes
    st.integers(min_value=0, max_value=64),  # ios
    dyadic,  # latency_s
    dyadic,  # transfer_s
)


def apply_ops(stats: TrafficStats, ops) -> None:
    for kind, is_write, nbytes, ios, lat, xfer in ops:
        if is_write:
            stats.note_write(kind, nbytes, ios, lat, xfer)
        else:
            stats.note_read(kind, nbytes, ios, lat, xfer)


def stats_equal(a: TrafficStats, b: TrafficStats) -> bool:
    return a.snapshot() == b.snapshot() and a.busy_seconds() == b.busy_seconds()


class TestTrafficStatsMerge:
    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(traffic_op, max_size=60), k=st.integers(1, 5))
    def test_sharded_merge_equals_unsharded_run(self, ops, k):
        unsharded = TrafficStats()
        apply_ops(unsharded, ops)
        shards = []
        for i in range(k):
            shard = TrafficStats()
            apply_ops(shard, ops[i::k])
            shards.append(shard)
        merged = TrafficStats()
        for shard in shards:
            merged.merge(shard)
        # Integer fields are exact sums; float fields are exact because the
        # strategy draws dyadic rationals.  Interleaving ops round-robin
        # across shards also shows order independence of the lane sums.
        assert stats_equal(merged, unsharded)

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(traffic_op, max_size=40), b=st.lists(traffic_op, max_size=40))
    def test_merge_commutative(self, a, b):
        sa, sb = TrafficStats(), TrafficStats()
        apply_ops(sa, a)
        apply_ops(sb, b)
        ab, ba = TrafficStats(), TrafficStats()
        apply_ops(ab, a)
        ab.merge(sb)
        apply_ops(ba, b)
        ba.merge(sa)
        assert stats_equal(ab, ba)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(traffic_op, max_size=30),
        b=st.lists(traffic_op, max_size=30),
        c=st.lists(traffic_op, max_size=30),
    )
    def test_merge_associative(self, a, b, c):
        def fresh(ops):
            s = TrafficStats()
            apply_ops(s, ops)
            return s

        left = fresh(a)
        left.merge(fresh(b))
        left.merge(fresh(c))
        bc = fresh(b)
        bc.merge(fresh(c))
        right = fresh(a)
        right.merge(bc)
        assert stats_equal(left, right)

    def test_merge_leaves_other_untouched(self):
        a, b = TrafficStats(), TrafficStats()
        b.note_write(TrafficKind.WAL, 100, 1, 0.5, 0.25)
        before = b.snapshot()
        a.merge(b)
        assert b.snapshot() == before
        assert a.write_bytes(TrafficKind.WAL) == 100

    def test_merge_matches_snapshot_delta_merge(self):
        a, b = TrafficStats(), TrafficStats()
        a.note_read(TrafficKind.FOREGROUND, 64, 1, 0.125, 0.5)
        b.note_read(TrafficKind.FOREGROUND, 32, 2, 0.25, 0.75)
        b.note_write(TrafficKind.GC, 4096, 1, 1.0, 2.0)
        merged_deltas = merge_traffic_deltas(
            [{"dev": a.snapshot()}, {"dev": b.snapshot()}]
        )
        a.merge(b)
        assert merged_deltas["dev"] == a.snapshot()


class TestLatencyHistogramMerge:
    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(dyadic, max_size=200), k=st.integers(1, 5))
    def test_sharded_merge_equals_unsharded_stream(self, samples, k):
        unsharded = LatencyHistogram(initial_capacity=4)
        unsharded.record_many(samples)
        merged = LatencyHistogram(initial_capacity=4)
        for i in range(k):
            shard = LatencyHistogram(initial_capacity=4)
            # Contiguous chunks: shard order concatenates back to the
            # original stream, sample-exact.
            shard.record_many(samples[i * len(samples) // k : (i + 1) * len(samples) // k])
            merged.merge(shard)
        assert merged.count == unsharded.count
        assert np.array_equal(merged.samples(), unsharded.samples())
        assert merged.median == unsharded.median
        assert merged.p99 == unsharded.p99

    def test_merge_does_not_mutate_or_alias_source(self):
        src = LatencyHistogram()
        src.record_many([1.0, 2.0, 3.0])
        dst = LatencyHistogram()
        dst.merge(src)
        dst.record(99.0)  # writes into dst's buffer only
        assert list(src.samples()) == [1.0, 2.0, 3.0]
        assert not np.shares_memory(dst.samples(), src.samples())

    def test_self_merge_doubles(self):
        h = LatencyHistogram(initial_capacity=2)
        h.record_many([1.0, 2.0])
        h.merge(h)
        assert list(h.samples()) == [1.0, 2.0, 1.0, 2.0]

    def test_copy_is_independent(self):
        h = LatencyHistogram()
        h.record(5.0)
        dup = h.copy()
        dup.record(6.0)
        assert h.count == 1 and dup.count == 2


def make_result(ops, elapsed, lat_by_op, traffic, space, name="hyperdb", wl="B"):
    return RunResult(
        store_name=name,
        workload_name=wl,
        operations=ops,
        clients=8,
        background_threads=8,
        elapsed_s=elapsed,
        throughput_ops=ops / elapsed,
        latency_by_op=lat_by_op,
        traffic=traffic,
        utilization={},
        space_used=space,
    )


def hist_of(values):
    h = LatencyHistogram(initial_capacity=4)
    h.record_many(values)
    return h


class TestMergeRunResults:
    def make_shards(self):
        t1 = {"nvme": {"foreground": {"read_bytes": 100, "write_bytes": 50,
                                      "read_latency_s": 0.5, "read_transfer_s": 0.25,
                                      "write_latency_s": 0.0, "write_transfer_s": 0.0}}}
        t2 = {"nvme": {"foreground": {"read_bytes": 40, "write_bytes": 10,
                                      "read_latency_s": 0.25, "read_transfer_s": 0.5,
                                      "write_latency_s": 0.125, "write_transfer_s": 0.0}},
              "sata": {"compaction": {"read_bytes": 7, "write_bytes": 9,
                                      "read_latency_s": 0.0, "read_transfer_s": 0.0,
                                      "write_latency_s": 0.0, "write_transfer_s": 1.0}}}
        a = make_result(10, 2.0, {"read": hist_of([1.0, 2.0])}, t1, {"nvme": 1000})
        b = make_result(30, 4.0, {"read": hist_of([3.0]), "update": hist_of([4.0])},
                        t2, {"nvme": 500, "sata": 200})
        return a, b

    def test_merge_semantics(self):
        a, b = self.make_shards()
        m = merge_run_results([a, b])
        assert m.operations == 40
        assert m.elapsed_s == 4.0  # slowest shard
        assert m.throughput_ops == 10.0
        assert m.clients == 16 and m.background_threads == 16
        assert m.space_used == {"nvme": 1500, "sata": 200}
        assert m.traffic["nvme"]["foreground"]["read_bytes"] == 140
        assert m.traffic["sata"]["compaction"]["write_bytes"] == 9
        assert list(m.latency_by_op["read"].samples()) == [1.0, 2.0, 3.0]
        assert list(m.latency_by_op["update"].samples()) == [4.0]
        # busy(nvme) = 0.5+0.25 + 0.25+0.5+0.125 = 1.625, elapsed 4.0
        assert m.utilization["nvme"] == pytest.approx(1.625 / 4.0)

    def test_merge_does_not_touch_shards(self):
        a, b = self.make_shards()
        before_a = list(a.latency_by_op["read"].samples())
        traffic_before = {d: {l: dict(f) for l, f in lanes.items()}
                          for d, lanes in a.traffic.items()}
        m = merge_run_results([a, b])
        m.latency_by_op["read"].record(77.0)
        m.traffic["nvme"]["foreground"]["read_bytes"] += 1
        assert list(a.latency_by_op["read"].samples()) == before_a
        assert a.traffic == traffic_before

    def test_single_shard_roundtrip(self):
        a, _ = self.make_shards()
        m = merge_run_results([a])
        assert m.operations == a.operations
        assert m.traffic == a.traffic
        assert m.traffic is not a.traffic  # fresh dicts, no aliasing

    def test_mismatched_workloads_rejected(self):
        a, b = self.make_shards()
        c = make_result(1, 1.0, {}, {}, {}, wl="A")
        with pytest.raises(ValueError, match="different workloads"):
            merge_run_results([a, c])
        with pytest.raises(ValueError):
            merge_run_results([])

    def test_merge_latency_maps_fresh_histograms(self):
        m1 = {"read": hist_of([1.0])}
        m2 = {"read": hist_of([2.0])}
        merged = merge_latency_maps([m1, m2])
        assert list(merged["read"].samples()) == [1.0, 2.0]
        merged["read"].record(9.0)
        assert list(m1["read"].samples()) == [1.0]
        assert list(m2["read"].samples()) == [2.0]


class TestOverallLatencyAggregation:
    """Regression tests for the RunResult.overall_latency combine path —
    the parallel reducer reuses it, so it must neither mutate nor alias
    the per-op histograms."""

    def make(self):
        return make_result(
            3, 1.0,
            {"read": hist_of([1.0, 3.0]), "update": hist_of([2.0])},
            {}, {},
        )

    def test_sources_unchanged_and_unaliased(self):
        r = self.make()
        overall = r.overall_latency
        assert overall.count == 3
        overall.record(1000.0)
        assert list(r.latency_by_op["read"].samples()) == [1.0, 3.0]
        assert list(r.latency_by_op["update"].samples()) == [2.0]
        for hist in r.latency_by_op.values():
            assert not np.shares_memory(overall.samples(), hist.samples())

    def test_repeated_calls_identical(self):
        r = self.make()
        first = list(r.overall_latency.samples())
        second = list(r.overall_latency.samples())
        assert first == second == [1.0, 3.0, 2.0]
        assert r.median_latency() == 2.0  # still correct after repeated use

"""Tests for the consistent-hash ring (repro.cluster.ring)."""

import pytest

from repro.cluster.ring import HashRing, _position
from repro.common.keys import encode_key


def keys(n):
    return [encode_key(i) for i in range(n)]


class TestRingBasics:
    def test_requires_a_node(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_membership(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.nodes == ["a", "b", "c"]
        assert "a" in ring and "z" not in ring
        assert len(ring) == 3

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_cannot_remove_last_node(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.remove("a")

    def test_remove_unknown_rejected(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(ValueError):
            ring.remove("z")


class TestPlacement:
    def test_deterministic_across_instances(self):
        # sha256 hashing: placement is a pure function of names + key
        # bytes, never of Python's salted hash or insertion order.
        a = HashRing(["n0", "n1", "n2"])
        b = HashRing(["n2", "n0", "n1"])
        for k in keys(200):
            assert a.replicas_for(k, 3) == b.replicas_for(k, 3)

    def test_preference_list_distinct_and_sized(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        for k in keys(100):
            reps = ring.replicas_for(k, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3

    def test_rf_clamped_to_member_count(self):
        ring = HashRing(["n0", "n1"])
        assert len(ring.replicas_for(encode_key(1), 5)) == 2

    def test_coordinator_is_first_replica(self):
        ring = HashRing(["n0", "n1", "n2"])
        for k in keys(50):
            assert ring.coordinator_for(k) == ring.replicas_for(k, 3)[0]

    def test_ownership_roughly_balanced(self):
        ring = HashRing(["n0", "n1", "n2"], vnodes=16)
        counts = {n: 0 for n in ring.nodes}
        for k in keys(3000):
            counts[ring.coordinator_for(k)] += 1
        # Every node should own a meaningful share, not a token one.
        assert min(counts.values()) > 3000 * 0.10

    def test_position_is_64_bit(self):
        assert 0 <= _position(b"x") < 2**64


class TestMembershipChanges:
    def test_join_moves_only_ranges_toward_new_node(self):
        # Consistent hashing's defining property: adding a node never
        # reshuffles keys between existing nodes.
        old = HashRing(["n0", "n1", "n2"])
        new = HashRing(["n0", "n1", "n2"])
        new.add("n3")
        gains = old.diff(new, keys(400), 3)
        assert set(gains) <= {"n3"}
        assert sum(len(v) for v in gains.values()) > 0

    def test_leave_redistributes_to_survivors(self):
        old = HashRing(["n0", "n1", "n2", "n3"])
        new = HashRing(["n0", "n1", "n2", "n3"])
        new.remove("n3")
        gains = old.diff(new, keys(400), 3)
        assert gains and "n3" not in gains

    def test_diff_is_exact(self):
        old = HashRing(["n0", "n1", "n2"])
        new = HashRing(["n0", "n1", "n2"])
        new.add("n3")
        gains = old.diff(new, keys(300), 2)
        for node, moved in gains.items():
            for k in moved:
                assert node in new.replicas_for(k, 2)
                assert node not in old.replicas_for(k, 2)

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(["n0", "n1", "n2"])
        before = [ring.replicas_for(k, 3) for k in keys(100)]
        ring.add("n3")
        ring.remove("n3")
        after = [ring.replicas_for(k, 3) for k in keys(100)]
        assert before == after

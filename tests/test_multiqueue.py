"""Multi-queue service model: routing, ledgers, health, and isolation.

Covers the queue-granular half of the simulated-SSD contract:

* :class:`QueueConfig` validation and the static lane routing;
* per-queue busy ledgers that always decompose the device totals and
  merge exactly across shards;
* single-queue devices (explicit ``QueueConfig(1)`` or no config at all)
  produce bit-identical ledgers — the digest-compatibility invariant;
* queue-targeted health windows surcharge / reject only I/O routed to
  that queue, and never skip a charge;
* end-to-end queue isolation on both engines: foreground lanes never
  appear on background queues and vice versa.
"""

import pytest

from repro.bench.context import BenchScale, build_store
from repro.common.errors import DeviceOfflineError
from repro.common.keys import encode_key
from repro.health.state import HealthState, HealthWindow, resolve_queue_health
from repro.simssd.device import SimDevice
from repro.simssd.faults import FaultInjector, FaultPlan
from repro.simssd.profiles import DeviceProfile
from repro.simssd.queues import (
    FOREGROUND_QUEUE_KINDS,
    QueueConfig,
    default_routing,
)
from repro.simssd.traffic import TrafficKind, TrafficStats

KiB = 1024
MiB = 1024 * KiB

_PROFILE = DeviceProfile(
    name="nvme",
    capacity_bytes=8 * MiB,
    page_size=4096,
    read_latency_s=1e-4,
    write_latency_s=2e-5,
    read_bandwidth=2e9,
    write_bandwidth=1e9,
)

BACKGROUND_KINDS = tuple(
    k for k in TrafficKind if k not in FOREGROUND_QUEUE_KINDS
)


def _device(queue_count=4, injector=None, mults=()):
    return SimDevice(
        _PROFILE,
        injector=injector,
        queues=QueueConfig(
            queue_count=queue_count, latency_multipliers=mults
        ),
    )


class TestQueueConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueueConfig(queue_count=0)
        with pytest.raises(ValueError):
            QueueConfig(queue_depth=0)
        with pytest.raises(ValueError):
            QueueConfig(queue_count=2, latency_multipliers=(1.0,))
        with pytest.raises(ValueError):
            QueueConfig(queue_count=2, latency_multipliers=(1.0, 0.0))

    def test_multiplier_defaults_to_one(self):
        cfg = QueueConfig(queue_count=3)
        assert [cfg.multiplier(q) for q in range(3)] == [1.0, 1.0, 1.0]
        cfg = QueueConfig(queue_count=2, latency_multipliers=(1.0, 2.5))
        assert cfg.multiplier(1) == 2.5

    def test_default_routing_partitions_lanes(self):
        single = default_routing(1)
        assert all(routes == (0,) for routes in single.values())
        multi = default_routing(4)
        for kind in FOREGROUND_QUEUE_KINDS:
            assert multi[kind] == (0,)
        for kind in BACKGROUND_KINDS:
            assert multi[kind] == (1, 2, 3)


class TestQueueLedgers:
    def test_queue_busy_decomposes_device_busy(self):
        t = TrafficStats(queue_count=3)
        t.note_read(TrafficKind.FOREGROUND, 4096, 1, 0.01, 0.002, queue=0)
        t.note_write(TrafficKind.COMPACTION, 8192, 2, 0.03, 0.004, queue=1)
        t.note_write(TrafficKind.MIGRATION, 4096, 1, 0.05, 0.006, queue=2)
        per_queue = t.queue_busy_seconds()
        assert len(per_queue) == 3
        assert sum(per_queue) == pytest.approx(t.busy_seconds())
        assert per_queue[0] == pytest.approx(0.012)
        assert per_queue[1] == pytest.approx(0.034)
        assert per_queue[2] == pytest.approx(0.056)

    def test_queue_snapshot_matches_device_lanes(self):
        t = TrafficStats(queue_count=2)
        t.note_read(TrafficKind.FOREGROUND, 4096, 1, 0.01, 0.002, queue=0)
        t.note_write(TrafficKind.GC, 8192, 2, 0.03, 0.004, queue=1)
        snaps = t.queue_snapshot()
        assert len(snaps) == 2
        total = t.snapshot()
        for lane_name in total:
            for field in total[lane_name]:
                assert sum(s[lane_name][field] for s in snaps) == pytest.approx(
                    total[lane_name][field]
                )

    def test_single_queue_views_collapse(self):
        t = TrafficStats()
        t.note_write(TrafficKind.WAL, 4096, 1, 0.01, 0.002)
        assert t.queue_busy_seconds() == [t.busy_seconds()]
        assert t.queue_snapshot() == [t.snapshot()]

    def test_merge_is_exact_shard_reducer(self):
        # One ledger taking every charge must equal two shards merged.
        charges = [
            (TrafficKind.FOREGROUND, 0, 0.01, 0.001),
            (TrafficKind.COMPACTION, 1, 0.02, 0.002),
            (TrafficKind.MIGRATION, 2, 0.04, 0.003),
            (TrafficKind.FOREGROUND, 0, 0.08, 0.004),
        ]
        whole = TrafficStats(queue_count=3)
        a = TrafficStats(queue_count=3)
        b = TrafficStats(queue_count=3)
        for i, (kind, q, lat, xfer) in enumerate(charges):
            whole.note_write(kind, 4096, 1, lat, xfer, queue=q)
            (a if i % 2 == 0 else b).note_write(kind, 4096, 1, lat, xfer, queue=q)
        a.merge(b)
        assert a.queue_busy_seconds() == pytest.approx(whole.queue_busy_seconds())
        assert a.queue_snapshot() == whole.queue_snapshot()

    def test_merge_rejects_queue_count_mismatch(self):
        with pytest.raises(ValueError, match="queue count"):
            TrafficStats(queue_count=2).merge(TrafficStats(queue_count=3))

    def test_reset_clears_queue_ledgers(self):
        t = TrafficStats(queue_count=2)
        t.note_write(TrafficKind.FLUSH, 4096, 1, 0.01, 0.002, queue=1)
        t.reset()
        assert t.queue_busy_seconds() == [0.0, 0.0]
        assert t.busy_seconds() == 0.0


class TestRoutingAndPlacement:
    def test_foreground_lanes_pinned_to_queue_zero(self):
        dev = _device(4)
        for kind in FOREGROUND_QUEUE_KINDS:
            assert dev.queue_of(kind) == 0
            assert dev.begin_background_job(kind) == 0  # no-op for fg lanes
            assert dev.queue_of(kind) == 0

    def test_background_jobs_spread_to_least_busy_queue(self):
        dev = _device(4)
        # First compaction job lands on the first background queue...
        assert dev.begin_background_job(TrafficKind.COMPACTION) == 1
        dev.write_pages(64, TrafficKind.COMPACTION)
        # ...so the next background job (any kind) avoids it.
        assert dev.begin_background_job(TrafficKind.MIGRATION) == 2
        dev.write_pages(64, TrafficKind.MIGRATION)
        assert dev.begin_background_job(TrafficKind.GC) == 3
        dev.write_pages(64, TrafficKind.GC)
        # All queues busy: the least-busy wins, ties break to lowest index.
        assert dev.begin_background_job(TrafficKind.COMPACTION) in (1, 2, 3)

    def test_single_queue_placement_is_noop(self):
        dev = SimDevice(_PROFILE)
        assert dev.begin_background_job(TrafficKind.COMPACTION) == 0
        dev = SimDevice(_PROFILE, queues=QueueConfig(queue_count=1))
        assert dev.begin_background_job(TrafficKind.MIGRATION) == 0

    def test_charges_land_on_routed_queue(self):
        dev = _device(3)
        dev.write_pages(8, TrafficKind.FOREGROUND)
        q = dev.begin_background_job(TrafficKind.COMPACTION)
        dev.write_pages(8, TrafficKind.COMPACTION)
        per_queue = dev.traffic.queue_busy_seconds()
        assert per_queue[0] > 0 and per_queue[q] > 0
        snaps = dev.traffic.queue_snapshot()
        assert snaps[q]["compaction"]["write_bytes"] == 8 * 4096
        assert snaps[0]["compaction"]["write_bytes"] == 0


class TestSingleQueueIdentity:
    """``queue_count=1`` must reproduce the classic model bit for bit."""

    def _drive(self, dev):
        dev.write_pages(16, TrafficKind.FOREGROUND)
        dev.read_pages(4, TrafficKind.FOREGROUND)
        dev.write_bytes_io(5000, TrafficKind.WAL)
        dev.begin_background_job(TrafficKind.COMPACTION)
        dev.write_pages(64, TrafficKind.COMPACTION, sequential=True)
        dev.read_pages_batch([3, 1, 2], TrafficKind.MIGRATION)
        dev.write_pages_batch([5, 0, 7], TrafficKind.FLUSH)
        return dev.traffic

    def test_explicit_single_queue_config_is_bit_identical(self):
        classic = self._drive(SimDevice(_PROFILE))
        single = self._drive(SimDevice(_PROFILE, queues=QueueConfig(1)))
        # Exact equality — not approx — is the digest contract.
        assert single.snapshot() == classic.snapshot()
        assert single.busy_seconds() == classic.busy_seconds()

    def test_multi_queue_conserves_totals(self):
        # Routing splits charges across queues but never changes the
        # device-level ledger (all queue multipliers are 1.0 by default).
        classic = self._drive(SimDevice(_PROFILE))
        multi = self._drive(_device(4))
        assert multi.snapshot() == classic.snapshot()
        assert sum(multi.queue_busy_seconds()) == pytest.approx(
            multi.busy_seconds()
        )


class TestQueueHealth:
    def _injector(self, *windows):
        return FaultInjector(FaultPlan(health_windows=tuple(windows)))

    def test_resolve_queue_health_scopes_by_queue(self):
        w = HealthWindow(
            device="nvme", state=HealthState.BROWNOUT, start_io=1,
            end_io=100, latency_multiplier=4.0, queue=1,
        )
        assert resolve_queue_health((w,), "nvme", 1, 10) == (
            HealthState.BROWNOUT, 4.0,
        )
        assert resolve_queue_health((w,), "nvme", 0, 10) == (
            HealthState.HEALTHY, 1.0,
        )
        assert resolve_queue_health((w,), "nvme", 1, 500) == (
            HealthState.HEALTHY, 1.0,
        )
        assert resolve_queue_health((w,), "sata", 1, 10) == (
            HealthState.HEALTHY, 1.0,
        )

    def test_queue_brownout_surcharges_only_that_queue(self):
        window = HealthWindow(
            device="nvme", state=HealthState.BROWNOUT, start_io=1,
            end_io=1 << 40, latency_multiplier=8.0, queue=1,
        )
        guarded = _device(4, injector=self._injector(window))
        plain = _device(4, injector=FaultInjector(FaultPlan()))
        for dev in (guarded, plain):
            dev.write_pages(8, TrafficKind.FOREGROUND)
            dev.begin_background_job(TrafficKind.COMPACTION)
            dev.write_pages(8, TrafficKind.COMPACTION)
        gq = guarded.traffic.queue_busy_seconds()
        pq = plain.traffic.queue_busy_seconds()
        # Background charges never inflate the foreground queue...
        assert gq[0] == pq[0]
        # ...while the guarded background queue is surcharged 8x.
        assert gq[1] == pytest.approx(pq[1] * 8.0)
        assert guarded.brownout_ios > 0

    def test_guarded_queue_never_skips_charges(self):
        window = HealthWindow(
            device="nvme", state=HealthState.BROWNOUT, start_io=1,
            end_io=1 << 40, latency_multiplier=6.0, queue=2,
        )
        guarded = _device(4, injector=self._injector(window))
        plain = _device(4, injector=FaultInjector(FaultPlan()))
        for dev in (guarded, plain):
            for _ in range(5):
                dev.begin_background_job(TrafficKind.MIGRATION)
                dev.write_pages(4, TrafficKind.MIGRATION)
                dev.read_pages(2, TrafficKind.MIGRATION)
        gs, ps = guarded.traffic.snapshot(), plain.traffic.snapshot()
        # Every I/O and byte is still charged — brownouts surcharge, they
        # never drop work.
        assert gs["migration"]["write_ios"] == ps["migration"]["write_ios"]
        assert gs["migration"]["read_ios"] == ps["migration"]["read_ios"]
        assert gs["migration"]["write_bytes"] == ps["migration"]["write_bytes"]
        assert guarded.traffic.busy_seconds() > plain.traffic.busy_seconds()

    def test_queue_offline_rejects_only_that_queue(self):
        window = HealthWindow(
            device="nvme", state=HealthState.OFFLINE, start_io=1,
            end_io=1 << 40, queue=1,
        )
        dev = _device(2, injector=self._injector(window))
        # Foreground (queue 0) proceeds untouched...
        assert dev.write_pages(8, TrafficKind.FOREGROUND) > 0
        # ...while the only background queue rejects without charging.
        before = dev.traffic.busy_seconds()
        with pytest.raises(DeviceOfflineError):
            dev.write_pages(8, TrafficKind.COMPACTION)
        assert dev.traffic.busy_seconds() == before
        assert dev.offline_rejections == 1
        # Device-wide health is a pure peek and stays HEALTHY: the outage
        # is queue-granular, not a whole-device loss.
        assert dev.health() is HealthState.HEALTHY

    def test_queue_and_device_windows_compose(self):
        queue_w = HealthWindow(
            device="nvme", state=HealthState.BROWNOUT, start_io=1,
            end_io=1 << 40, latency_multiplier=3.0, queue=1,
        )
        device_w = HealthWindow(
            device="nvme", state=HealthState.BROWNOUT, start_io=1,
            end_io=1 << 40, latency_multiplier=2.0,
        )
        both = _device(2, injector=self._injector(queue_w, device_w))
        plain = _device(2, injector=FaultInjector(FaultPlan()))
        for dev in (both, plain):
            dev.begin_background_job(TrafficKind.GC)
            dev.write_pages(8, TrafficKind.GC)
        assert both.traffic.busy_seconds() == pytest.approx(
            plain.traffic.busy_seconds() * 6.0
        )


class TestQueueUtilization:
    def test_multi_queue_utilization_normalizes_by_queue_count(self):
        dev = _device(4)
        dev.write_pages(32, TrafficKind.FOREGROUND)
        dev.begin_background_job(TrafficKind.COMPACTION)
        dev.write_pages(32, TrafficKind.COMPACTION)
        busy = dev.busy_seconds()
        assert dev.utilization(busy) == pytest.approx(1.0 / 4)
        per_queue = dev.queue_utilization(busy)
        assert len(per_queue) == 4
        assert sum(per_queue) == pytest.approx(dev.utilization(busy) * 4)

    def test_latency_multiplier_scales_charges(self):
        slow = _device(2, mults=(1.0, 4.0))
        base = _device(2)
        for dev in (slow, base):
            dev.begin_background_job(TrafficKind.FLUSH)
            dev.write_pages(16, TrafficKind.FLUSH)
        assert slow.busy_seconds() == pytest.approx(base.busy_seconds() * 4.0)
        # Queue 0 (multiplier 1.0) is bit-identical to the base curve.
        slow.write_pages(16, TrafficKind.FOREGROUND)
        base.write_pages(16, TrafficKind.FOREGROUND)
        assert (
            slow.traffic.queue_busy_seconds()[0]
            == base.traffic.queue_busy_seconds()[0]
        )


class TestEngineQueueIsolation:
    """End to end: foreground and background lanes never share a queue."""

    def _soak(self, engine_name):
        # Sized so the dataset overflows the 512 KiB NVMe capacity floor:
        # demotion/migration must actually run for the background-queue
        # assertions to be non-vacuous.
        scale = BenchScale(
            record_count=4_000, operations=4_000, nvme_ratio=0.35,
            queue_count=4,
        )
        store = build_store(engine_name, scale)
        val = b"x" * 128
        for i in range(scale.record_count):
            store.put(encode_key(i), val)
        for i in range(0, scale.record_count, 3):
            store.get(encode_key(i))
        return store

    @pytest.mark.parametrize("engine", ["hyperdb", "prismdb"])
    def test_foreground_queue_carries_only_foreground_lanes(self, engine):
        store = self._soak(engine)
        saw_background = False
        for name, dev in store.devices().items():
            assert dev.queue_count == 4
            snaps = dev.traffic.queue_snapshot()
            for kind in BACKGROUND_KINDS:
                # Idle lanes (e.g. scrub when no scrubber ran) are omitted
                # from snapshots entirely; absent means zero traffic.
                lane = snaps[0].get(kind.value, {})
                assert all(v == 0 for v in lane.values()), (
                    f"{name}: background lane {kind.value} leaked onto the "
                    f"foreground queue"
                )
            for q in range(1, 4):
                for kind in FOREGROUND_QUEUE_KINDS:
                    lane = snaps[q][kind.value]
                    assert all(v == 0 for v in lane.values()), (
                        f"{name}: foreground lane {kind.value} leaked onto "
                        f"background queue {q}"
                    )
            for q in range(1, 4):
                if any(
                    any(v != 0 for v in snaps[q].get(k.value, {}).values())
                    for k in BACKGROUND_KINDS
                ):
                    saw_background = True
            # The per-queue ledgers decompose the device ledger exactly.
            assert sum(dev.traffic.queue_busy_seconds()) == pytest.approx(
                dev.busy_seconds()
            )
        # The soak is sized to trigger real background work (flush +
        # migration); an all-idle background tier would vacuously pass.
        assert saw_background

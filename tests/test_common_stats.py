"""Unit tests for counters and latency histograms."""

import numpy as np

from repro.common.stats import Counter, LatencyHistogram, StatsRegistry


class TestCounter:
    def test_add_reset(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        c.reset()
        assert c.value == 0


class TestLatencyHistogram:
    def test_percentiles_exact(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.median == 50.5
        assert abs(h.p99 - np.percentile(np.arange(1, 101), 99)) < 1e-9
        assert h.mean == 50.5

    def test_empty(self):
        h = LatencyHistogram()
        assert h.median == 0.0 and h.p99 == 0.0 and h.mean == 0.0
        assert h.count == 0

    def test_growth_past_initial_capacity(self):
        h = LatencyHistogram(initial_capacity=4)
        h.record_many(range(1000))
        assert h.count == 1000
        assert h.percentile(100) == 999

    def test_record_many_then_record(self):
        h = LatencyHistogram(initial_capacity=2)
        h.record_many([1.0, 2.0, 3.0])
        h.record(4.0)
        assert h.count == 4
        assert list(h.samples()) == [1.0, 2.0, 3.0, 4.0]

    def test_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.record_many([1, 2])
        b.record_many([3, 4])
        a.merge(b)
        assert a.count == 4
        assert a.percentile(100) == 4

    def test_samples_readonly(self):
        h = LatencyHistogram()
        h.record(1.0)
        view = h.samples()
        assert not view.flags.writeable

    def test_reset(self):
        h = LatencyHistogram()
        h.record(1.0)
        h.reset()
        assert h.count == 0


class TestStatsRegistry:
    def test_counter_identity(self):
        r = StatsRegistry()
        assert r.counter("a") is r.counter("a")
        r.counter("a").add(3)
        assert r.snapshot() == {"counters": {"a": 3}, "histograms": {}}

    def test_snapshot_includes_histograms(self):
        # Regression: snapshot() used to silently drop histograms, so any
        # consumer (dumps, MetricScope deltas) lost latency data.
        r = StatsRegistry()
        r.counter("ops").add(2)
        for v in range(1, 101):
            r.histogram("lat").record(float(v))
        snap = r.snapshot()
        assert snap["counters"] == {"ops": 2}
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 100
        assert hist["median"] == 50.5
        assert abs(hist["p99"] - np.percentile(np.arange(1, 101), 99)) < 1e-9

    def test_histogram_identity(self):
        r = StatsRegistry()
        assert r.histogram("lat") is r.histogram("lat")

    def test_reset_all(self):
        r = StatsRegistry()
        r.counter("a").add(1)
        r.histogram("h").record(1.0)
        r.reset()
        assert r.counter("a").value == 0
        assert r.histogram("h").count == 0

"""Batched request pipeline equivalence (the batching contract).

The batch entry points (``put_many``/``get_many``/``delete_many``, the
runner's batched dispatch, the cluster router batches) are control-flow
fusion only: every test here asserts *bit-identical* results against the
per-op path — service floats, traffic ledgers, latency histograms, and
counter registries including insertion order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.context import BenchScale, build_store
from repro.common.keys import encode_key, encode_keys
from repro.ycsb.runner import WorkloadRunner
from repro.ycsb.workload import YCSB_WORKLOADS

SCALE_KW = dict(
    record_count=600,
    operations=600,
    value_size=96,
    clients=4,
    background_threads=4,
    seed=11,
)


def _fresh_runner(store_name: str, batched: bool) -> WorkloadRunner:
    scale = BenchScale(**SCALE_KW)
    store = build_store(store_name, scale)
    return WorkloadRunner(
        store,
        record_count=scale.record_count,
        value_size=scale.value_size,
        clients=scale.clients,
        background_threads=scale.background_threads,
        seed=scale.seed,
        batched=batched,
    )


def _execute(store_name: str, workload: str, batched: bool):
    runner = _fresh_runner(store_name, batched)
    load_total = runner.load()
    result = runner.run(YCSB_WORKLOADS[workload], SCALE_KW["operations"])
    return runner, load_total, result


def _assert_identical(store_name: str, workload: str) -> None:
    r_b, load_b, res_b = _execute(store_name, workload, batched=True)
    r_p, load_p, res_p = _execute(store_name, workload, batched=False)

    assert load_b == load_p, "load-phase service totals diverge"
    assert res_b.operations == res_p.operations
    assert res_b.elapsed_s == res_p.elapsed_s
    assert res_b.throughput_ops == res_p.throughput_ops
    assert res_b.traffic == res_p.traffic
    assert res_b.utilization == res_p.utilization
    assert res_b.space_used == res_p.space_used

    assert set(res_b.latency_by_op) == set(res_p.latency_by_op)
    for op in res_b.latency_by_op:
        sb = res_b.latency_by_op[op].samples()
        sp = res_p.latency_by_op[op].samples()
        assert np.array_equal(sb, sp), f"{op} latency samples diverge"

    stats_b = getattr(r_b.store, "stats", None)
    stats_p = getattr(r_p.store, "stats", None)
    if stats_b is not None and stats_p is not None:
        # Values AND insertion order: the fused paths must create
        # counters lazily exactly where the per-op path does.
        assert [
            (name, c.value) for name, c in stats_b.counters.items()
        ] == [(name, c.value) for name, c in stats_p.counters.items()]


@pytest.mark.parametrize("workload", ["A", "B", "D", "E"])
def test_hyperdb_batched_equals_per_op(workload):
    _assert_identical("hyperdb", workload)


@pytest.mark.parametrize("workload", ["A", "B"])
def test_rocksdb_batched_equals_per_op(workload):
    _assert_identical("rocksdb", workload)


# ----------------------------------------------------- store-level batches


def _small_store(name: str):
    return build_store(name, BenchScale(**SCALE_KW))


@pytest.mark.parametrize("store_name", ["hyperdb", "rocksdb"])
def test_store_batch_methods_match_loops(store_name):
    keys = encode_keys(list(range(64)))
    values = [b"v%060d" % i for i in range(64)]

    s1 = _small_store(store_name)
    busy_rows: list = []
    put_services = s1.put_many(keys, values, busy_out=busy_rows)
    get_results = s1.get_many(keys)

    s2 = _small_store(store_name)
    exp_services = []
    exp_rows = []
    devs = list(s2.devices().values())
    for k, v in zip(keys, values):
        exp_services.append(s2.put(k, v))
        exp_rows.append(tuple(d.busy_seconds() for d in devs))
    exp_get = [s2.get(k) for k in keys]

    assert put_services == exp_services
    assert get_results == exp_get
    # The batch's per-op busy rows are the same snapshots a per-op
    # caller would take after each call.
    assert busy_rows == exp_rows


def test_encode_keys_matches_scalar_encoding():
    ids = [0, 1, 2, 1000, 2**31, 2**40 + 17]
    assert encode_keys(ids) == [encode_key(i) for i in ids]
    assert encode_keys(np.array(ids, dtype=np.int64)) == [
        encode_key(i) for i in ids
    ]
    assert encode_keys([]) == []
    with pytest.raises(ValueError):
        encode_keys([-1])


def test_used_pages_counter_matches_recomputed():
    """The O(1) incremental page counter equals a fresh per-zone sum."""
    store = _small_store("hyperdb")
    keys = encode_keys(list(range(500)))
    values = [b"x" * 90 for _ in keys]
    store.put_many(keys, values)
    for partition in store.performance_tier.partitions:
        recomputed = partition.hot_zone.total_pages() + sum(
            z.total_pages() for z in partition.zones()
        )
        assert partition.used_pages == recomputed


# ------------------------------------------------------- cluster batches


def _cluster(windows=()):
    from repro.cluster.router import ClusterConfig, HyperDBCluster

    return HyperDBCluster(
        ClusterConfig(num_nodes=3, replication_factor=3), windows=windows, seed=3
    )


def test_cluster_batches_match_per_op():
    keys = encode_keys(list(range(40)))
    values = [b"cv%038d" % i for i in range(40)]

    c1 = _cluster()
    put_b = c1.put_many(keys, values)
    get_b = c1.get_many(keys)
    del_b = c1.delete_many(keys[:10])

    c2 = _cluster()
    put_p = [c2.put(k, v) for k, v in zip(keys, values)]
    get_p = [c2.get(k) for k in keys]
    del_p = [c2.delete(k) for k in keys[:10]]

    assert put_b == put_p
    assert get_b == get_p
    assert del_b == del_p
    assert c1.counters() == c2.counters()


def test_cluster_batch_capture_errors():
    from repro.common.errors import QuorumError
    from repro.health.state import HealthState, HealthWindow

    keys = encode_keys(list(range(30)))
    values = [b"w" * 40 for _ in keys]
    # All three nodes offline for a stretch of ticks: quorum writes in
    # that range must surface as captured QuorumError slots.
    windows = tuple(
        HealthWindow(f"node-{i}", HealthState.OFFLINE, 5, 20) for i in range(3)
    )
    cluster = _cluster(windows=windows)
    slots = cluster.put_many(keys, values, capture_errors=True)
    assert len(slots) == len(keys)
    errs = [s for s in slots if isinstance(s, QuorumError)]
    oks = [s for s in slots if isinstance(s, float)]
    assert errs, "expected quorum failures inside the outage window"
    assert oks, "expected acked writes outside the outage window"
    # Without capture_errors the same stream raises.
    cluster2 = _cluster(windows=windows)
    with pytest.raises(QuorumError):
        cluster2.put_many(keys, values)

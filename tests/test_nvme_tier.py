"""Tests for the NVMe performance tier: page store, zones, partitions."""

import pytest

from repro.common.errors import CapacityError, ConfigError, ReproError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.common.cache import LRUCache
from repro.nvme import NVMeConfig, PageStore, PerformanceTier, Zone
from repro.simssd import DeviceProfile, SimDevice, TrafficKind

KEYSPACE = 100_000


def make_device(mib=32):
    profile = DeviceProfile(
        name="nvme",
        capacity_bytes=mib * (1 << 20),
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )
    return SimDevice(profile)


def key_space():
    return KeyRange(encode_key(0), encode_key(KEYSPACE))


def rec(i, value=b"v" * 100, seqno=None):
    return Record(encode_key(i), value, seqno if seqno is not None else i + 1)


class TestNVMeConfig:
    def test_slot_class_for(self):
        c = NVMeConfig()
        assert c.slot_class_for(60) == 64
        assert c.slot_class_for(64) == 64
        assert c.slot_class_for(65) == 96
        assert c.slot_class_for(1046) == 1536
        assert c.slot_class_for(5000) == 5000  # oversized: dedicated slot

    def test_validation(self):
        with pytest.raises(ConfigError):
            NVMeConfig(num_partitions=0)
        with pytest.raises(ConfigError):
            NVMeConfig(high_watermark=0.5, low_watermark=0.6)
        with pytest.raises(ConfigError):
            NVMeConfig(slot_classes=(128, 64))
        with pytest.raises(ConfigError):
            NVMeConfig(zone_split_factor=1.0)


class TestPageStore:
    def test_allocate_write_read(self):
        ps = PageStore(make_device(1))
        (pid,) = ps.allocate()
        ps.write(pid, 10, b"hello", TrafficKind.FOREGROUND)
        data, _ = ps.read(pid, TrafficKind.FOREGROUND)
        assert data[10:15] == b"hello"

    def test_free_returns_capacity(self):
        dev = make_device(1)
        ps = PageStore(dev)
        (pid,) = ps.allocate()
        assert dev.allocated_pages == 1
        ps.free(pid)
        assert dev.allocated_pages == 0
        with pytest.raises(ReproError):
            ps.free(pid)

    def test_capacity_enforced(self):
        dev = make_device(1)  # 256 pages
        ps = PageStore(dev)
        ps.allocate(256)
        with pytest.raises(CapacityError):
            ps.allocate(1)

    def test_cache_invalidated_on_write(self):
        ps = PageStore(make_device(1))
        cache = LRUCache(1 << 20)
        (pid,) = ps.allocate()
        ps.write(pid, 0, b"v1", TrafficKind.FOREGROUND)
        ps.read(pid, TrafficKind.FOREGROUND, cache)
        ps.write(pid, 0, b"v2", TrafficKind.FOREGROUND, cache)
        data, _ = ps.read(pid, TrafficKind.FOREGROUND, cache)
        assert data[:2] == b"v2"

    def test_oversized_write_charges_multiple_pages(self):
        dev = make_device(1)
        ps = PageStore(dev)
        pids = ps.allocate(2)
        dev.traffic.reset()
        ps.write(pids[0], 0, b"x" * 5000, TrafficKind.FOREGROUND, npages=2)
        assert dev.traffic.write_bytes() == 2 * 4096

    def test_out_of_bounds_write_rejected(self):
        ps = PageStore(make_device(1))
        (pid,) = ps.allocate()
        with pytest.raises(ReproError):
            ps.write(pid, 4090, b"x" * 10, TrafficKind.FOREGROUND)


class TestZone:
    def test_write_read_roundtrip(self):
        ps = PageStore(make_device(4))
        z = Zone(1, KeyRange(encode_key(0), encode_key(1000)), ps)
        loc, _ = z.write_record(rec(5), slot_size=128)
        out, _ = z.read_object(loc)
        assert out.key == encode_key(5) and out.value == b"v" * 100

    def test_slot_packing(self):
        ps = PageStore(make_device(4))
        z = Zone(1, KeyRange(encode_key(0), encode_key(1000)), ps)
        # 32 slots of 128B per 4K page.
        for i in range(32):
            z.write_record(rec(i), slot_size=128)
        assert z.num_pages == 1
        z.write_record(rec(32), slot_size=128)
        assert z.num_pages == 2

    def test_key_range_enforced(self):
        ps = PageStore(make_device(4))
        z = Zone(1, KeyRange(encode_key(0), encode_key(10)), ps)
        with pytest.raises(ReproError):
            z.write_record(rec(50), slot_size=128)

    def test_hot_zone_accepts_everything(self):
        ps = PageStore(make_device(4))
        z = Zone(1, None, ps)
        z.write_record(rec(10**4), slot_size=128)
        assert z.is_hot_zone

    def test_slot_reuse_after_free(self):
        ps = PageStore(make_device(4))
        z = Zone(1, None, ps)
        keeper, _ = z.write_record(rec(0), slot_size=128)  # keeps the page alive
        loc, _ = z.write_record(rec(1), slot_size=128)
        z.remove_object(encode_key(1), loc)
        loc2, _ = z.write_record(rec(2), slot_size=128)
        assert (loc2.page_id, loc2.slot_index) == (loc.page_id, loc.slot_index)

    def test_empty_page_released(self):
        dev = make_device(4)
        ps = PageStore(dev)
        z = Zone(1, None, ps)
        locs = [z.write_record(rec(i), slot_size=2048)[0] for i in range(2)]
        assert dev.allocated_pages == 1
        for i, loc in enumerate(locs):
            z.remove_object(encode_key(i), loc)
        assert dev.allocated_pages == 0

    def test_in_place_update(self):
        ps = PageStore(make_device(4))
        z = Zone(1, None, ps)
        loc, _ = z.write_record(rec(1, b"old-value"), slot_size=128)
        loc2, _ = z.update_in_place(loc, rec(1, b"new-value", seqno=99))
        out, _ = z.read_object(loc2)
        assert out.value == b"new-value"
        assert z.num_pages == 1

    def test_in_place_update_too_big_rejected(self):
        ps = PageStore(make_device(4))
        z = Zone(1, None, ps)
        loc, _ = z.write_record(rec(1, b"small"), slot_size=64)
        with pytest.raises(ReproError):
            z.update_in_place(loc, rec(1, b"x" * 200))

    def test_oversized_object_spans_pages(self):
        dev = make_device(4)
        ps = PageStore(dev)
        z = Zone(1, None, ps)
        big = rec(1, b"x" * 5000)
        loc, _ = z.write_record(big, slot_size=big.encoded_size)
        assert z.total_pages() == 2
        out, _ = z.read_object(loc)
        assert out.value == b"x" * 5000
        z.remove_object(encode_key(1), loc)
        assert dev.allocated_pages == 0

    def test_demotion_score(self):
        ps = PageStore(make_device(4))
        z = Zone(1, None, ps)
        assert z.demotion_score() == 0.0
        loc, _ = z.write_record(rec(1), slot_size=128)
        score_cold = z.demotion_score()
        z.read_object(loc)
        z.read_object(loc)
        assert z.demotion_score() < score_cold  # reads raise the cost
        z.reset_read_counter()
        assert z.demotion_score() == score_cold


class TestPerformanceTier:
    def make_tier(self, mib=32, **cfg):
        defaults = dict(num_partitions=4, initial_zones_per_partition=2)
        defaults.update(cfg)
        return PerformanceTier(make_device(mib), key_space(), NVMeConfig(**defaults))

    def test_put_get_across_partitions(self):
        tier = self.make_tier()
        for i in range(0, KEYSPACE, KEYSPACE // 100):
            tier.put(rec(i))
        for i in range(0, KEYSPACE, KEYSPACE // 100):
            out, _ = tier.get(encode_key(i))
            assert out is not None and out.value == b"v" * 100

    def test_get_missing(self):
        tier = self.make_tier()
        out, _ = tier.get(encode_key(42))
        assert out is None

    def test_update_in_place_no_extra_pages(self):
        tier = self.make_tier()
        tier.put(rec(1))
        pages_before = tier.used_pages()
        for s in range(10):
            tier.put(rec(1, b"u" * 100, seqno=100 + s))
        assert tier.used_pages() == pages_before
        out, _ = tier.get(encode_key(1))
        assert out.value == b"u" * 100

    def test_resize_moves_object(self):
        tier = self.make_tier()
        tier.put(rec(1, b"small"))
        tier.put(rec(1, b"x" * 900, seqno=50))
        out, _ = tier.get(encode_key(1))
        assert out.value == b"x" * 900
        assert tier.object_count() == 1

    def test_delete(self):
        tier = self.make_tier()
        tier.put(rec(1))
        tier.delete(encode_key(1))
        out, _ = tier.get(encode_key(1))
        assert out is None
        assert tier.object_count() == 0

    def test_routing_outside_keyspace_rejected(self):
        tier = self.make_tier()
        with pytest.raises(ReproError):
            tier.put(rec(KEYSPACE + 5))

    def test_partition_isolation(self):
        tier = self.make_tier()
        tier.put(rec(0))
        tier.put(rec(KEYSPACE - 1))
        p_first = tier.partition_for_key(encode_key(0))
        p_last = tier.partition_for_key(encode_key(KEYSPACE - 1))
        assert p_first is not p_last
        assert p_first.object_count() == 1
        assert p_last.object_count() == 1

    def test_fill_fraction_and_watermarks(self):
        tier = self.make_tier(
            mib=2, num_partitions=1, high_watermark=0.5, low_watermark=0.3
        )
        i = 0
        while not tier.partitions[0].over_high_watermark():
            tier.put(rec(i, b"x" * 1000))
            i += 1
        assert tier.partitions_over_watermark() == [tier.partitions[0]]
        assert 0 < tier.fill_fraction() <= 1.0

    def test_zone_split_on_growth(self):
        tier = self.make_tier(
            mib=32, num_partitions=1, migration_batch_bytes=8 << 10
        )
        part = tier.partitions[0]
        zones_before = len(part.zones())
        for i in range(3000):
            tier.put(rec(i, b"x" * 100))
        assert len(part.zones()) > zones_before
        # All zones hold only keys within their ranges.
        for z in part.zones():
            for k in z.keys:
                assert z.key_range.contains(k)
        for i in range(0, 3000, 211):
            out, _ = tier.get(encode_key(i))
            assert out is not None

    def test_eq1_eq2_zone_targets(self):
        tier = self.make_tier(num_partitions=1, migration_batch_bytes=64 << 10)
        part = tier.partitions[0]
        for i in range(100):
            tier.put(rec(i, b"x" * 100))  # encoded 122B
        avg = part.average_object_size()
        assert avg == pytest.approx(122, abs=1)
        assert part.zone_target_objects() == int((64 << 10) / avg)

    def test_writes_charge_foreground_page_ios(self):
        tier = self.make_tier()
        tier.device.traffic.reset()
        tier.put(rec(1))
        assert tier.device.traffic.write_bytes(TrafficKind.FOREGROUND) == 4096

    def test_reads_cached(self):
        cache = LRUCache(1 << 20)
        device = make_device()
        tier = PerformanceTier(device, key_space(), NVMeConfig(num_partitions=2), cache=cache)
        tier.put(rec(1))
        tier.get(encode_key(1))
        device.traffic.reset()
        tier.get(encode_key(1))
        assert device.traffic.read_bytes(TrafficKind.FOREGROUND) == 0


class TestDemotionCollect:
    def test_collect_zone_returns_sorted_batch_and_frees_space(self):
        device = make_device()
        tier = PerformanceTier(
            device,
            key_space(),
            NVMeConfig(num_partitions=1, initial_zones_per_partition=4),
        )
        part = tier.partitions[0]
        for i in range(500):
            tier.put(rec(i))
        zone = part.select_demotion_zone()
        assert zone is not None
        count_before = part.object_count()
        pages_before = tier.used_pages()
        batch, _ = part.collect_zone(zone)
        assert batch, "demotion batch should not be empty"
        keys = [r.key for r in batch]
        assert keys == sorted(keys)
        assert part.object_count() == count_before - len(batch)
        assert tier.used_pages() < pages_before
        assert zone.object_count == 0

    def test_collect_charges_migration_reads(self):
        device = make_device()
        tier = PerformanceTier(device, key_space(), NVMeConfig(num_partitions=1))
        part = tier.partitions[0]
        for i in range(200):
            tier.put(rec(i))
        zone = part.select_demotion_zone()
        device.traffic.reset()
        part.collect_zone(zone)
        assert device.traffic.read_bytes(TrafficKind.MIGRATION) > 0

    def test_hot_objects_parked_not_demoted(self):
        device = make_device()
        tier = PerformanceTier(
            device,
            key_space(),
            NVMeConfig(num_partitions=1, initial_zones_per_partition=1),
        )
        part = tier.partitions[0]
        for i in range(100):
            tier.put(rec(i))
        # Hammer one key until the tracker calls it hot.
        hot = encode_key(7)
        for _ in range(part.tracker.discriminator.window_capacity * 4):
            part.tracker.record_access(hot)
        assert part.tracker.is_hot(hot)
        zone = part.zone_for_key(hot)
        batch, _ = part.collect_zone(zone)
        assert hot not in [r.key for r in batch]
        assert hot in part.hot_zone.keys
        out, _ = tier.get(hot)
        assert out is not None


class TestPromotion:
    def test_promote_and_get(self):
        tier = PerformanceTier(make_device(), key_space(), NVMeConfig(num_partitions=1))
        part = tier.partitions[0]
        part.promote(rec(5, b"from-sata"))
        out, _ = tier.get(encode_key(5))
        assert out.value == b"from-sata"
        loc = part.index.get(encode_key(5))
        assert loc.promoted and loc.zone_id == part.hot_zone.zone_id

    def test_promote_existing_noop(self):
        tier = PerformanceTier(make_device(), key_space(), NVMeConfig(num_partitions=1))
        part = tier.partitions[0]
        tier.put(rec(5, b"resident"))
        part.promote(rec(5, b"stale"))
        out, _ = tier.get(encode_key(5))
        assert out.value == b"resident"

    def test_update_clears_promotion_label(self):
        tier = PerformanceTier(make_device(), key_space(), NVMeConfig(num_partitions=1))
        part = tier.partitions[0]
        part.promote(rec(5, b"v" * 100))
        tier.put(rec(5, b"w" * 100, seqno=99))
        loc = part.index.get(encode_key(5))
        assert not loc.promoted

    def test_hot_zone_eviction_drops_promoted(self):
        cfg = NVMeConfig(num_partitions=1, hot_zone_fraction=0.001)
        tier = PerformanceTier(make_device(2), key_space(), cfg)
        part = tier.partitions[0]
        # Small hot-zone budget: flooding it with promoted cold objects
        # must evict-by-drop, not grow unboundedly.
        for i in range(200):
            part.promote(rec(i, b"x" * 100))
        assert part.hot_zone.total_pages() <= part._hot_zone_page_budget() + 1

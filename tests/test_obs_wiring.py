"""Integration tests for the obs instrumentation wired through the stack.

The two load-bearing properties:

* tracing is *inert* — a traced run produces byte-identical results to an
  untraced run (no RNG draws, no simulated-time movement);
* tracing is *exact* — the recorder's aggregated lane totals equal the
  device traffic ledgers, and sharded traces merge into the serial trace.
"""

import pytest

from repro import obs
from repro.common.errors import PowerLossError
from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.nvme.config import NVMeConfig
from repro.parallel import Job, run_jobs
from repro.simssd import (
    DeviceProfile,
    FaultInjector,
    FaultPlan,
    SimDevice,
    TrafficKind,
)
from repro.ycsb import WorkloadRunner, YCSB_WORKLOADS

KiB = 1024
MiB = 1024 * KiB


def nvme_profile(mib=8):
    return DeviceProfile(
        name="nvme",
        capacity_bytes=mib * MiB,
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )


def make_db(nvme_mib=8):
    nvme = SimDevice(nvme_profile(nvme_mib))
    sata = SimDevice(
        DeviceProfile(
            name="sata",
            capacity_bytes=64 * MiB,
            page_size=4096,
            read_latency_s=2e-4,
            write_latency_s=6e-5,
            read_bandwidth=5.6e8,
            write_bandwidth=5.1e8,
        )
    )
    return HyperDB(
        nvme,
        sata,
        HyperDBConfig(
            key_space=KeyRange(encode_key(0), encode_key(20_000)),
            nvme=NVMeConfig(num_partitions=2, migration_batch_bytes=16 * KiB),
        ),
    )


def run_workload(record_count=3000, ops=1500, nvme_mib=8):
    db = make_db(nvme_mib)
    runner = WorkloadRunner(db, record_count=record_count, value_size=256, seed=1)
    runner.load()
    return db, runner.run(YCSB_WORKLOADS["A"], ops)


def traced_device_job(pages, seed=None):
    """Worker-side job: emits trace events into the per-job recorder."""
    rec = obs.RECORDER
    assert rec is not None, "run_jobs must install a per-job recorder"
    dev = SimDevice(nvme_profile())
    dev.write_pages(pages, TrafficKind.FLUSH)
    dev.read_pages(1, TrafficKind.FOREGROUND)
    rec.emit("marker", pages=pages)
    return pages


class TestTracingIsInert:
    def teardown_method(self):
        obs.uninstall()

    def test_traced_run_identical_to_untraced(self):
        _, plain = run_workload()
        obs.install()
        _, traced = run_workload()
        rec = obs.uninstall()
        assert rec.total_events > 0  # the run was actually traced
        assert traced.traffic == plain.traffic
        assert traced.elapsed_s == plain.elapsed_s
        assert traced.throughput_ops == plain.throughput_ops
        assert traced.space_used == plain.space_used
        for op, hist in plain.latency_by_op.items():
            assert list(traced.latency_by_op[op].samples()) == list(hist.samples())


class TestTracingIsExact:
    def teardown_method(self):
        obs.uninstall()

    def test_lane_totals_match_traffic_ledgers(self):
        rec = obs.install()
        db, _ = run_workload()
        obs.uninstall()
        for name, dev in db.devices().items():
            snap = dev.traffic.snapshot()
            for lane, fields in snap.items():
                recorded = rec.lane_totals.get(name, {}).get(lane)
                if recorded is None:
                    # Untraced lanes saw no traffic at all.
                    assert fields["read_bytes"] == 0
                    assert fields["write_bytes"] == 0
                    continue
                assert recorded["read_bytes"] == fields["read_bytes"]
                assert recorded["write_bytes"] == fields["write_bytes"]
                assert recorded["read_ios"] == fields["read_ios"]
                assert recorded["write_ios"] == fields["write_ios"]

    def test_lsm_flush_and_compaction_spans(self):
        from repro.baselines.rocksdb import RocksDBStore

        rec = obs.install()
        store = RocksDBStore(
            SimDevice(nvme_profile(2)),
            SimDevice(
                DeviceProfile(
                    name="sata",
                    capacity_bytes=64 * MiB,
                    page_size=4096,
                    read_latency_s=2e-4,
                    write_latency_s=6e-5,
                    read_bandwidth=5.6e8,
                    write_bandwidth=5.1e8,
                )
            ),
        )
        runner = WorkloadRunner(store, record_count=3000, value_size=256, seed=1)
        runner.load()
        obs.uninstall()
        counts = rec.counts
        assert counts.get("flush_begin", 0) == counts.get("flush_end", 0) > 0
        assert (
            counts.get("compaction_begin", 0) == counts.get("compaction_end", 0) > 0
        )
        begin = next(e for e in rec.events() if e.type == "flush_begin")
        assert begin.data["records"] > 0 and begin.data["bytes"] > 0
        # Compactions triggered by a flush nest inside the flush span.
        comp = next(e for e in rec.events() if e.type == "compaction_begin")
        assert comp.depth >= 1

    def test_engine_spans_and_phases_recorded(self):
        rec = obs.install()
        # A small NVMe tier forces watermark demotions into the SATA
        # semi-LSM, so migration and compaction spans actually fire.
        db, _ = run_workload(record_count=4000, nvme_mib=2)
        db.checkpoint()
        doc = obs.uninstall().to_doc()
        counts = doc["header"]["counts"]
        assert counts.get("op_begin", 0) == counts.get("op_end", 0) > 0
        assert counts.get("migration_job_begin", 0) > 0
        assert counts.get("zone_demotion", 0) > 0
        assert counts.get("semi_compaction_begin", 0) > 0
        assert counts.get("checkpoint", 0) == 1
        phases = [p["phase"] for p in doc["phases"]]
        assert phases == ["load", "run"]
        # The run phase delta published into the trace equals the ledger
        # delta the RunResult reports.
        run_phase = doc["phases"][1]
        assert set(run_phase["traffic"]) == set(db.devices())


class TestShardedTraceMerging:
    def teardown_method(self):
        obs.uninstall()

    def run_traced(self, workers):
        parent = obs.install()
        jobs = [
            Job(traced_device_job, args=(p,), label=f"j{p}") for p in (1, 2, 3, 4)
        ]
        results = run_jobs(jobs, workers=workers)
        obs.uninstall()
        assert [r.value for r in results] == [1, 2, 3, 4]
        return parent.to_doc()

    def test_serial_and_parallel_traces_identical(self):
        serial = self.run_traced(workers=1)
        fanned = self.run_traced(workers=2)
        assert serial == fanned
        assert serial["header"]["counts"]["marker"] == 4
        # Shards land in submission order, not completion order.
        markers = [
            e["data"]["pages"] for e in serial["events"] if e["type"] == "marker"
        ]
        assert markers == [1, 2, 3, 4]

    def test_untraced_run_jobs_needs_no_recorder(self):
        jobs = [Job(len, args=("ab",))]
        assert run_jobs(jobs, workers=1)[0].value == 2
        assert obs.RECORDER is None


class TestFaultEvents:
    def teardown_method(self):
        obs.uninstall()

    def test_retry_and_fault_events(self):
        rec = obs.install()
        dev = SimDevice(
            nvme_profile(), injector=FaultInjector(FaultPlan(fail_write_ios=frozenset({1})))
        )
        dev.write_pages(2, TrafficKind.WAL)
        obs.uninstall()
        faults = [e for e in rec.events() if e.type == "fault"]
        retries = [e for e in rec.events() if e.type == "retry_backoff"]
        assert len(faults) == 1
        assert faults[0].t is None  # the injector has no clock
        assert faults[0].data["rw"] == "write"
        assert len(retries) == 1
        assert retries[0].data["lane"] == "wal"
        assert retries[0].data["attempt"] == 0
        assert retries[0].data["backoff_s"] > 0  # the charged seconds
        assert retries[0].t is not None

    def test_crash_event_on_power_loss(self):
        rec = obs.install()
        dev = SimDevice(
            nvme_profile(), injector=FaultInjector(FaultPlan(crash_after_write_io=2))
        )
        dev.write_pages(1, TrafficKind.WAL)
        with pytest.raises(PowerLossError):
            dev.write_pages(1, TrafficKind.WAL)
        obs.uninstall()
        assert rec.counts.get("crash", 0) == 1

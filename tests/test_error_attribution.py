"""Tests for typed error attribution: retry-exhaustion metadata and the
``node_id`` field on replica rejections.

The retry test is the regression for the silent-exhaustion bug: the device
used to surface a bare ``TransientIOError`` that said nothing about how
hard it had tried, so callers could not distinguish "failed instantly"
from "failed after the full backoff schedule was charged".
"""

import pytest

from repro.common.errors import (
    DeviceOfflineError,
    OutOfSpaceError,
    QuorumError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.health.state import HealthState, HealthWindow
from repro.simssd import (
    DeviceProfile,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimDevice,
    TrafficKind,
)

KiB = 1024
MiB = 1024 * KiB


def device(plan=None, retry=None, mib=8):
    profile = DeviceProfile(
        name="nvme",
        capacity_bytes=mib * MiB,
        page_size=4096,
        read_latency_s=8e-5,
        write_latency_s=2e-5,
        read_bandwidth=6.5e9,
        write_bandwidth=3.5e9,
    )
    injector = FaultInjector(plan) if plan is not None else None
    return SimDevice(profile, injector=injector, retry_policy=retry)


class TestRetryExhaustion:
    def test_write_exhaustion_reports_attempts_and_backoff(self):
        policy = RetryPolicy(max_retries=2, backoff_base_s=1e-4, multiplier=2.0)
        dev = device(FaultPlan(fail_write_ios=frozenset(range(1, 10))), retry=policy)
        with pytest.raises(RetryExhaustedError) as ei:
            dev.write_pages(1, TrafficKind.FOREGROUND)
        err = ei.value
        # Initial try + 2 retries; backoff charged after each failed
        # attempt that still had retries left: base * (1 + multiplier).
        assert err.attempts == 3
        assert err.total_backoff_s == pytest.approx(1e-4 * (1 + 2))
        assert "3 attempts" in str(err)

    def test_read_exhaustion_reports_attempts_and_backoff(self):
        policy = RetryPolicy(max_retries=1, backoff_base_s=2e-4)
        dev = device(FaultPlan(fail_read_ios=frozenset(range(1, 10))), retry=policy)
        dev.allocate(1)
        with pytest.raises(RetryExhaustedError) as ei:
            dev.read_pages(1, TrafficKind.FOREGROUND)
        assert ei.value.attempts == 2
        assert ei.value.total_backoff_s == pytest.approx(2e-4)

    def test_zero_retry_policy_charges_no_backoff(self):
        dev = device(
            FaultPlan(fail_write_ios=frozenset({1})),
            retry=RetryPolicy(max_retries=0),
        )
        with pytest.raises(RetryExhaustedError) as ei:
            dev.write_pages(1, TrafficKind.FOREGROUND)
        assert ei.value.attempts == 1
        assert ei.value.total_backoff_s == 0.0

    def test_is_a_transient_io_error(self):
        # Existing handlers catch TransientIOError; the typed subclass must
        # not break them.
        dev = device(
            FaultPlan(fail_write_ios=frozenset(range(1, 10))),
            retry=RetryPolicy(max_retries=1),
        )
        with pytest.raises(TransientIOError):
            dev.write_pages(1, TrafficKind.FOREGROUND)


class TestNodeIdAttribution:
    def test_single_node_errors_have_no_node_id(self):
        assert OutOfSpaceError("full").node_id is None
        assert DeviceOfflineError("down").node_id is None

    def test_single_node_device_raises_without_node_id(self):
        window = HealthWindow(
            device="nvme", state=HealthState.OFFLINE, start_io=1, end_io=100
        )
        dev = device(FaultPlan(health_windows=(window,)))
        with pytest.raises(DeviceOfflineError) as ei:
            dev.write_pages(1, TrafficKind.FOREGROUND)
        assert ei.value.node_id is None

    def test_out_of_space_from_device_has_no_node_id(self):
        dev = device(mib=8)
        with pytest.raises(OutOfSpaceError) as ei:
            dev.allocate(dev.profile.num_pages + 1)
        assert ei.value.node_id is None

    def test_cluster_rejection_names_the_node(self):
        from repro.cluster import ClusterConfig, HyperDBCluster

        window = HealthWindow(
            device="node-0", state=HealthState.OFFLINE, start_io=1, end_io=100
        )
        c = HyperDBCluster(ClusterConfig(), windows=(window,))
        c.clock = 1  # the guard resolves health at the current op tick
        with pytest.raises(DeviceOfflineError) as ei:
            c._replica_guard("node-0")
        assert ei.value.node_id == "node-0"


class TestQuorumErrorShape:
    def test_message_carries_counts_and_failures(self):
        err = QuorumError(
            "write", acks=1, required=2, rf=3,
            failures={"node-1": "offline", "node-2": "out_of_space"},
        )
        msg = str(err)
        assert "1/2" in msg and "rf=3" in msg
        assert err.failures["node-1"] == "offline"
        assert err.kind == "write"

"""Tests for previously-uncovered error branches: closed-file operations,
record-decode truncation offsets, checkpoint structural corruption, and
device trim bounds."""

import struct

import pytest
import zlib

from repro.common.errors import ClosedError, CorruptionError, ReproError
from repro.common.keys import KeyRange, encode_key
from repro.common.records import Record
from repro.lsm.blocks import decode_records, encode_record
from repro.nvme import NVMeConfig
from repro.nvme.checkpoint import _CRC, _HEADER, _MAGIC, _ZONE_REC
from repro.nvme.pagestore import PageStore
from repro.nvme.partition import Partition
from repro.simssd import DeviceProfile, SimDevice, TrafficKind
from repro.simssd.fs import SimFilesystem

KiB = 1024
MiB = 1024 * KiB


def device(mib=8):
    return SimDevice(
        DeviceProfile(
            name="nvme",
            capacity_bytes=mib * MiB,
            page_size=4096,
            read_latency_s=8e-5,
            write_latency_s=2e-5,
            read_bandwidth=6.5e9,
            write_bandwidth=3.5e9,
        )
    )


class TestSimFileClosed:
    def _deleted_file(self):
        fs = SimFilesystem(device())
        f = fs.create("f")
        f.append(b"x" * 100, TrafficKind.FOREGROUND)
        fs.delete("f")
        return f

    def test_append_after_delete(self):
        f = self._deleted_file()
        with pytest.raises(ClosedError):
            f.append(b"more", TrafficKind.FOREGROUND)

    def test_read_after_delete(self):
        f = self._deleted_file()
        with pytest.raises(ClosedError):
            f.read(0, 1, TrafficKind.FOREGROUND)

    def test_write_at_after_delete(self):
        f = self._deleted_file()
        with pytest.raises(ClosedError):
            f.write_at(0, b"y", TrafficKind.FOREGROUND)

    def test_truncate_after_delete(self):
        f = self._deleted_file()
        with pytest.raises(ClosedError):
            f.truncate(0)

    def test_double_delete_is_idempotent(self):
        f = self._deleted_file()
        f.delete()  # no error, no double-trim
        assert f.allocated_pages == 0

    def test_truncate_bounds(self):
        fs = SimFilesystem(device())
        f = fs.create("f")
        f.append(b"x" * 10, TrafficKind.FOREGROUND)
        with pytest.raises(ReproError):
            f.truncate(-1)
        with pytest.raises(ReproError):
            f.truncate(11)


class TestDecodeRecordsTruncation:
    def test_truncated_header_offset_reported(self):
        data = encode_record(Record(b"key", b"value", 1)) + b"\x01\x02"
        with pytest.raises(CorruptionError) as exc:
            list(decode_records(data))
        assert "header" in str(exc.value)
        assert str(len(data) - 2) in str(exc.value)

    def test_truncated_body_offset_reported(self):
        full = encode_record(Record(b"key", b"value", 1))
        data = full[:-2]  # header intact, value cut short
        with pytest.raises(CorruptionError) as exc:
            list(decode_records(data))
        assert "body" in str(exc.value)

    def test_empty_input_yields_nothing(self):
        assert list(decode_records(b"")) == []

    def test_second_record_truncation_offset(self):
        first = encode_record(Record(b"a", b"1", 1))
        data = first + encode_record(Record(b"b", b"2", 2))[:-1]
        with pytest.raises(CorruptionError) as exc:
            list(decode_records(data))
        assert str(len(first) + 15) in str(exc.value)  # body starts after header


class TestCheckpointStructuralErrors:
    def _partition(self):
        dev = device()
        store = PageStore(dev)
        part = Partition(
            partition_id=0,
            key_range=KeyRange(encode_key(0), encode_key(10_000)),
            page_store=store,
            config=NVMeConfig(num_partitions=1, initial_zones_per_partition=1),
            page_budget=dev.profile.num_pages,
        )
        return part, store

    def _install_image(self, part, store, payload):
        """Write a hand-crafted checkpoint image (valid CRC) into pages."""
        image = payload + _CRC.pack(zlib.crc32(payload))
        npages = max(1, -(-len(image) // store.page_size))
        pages = store.allocate(npages)
        for i, pid in enumerate(pages):
            store.write(
                pid, 0, image[i * store.page_size : (i + 1) * store.page_size],
                TrafficKind.GC,
            )
        part._checkpoint_pages = pages
        part._checkpoint_len = len(image)

    def test_entry_with_unknown_zone_rejected(self):
        part, store = self._partition()
        # One hot zone, one entry pointing at a zone id that was never
        # serialized.
        entry = struct.pack(">HQQIIIQB", 1, 424242, 0, 0, 64, 10, 1, 0) + b"k"
        payload = (
            _HEADER.pack(_MAGIC, 1, 1, 0)
            + _ZONE_REC.pack(part.hot_zone.zone_id, 0)
            + entry
        )
        self._install_image(part, store, payload)
        with pytest.raises(CorruptionError, match="unknown zone"):
            part.recover()

    def test_checkpoint_without_hot_zone_rejected(self):
        part, store = self._partition()
        # A single *ranged* zone and no range-less (hot) zone.
        payload = (
            _HEADER.pack(_MAGIC, 1, 0, 0)
            + _ZONE_REC.pack(7, 1)
            + struct.pack(">H", 2) + b"\x00a"
            + struct.pack(">H", 2) + b"\x00z"
        )
        self._install_image(part, store, payload)
        with pytest.raises(CorruptionError, match="hot zone"):
            part.recover()

    def test_bad_magic_rejected(self):
        part, store = self._partition()
        payload = _HEADER.pack(0xDEAD, 0, 0, 0)
        self._install_image(part, store, payload)
        with pytest.raises(CorruptionError, match="magic"):
            part.recover()


class TestDeviceTrimBounds:
    def test_trim_more_than_allocated_clamps(self):
        dev = device()
        dev.allocate(4)
        dev.trim(5)
        assert dev.allocated_pages == 0
        dev.trim(1)  # idempotent once empty
        assert dev.allocated_pages == 0

    def test_trim_negative(self):
        dev = device()
        with pytest.raises(ValueError):
            dev.trim(-1)

    def test_trim_exact_boundary(self):
        dev = device()
        dev.allocate(4)
        dev.trim(4)
        assert dev.allocated_pages == 0

    def test_allocate_past_capacity(self):
        dev = device(mib=1)
        with pytest.raises(Exception):
            dev.allocate(dev.profile.num_pages + 1)

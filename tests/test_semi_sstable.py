"""Unit tests for the semi-SSTable."""

import pytest

from repro.common.keys import KeyRange, encode_key
from repro.common.errors import ReproError
from repro.common.records import Record
from repro.lsm.semi import SemiSSTable
from repro.simssd import DeviceProfile, SimDevice, SimFilesystem, TrafficKind


@pytest.fixture
def fs():
    profile = DeviceProfile(
        name="t",
        capacity_bytes=16384 * 4096,
        page_size=4096,
        read_latency_s=1e-4,
        write_latency_s=5e-5,
        read_bandwidth=1e8,
        write_bandwidth=5e7,
    )
    return SimFilesystem(SimDevice(profile))


def full_range():
    return KeyRange(encode_key(0), encode_key(10**9))


def recs(ids, value=b"v", seqno_base=1):
    return [Record(encode_key(i), value, seqno_base + n) for n, i in enumerate(sorted(ids))]


@pytest.fixture
def table(fs):
    return SemiSSTable(1, fs, full_range(), block_size=512)


class TestSemiSSTableBasics:
    def test_merge_append_and_get(self, table):
        table.merge_append(recs(range(100)))
        rec, _ = table.get(encode_key(50))
        assert rec is not None and rec.value == b"v"
        assert table.num_valid_records == 100

    def test_get_missing(self, table):
        table.merge_append(recs(range(10)))
        rec, _ = table.get(encode_key(999))
        assert rec is None

    def test_unsorted_input_rejected(self, table):
        with pytest.raises(ReproError):
            table.merge_append(
                [Record(encode_key(5), b"v", 1), Record(encode_key(3), b"v", 2)]
            )

    def test_out_of_range_rejected(self, fs):
        t = SemiSSTable(1, fs, KeyRange(encode_key(0), encode_key(100)))
        with pytest.raises(ReproError):
            t.merge_append([Record(encode_key(200), b"v", 1)])

    def test_update_supersedes(self, table):
        table.merge_append(recs(range(10), value=b"old", seqno_base=1))
        table.merge_append(recs([5], value=b"new", seqno_base=100))
        rec, _ = table.get(encode_key(5))
        assert rec.value == b"new"
        assert table.num_valid_records == 10

    def test_older_incoming_record_ignored(self, table):
        table.merge_append(recs([5], value=b"new", seqno_base=100))
        table.merge_append(recs([5], value=b"stale", seqno_base=1))
        rec, _ = table.get(encode_key(5))
        assert rec.value == b"new"

    def test_iter_valid_records_sorted(self, table):
        table.merge_append(recs(range(0, 100, 2)))
        table.merge_append(recs(range(1, 100, 2), seqno_base=1000))
        out = list(table.iter_valid_records())
        assert [r.key for r in out] == [encode_key(i) for i in range(100)]

    def test_iter_from(self, table):
        table.merge_append(recs(range(50)))
        out = [r.key for r in table.iter_from(encode_key(45))]
        assert out == [encode_key(i) for i in range(45, 50)]


class TestBlockGranularityMerge:
    def test_untouched_blocks_stay_clean(self, table):
        # Two disjoint key clusters land in different blocks.
        table.merge_append(recs(range(0, 20)))
        clean_blocks_before = [
            b.block_id for b in table.blocks if not b.is_dead and b.first_key >= encode_key(10)
        ]
        # Update only low keys: blocks holding keys >= 10 must be untouched.
        table.merge_append(recs(range(0, 3), value=b"upd", seqno_base=1000))
        still_alive = [
            b.block_id for b in table.blocks if not b.is_dead and b.block_id in clean_blocks_before
        ]
        assert still_alive == clean_blocks_before

    def test_touched_block_records_survive(self, table):
        table.merge_append(recs(range(0, 8)))
        # Update one key; its block neighbours must survive the rewrite.
        table.merge_append(recs([0], value=b"upd", seqno_base=1000))
        for i in range(8):
            rec, _ = table.get(encode_key(i))
            assert rec is not None
            assert rec.value == (b"upd" if i == 0 else b"v")

    def test_dead_space_accumulates(self, table):
        table.merge_append(recs(range(100)))
        size1 = table.file_bytes
        table.merge_append(recs(range(100), value=b"x", seqno_base=1000))
        assert table.file_bytes > size1
        assert table.dead_bytes > 0

    def test_dirty_ratio_tracks_staleness(self, table):
        table.merge_append(recs(range(100)))
        assert table.dirty_ratio == 0.0
        table.merge_append(recs(range(50), value=b"x", seqno_base=1000))
        assert table.dirty_ratio > 0.0

    def test_append_write_volume_less_than_full_rewrite(self, fs, table):
        table.merge_append(recs(range(1000), value=b"v" * 64))
        fs.device.traffic.reset()
        # A one-key update should write ~one block, not the whole table.
        table.merge_append(recs([500], value=b"u" * 64, seqno_base=10**6))
        written = fs.device.traffic.write_bytes(TrafficKind.COMPACTION)
        assert written < table.file_bytes / 4

    def test_invalidate_only(self, table):
        table.merge_append(recs(range(10)))
        table.merge_append([], invalidate_only={encode_key(3)})
        rec, _ = table.get(encode_key(3))
        assert rec is None
        assert table.num_valid_records == 9


class TestFullCompact:
    def test_reclaims_dead_space(self, table):
        table.merge_append(recs(range(200)))
        for s in range(5):
            table.merge_append(recs(range(200), value=bytes([s]), seqno_base=1000 * (s + 1)))
        assert table.dead_bytes > 0
        table.full_compact()
        assert table.dead_bytes == 0
        assert table.dirty_ratio == 0.0
        rec, _ = table.get(encode_key(100))
        assert rec.value == bytes([4])
        assert table.num_valid_records == 200

    def test_device_space_freed(self, fs, table):
        table.merge_append(recs(range(500), value=b"v" * 100))
        for s in range(4):
            table.merge_append(
                recs(range(500), value=bytes([s]) * 100, seqno_base=10**4 * (s + 1))
            )
        used_before = fs.device.used_bytes
        table.full_compact()
        assert fs.device.used_bytes < used_before

    def test_empty_table_full_compact(self, table):
        table.merge_append(recs(range(5)))
        table.merge_append([], invalidate_only={encode_key(i) for i in range(5)})
        table.full_compact()
        assert table.num_valid_records == 0
        assert table.file_bytes == 0


class TestDestroy:
    def test_destroy_frees_file(self, fs, table):
        table.merge_append(recs(range(100)))
        assert fs.device.used_bytes > 0
        table.destroy()
        assert fs.device.used_bytes == 0
        assert table.num_valid_records == 0

"""Unit tests for key encoding and key-range arithmetic."""

import pytest

from repro.common.keys import (
    KeyRange,
    decode_key,
    encode_key,
    key_in_range,
    ranges_overlap,
)


class TestEncodeKey:
    def test_roundtrip(self):
        for kid in (0, 1, 255, 256, 2**32, 2**63 - 1):
            assert decode_key(encode_key(kid)) == kid

    def test_preserves_order(self):
        ids = [0, 1, 2, 100, 255, 256, 65535, 10**6]
        encoded = [encode_key(i) for i in ids]
        assert encoded == sorted(encoded)

    def test_fixed_width(self):
        assert len(encode_key(0)) == 8
        assert len(encode_key(2**63 - 1)) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_key(-1)

    def test_custom_width(self):
        assert len(encode_key(5, width=4)) == 4


class TestKeyRange:
    def test_contains_half_open(self):
        r = KeyRange(encode_key(10), encode_key(20))
        assert r.contains(encode_key(10))
        assert r.contains(encode_key(19))
        assert not r.contains(encode_key(20))
        assert not r.contains(encode_key(9))

    def test_unbounded_hi(self):
        r = KeyRange(encode_key(10))
        assert r.contains(encode_key(10**9))
        assert not r.contains(encode_key(9))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(encode_key(10), encode_key(10))
        with pytest.raises(ValueError):
            KeyRange(encode_key(10), encode_key(5))

    def test_overlaps(self):
        a = KeyRange(encode_key(0), encode_key(10))
        b = KeyRange(encode_key(5), encode_key(15))
        c = KeyRange(encode_key(10), encode_key(20))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # half-open: [0,10) and [10,20) don't touch
        assert b.overlaps(c)

    def test_overlaps_unbounded(self):
        a = KeyRange(encode_key(0), encode_key(10))
        b = KeyRange(encode_key(5))
        assert a.overlaps(b)
        c = KeyRange(encode_key(10))
        assert not a.overlaps(c)

    def test_union(self):
        a = KeyRange(encode_key(0), encode_key(10))
        b = KeyRange(encode_key(5), encode_key(15))
        u = a.union(b)
        assert u.lo == encode_key(0)
        assert u.hi == encode_key(15)

    def test_union_unbounded(self):
        a = KeyRange(encode_key(0), encode_key(10))
        b = KeyRange(encode_key(5))
        assert a.union(b).hi is None

    def test_spanning(self):
        keys = [encode_key(i) for i in (7, 3, 9)]
        r = KeyRange.spanning(keys)
        for k in keys:
            assert r.contains(k)
        assert not r.contains(encode_key(10))

    def test_spanning_empty_rejected(self):
        with pytest.raises(ValueError):
            KeyRange.spanning([])


class TestRangeHelpers:
    def test_key_in_range(self):
        assert key_in_range(encode_key(5), encode_key(0), encode_key(10))
        assert not key_in_range(encode_key(10), encode_key(0), encode_key(10))
        assert key_in_range(encode_key(10**9), encode_key(0), None)

    def test_ranges_overlap_matrix(self):
        e = encode_key
        assert ranges_overlap(e(0), e(10), e(9), e(20))
        assert not ranges_overlap(e(0), e(10), e(10), e(20))
        assert ranges_overlap(e(0), None, e(999), None)
        assert not ranges_overlap(e(0), e(5), e(5), None)

"""K-way merge of sorted record streams.

Used by compaction (merging a victim table with its children) and by range
scans (merging memtable + every level).  Duplicate keys are resolved by
sequence number, falling back to stream priority (lower priority index =
newer source) when seqnos tie.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.common.records import Record


def merge_records(
    streams: Iterable[Iterator[Record]],
    drop_tombstones: bool = False,
) -> Iterator[Record]:
    """Merge sorted record streams into one deduplicated sorted stream.

    ``streams`` must each yield records in strictly increasing key order.
    Earlier streams take precedence on seqno ties (pass newest first).
    When ``drop_tombstones`` is set, deletion markers are elided — only
    valid at the bottom of the tree, where nothing older can resurface.
    """
    heap: list[tuple[bytes, int, int, Record, Iterator[Record]]] = []
    for priority, stream in enumerate(streams):
        it = iter(stream)
        first = next(it, None)
        if first is not None:
            heapq.heappush(heap, (first.key, -first.seqno, priority, first, it))

    prev_key: bytes | None = None
    while heap:
        key, _, priority, rec, it = heapq.heappop(heap)
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.key, -nxt.seqno, priority, nxt, it))
        if key == prev_key:
            continue  # an older duplicate; the winner was already emitted
        prev_key = key
        if drop_tombstones and rec.is_tombstone:
            continue
        yield rec

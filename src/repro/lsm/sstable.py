"""Sorted string tables.

An :class:`SSTable` is an immutable, fully sorted run of records:

* **data blocks** — records in key order, packed to ~``block_size`` bytes;
* **metadata block** — a bloom filter over all keys;
* **index block** — per-block key ranges and file offsets.

The index and bloom are kept in memory (the paper stores a backup of them on
NVMe; either way lookups don't pay data-tier I/O for them) but their bytes
are appended to the table file so space accounting is honest.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.bloom import BloomFilter
from repro.common.cache import LRUCache
from repro.common.errors import ReproError
from repro.common.keys import KeyRange
from repro.common.records import Record
from repro.lsm.blocks import decode_block, encode_block, record_encoded_size
from repro.simssd.fs import SimFile, SimFilesystem
from repro.simssd.traffic import TrafficKind

DEFAULT_BLOCK_SIZE = 4096


@dataclass(slots=True)
class BlockHandle:
    """Index entry describing one data block."""

    first_key: bytes
    last_key: bytes
    offset: int
    length: int
    num_records: int

    @property
    def key_range(self) -> KeyRange:
        return KeyRange(self.first_key, self.last_key + b"\x00")

    def index_entry_size(self) -> int:
        """Approximate serialized size of this index entry."""
        return len(self.first_key) + len(self.last_key) + 16


class SSTable:
    """An immutable sorted table backed by one file."""

    def __init__(
        self,
        table_id: int,
        file: SimFile,
        handles: list[BlockHandle],
        bloom: BloomFilter,
        num_records: int,
    ) -> None:
        if not handles:
            raise ReproError("an SSTable must contain at least one block")
        self.table_id = table_id
        self.file = file
        self.handles = handles
        self.bloom = bloom
        self.num_records = num_records
        # Tables are immutable: the per-block first keys are cached once so
        # point lookups don't rebuild the list on every get.
        self._firsts = [h.first_key for h in handles]

    # ------------------------------------------------------------ metadata

    @property
    def first_key(self) -> bytes:
        return self.handles[0].first_key

    @property
    def last_key(self) -> bytes:
        return self.handles[-1].last_key

    @property
    def key_range(self) -> KeyRange:
        return KeyRange(self.first_key, self.last_key + b"\x00")

    @property
    def size_bytes(self) -> int:
        return self.file.size

    @property
    def data_bytes(self) -> int:
        return sum(h.length for h in self.handles)

    # -------------------------------------------------------------- reads

    def _find_handle(self, key: bytes) -> Optional[BlockHandle]:
        idx = bisect_right(self._firsts, key) - 1
        if idx < 0:
            return None
        h = self.handles[idx]
        return h if key <= h.last_key else None

    def _load_block(
        self,
        handle: BlockHandle,
        kind: TrafficKind,
        cache: Optional[LRUCache],
    ) -> tuple[list[Record], list[bytes], float]:
        """Read and decode one data block plus its sorted key array.

        The key array is cached alongside the records so point lookups can
        binary-search without touching every record object per get.
        """
        cache_key = ("blk", self.file.name, handle.offset)
        if cache is not None:
            cached = cache.get(cache_key)
            if cached is not None:
                records, keys = cached
                return records, keys, 0.0
        raw, service = self.file.read(handle.offset, handle.length, kind)
        records = decode_block(raw)
        keys = [r.key for r in records]
        if cache is not None:
            cache.put(cache_key, (records, keys), charge=handle.length)
        return records, keys, service

    def read_block(
        self,
        handle: BlockHandle,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache: Optional[LRUCache] = None,
    ) -> tuple[list[Record], float]:
        """Read and decode one data block, optionally through the page cache."""
        records, _, service = self._load_block(handle, kind, cache)
        return records, service

    def get(
        self,
        key: bytes,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache: Optional[LRUCache] = None,
    ) -> tuple[Optional[Record], float]:
        """Point lookup.  Returns ``(record_or_none, service_time)``."""
        if key not in self.bloom:
            return None, 0.0
        handle = self._find_handle(key)
        if handle is None:
            return None, 0.0
        records, keys, service = self._load_block(handle, kind, cache)
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return records[idx], service
        return None, service

    def get_nobloom(
        self,
        key: bytes,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache: Optional[LRUCache] = None,
    ) -> tuple[Optional[Record], float]:
        """:meth:`get` minus the bloom probe — for batch readers that
        already probed the filter columnar
        (:meth:`repro.common.bloom.BloomFilter.contains_many`)."""
        handle = self._find_handle(key)
        if handle is None:
            return None, 0.0
        records, keys, service = self._load_block(handle, kind, cache)
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return records[idx], service
        return None, service

    def iter_records(
        self,
        kind: TrafficKind = TrafficKind.COMPACTION,
        cache: Optional[LRUCache] = None,
    ) -> Iterator[Record]:
        """Sequential scan of every record, charging one pass of read I/O."""
        for handle in self.handles:
            records, _ = self.read_block(handle, kind, cache)
            yield from records

    def iter_from(
        self,
        start: bytes,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache: Optional[LRUCache] = None,
    ) -> Iterator[Record]:
        """Ordered iteration beginning at the first key >= ``start``."""
        idx = max(0, bisect_right(self._firsts, start) - 1)
        for handle in self.handles[idx:]:
            if handle.last_key < start:
                continue
            records, _ = self.read_block(handle, kind, cache)
            for rec in records:
                if rec.key >= start:
                    yield rec

    def all_keys(self) -> list[bytes]:
        """Keys visible from the index alone (block boundary keys)."""
        out = []
        for h in self.handles:
            out.append(h.first_key)
            if h.last_key != h.first_key:
                out.append(h.last_key)
        return out


class SSTableBuilder:
    """Streams sorted records into a new table file."""

    def __init__(
        self,
        fs: SimFilesystem,
        table_id: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        write_kind: TrafficKind = TrafficKind.FLUSH,
        bits_per_key: int = 10,
    ) -> None:
        self._fs = fs
        self._table_id = table_id
        self._block_size = block_size
        self._write_kind = write_kind
        self._bits_per_key = bits_per_key
        self._file = fs.create(f"sst_{table_id:08d}")
        self._pending: list[Record] = []
        self._pending_size = 0
        self._handles: list[BlockHandle] = []
        self._keys: list[bytes] = []
        self._last_key: Optional[bytes] = None
        self._num_records = 0
        self._finished = False

    @property
    def estimated_size(self) -> int:
        return self._file.size + self._pending_size

    @property
    def num_records(self) -> int:
        return self._num_records

    def add(self, rec: Record) -> None:
        """Append a record; keys must arrive in strictly increasing order."""
        if self._finished:
            raise ReproError("builder already finished")
        if self._last_key is not None and rec.key <= self._last_key:
            raise ReproError(
                f"records out of order: {rec.key!r} after {self._last_key!r}"
            )
        self._last_key = rec.key
        self._pending.append(rec)
        self._pending_size += record_encoded_size(rec)
        self._keys.append(rec.key)
        self._num_records += 1
        if self._pending_size >= self._block_size:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._pending:
            return
        block = encode_block(self._pending)
        offset, _ = self._file.append(block, self._write_kind, sequential=True)
        self._handles.append(
            BlockHandle(
                first_key=self._pending[0].key,
                last_key=self._pending[-1].key,
                offset=offset,
                length=len(block),
                num_records=len(self._pending),
            )
        )
        self._pending = []
        self._pending_size = 0

    def finish(self) -> SSTable:
        """Flush remaining records, write metadata + index, return the table."""
        if self._finished:
            raise ReproError("builder already finished")
        self._flush_block()
        if not self._handles:
            self._fs.delete(self._file.name)
            raise ReproError("cannot finish an empty SSTable")
        self._finished = True
        bloom = BloomFilter.for_keys(self._keys, self._bits_per_key)
        meta_size = bloom.size_bytes + sum(h.index_entry_size() for h in self._handles)
        self._file.append(b"\x00" * meta_size, self._write_kind, sequential=True)
        return SSTable(self._table_id, self._file, self._handles, bloom, self._num_records)

    def abandon(self) -> None:
        """Discard the partially built table and free its space."""
        if not self._finished:
            self._fs.delete(self._file.name)
            self._finished = True


def build_sstable(
    fs: SimFilesystem,
    table_id: int,
    records: Iterator[Record] | list[Record],
    block_size: int = DEFAULT_BLOCK_SIZE,
    write_kind: TrafficKind = TrafficKind.FLUSH,
) -> SSTable:
    """Convenience wrapper: build a table from an already-sorted record stream."""
    builder = SSTableBuilder(fs, table_id, block_size, write_kind)
    for rec in records:
        builder.add(rec)
    return builder.finish()

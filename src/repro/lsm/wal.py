"""Write-ahead log with group commit.

The WAL sits on whichever device the engine's configuration assigns (NVMe in
the baselines, the performance tier by construction in HyperDB).  Writes are
staged and committed in groups: one ``append`` I/O per batch, which is how
RocksDB keeps write latency low (§4.2's discussion of group commit).

Crash tolerance: a crash can tear the last group commit, leaving a partial
record at the tail of the log.  :meth:`WriteAheadLog.replay` recovers every
complete record before the tear and reports the truncation instead of
raising — a partially-synced log is a recoverable log.
"""

from __future__ import annotations

import zlib

from repro.common.records import Record
from repro.lsm.blocks import decode_prefix, encode_record
from repro.simssd.fs import SimFilesystem, SimFile
from repro.simssd.traffic import TrafficKind


class ReplayResult(list):
    """The records recovered by :meth:`WriteAheadLog.replay`.

    A plain ``list[Record]`` (oldest first) carrying recovery metadata:

    * ``truncated`` — True when a torn/corrupt tail was dropped;
    * ``valid_bytes`` — length of the clean prefix that decoded;
    * ``dropped_bytes`` — bytes discarded past the tear (0 when clean).
    """

    def __init__(
        self,
        records: list[Record],
        truncated: bool = False,
        valid_bytes: int = 0,
        dropped_bytes: int = 0,
    ) -> None:
        super().__init__(records)
        self.truncated = truncated
        self.valid_bytes = valid_bytes
        self.dropped_bytes = dropped_bytes


class WriteAheadLog:
    """An append-only log of records with batched (group) commits."""

    def __init__(
        self,
        fs: SimFilesystem,
        name: str = "wal",
        group_size: int = 32,
        reuse_existing: bool = False,
    ) -> None:
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self._fs = fs
        self._name = name
        if reuse_existing and fs.exists(name):
            self._file: SimFile = fs.open(name)
        else:
            self._file = fs.create(name)
        self._group_size = group_size
        self._pending: list[bytes] = []
        self._synced_records = 0
        #: Cumulative records ever synced, across :meth:`reset` rotations.
        #: The crash harness uses this as the durability watermark: the
        #: first ``total_synced_records`` writes are guaranteed recoverable.
        self.total_synced_records = 0
        #: Sidecar integrity metadata: ``(offset, length, crc32)`` per
        #: synced group.  The on-media format is unchanged (WAL records
        #: carry no per-record checksum), but the live process remembers
        #: what it wrote, so the scrubber (:meth:`verify`) can detect
        #: latent media corruption that replay's structural checks — which
        #: only catch torn/implausible records — would miss.  Lost across
        #: a restart (like any in-memory state); recovery then relies on
        #: :func:`repro.lsm.blocks.decode_prefix` alone.
        self._group_sums: list[tuple[int, int, int]] = []

    @property
    def size_bytes(self) -> int:
        return self._file.size

    @property
    def synced_records(self) -> int:
        return self._synced_records

    def append(self, rec: Record) -> float:
        """Stage a record; commits the group when it reaches ``group_size``.

        Returns the service time charged for this call (zero unless this
        append triggered a group commit).
        """
        self._pending.append(encode_record(rec))
        if len(self._pending) >= self._group_size:
            return self.sync()
        return 0.0

    def sync(self) -> float:
        """Force-commit any staged records.  Returns the service time.

        If the append I/O fails (transient error beyond retries, or power
        loss), no staged record is counted as synced: the callers' writes
        were never acknowledged as durable.
        """
        if not self._pending:
            return 0.0
        payload = b"".join(self._pending)
        count = len(self._pending)
        # Staged records are cleared only after the append succeeds, so a
        # failed group commit leaves them staged for the next sync attempt.
        offset, service = self._file.append(
            payload, TrafficKind.WAL, sequential=True
        )
        self._pending.clear()
        self._synced_records += count
        self.total_synced_records += count
        self._group_sums.append((offset, len(payload), zlib.crc32(payload)))
        return service

    def replay(self) -> ReplayResult:
        """Decode every recoverable record, oldest first (crash recovery).

        Tolerates a torn tail: recovery stops at the first truncated or
        structurally corrupt record and returns the clean prefix, with
        ``truncated`` set so callers can log/inspect the data loss.
        """
        data, _ = self._file.read(
            0, self._file.size, TrafficKind.FOREGROUND, sequential=True
        )
        records, consumed, truncated = decode_prefix(data)
        return ReplayResult(
            records,
            truncated=truncated,
            valid_bytes=consumed,
            dropped_bytes=len(data) - consumed,
        )

    def verify(self, kind: TrafficKind = TrafficKind.FOREGROUND) -> tuple[int, int]:
        """Check every synced group against its sidecar checksum.

        One charged sequential read of the whole log, then pure CRC math.
        Returns ``(groups_checked, corrupt_groups)``.  Groups synced before
        a restart have no sidecar entry and are skipped (structural replay
        checks are the only net under them).
        """
        if not self._group_sums:
            return 0, 0
        data, _ = self._file.read(0, self._file.size, kind, sequential=True)
        corrupt = 0
        for offset, length, crc in self._group_sums:
            if zlib.crc32(data[offset : offset + length]) != crc:
                corrupt += 1
        return len(self._group_sums), corrupt

    def note_recovered(self, count: int) -> None:
        """Reset the synced counters after a tolerant replay re-adopted the
        log's clean prefix (``count`` records)."""
        self._synced_records = count
        self.total_synced_records = count

    def truncate_torn_tail(self, valid_bytes: int) -> None:
        """Cut the log back to its clean prefix after a tolerant replay,
        so post-recovery appends are not shadowed by the old tear."""
        self._file.truncate(valid_bytes)
        self._group_sums = [
            g for g in self._group_sums if g[0] + g[1] <= valid_bytes
        ]

    def reset(self) -> None:
        """Truncate the log after a successful memtable flush."""
        self._pending.clear()
        self._fs.delete(self._name)
        self._file = self._fs.create(self._name)
        self._synced_records = 0
        self._group_sums = []

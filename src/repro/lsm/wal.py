"""Write-ahead log with group commit.

The WAL sits on whichever device the engine's configuration assigns (NVMe in
the baselines, the performance tier by construction in HyperDB).  Writes are
staged and committed in groups: one ``append`` I/O per batch, which is how
RocksDB keeps write latency low (§4.2's discussion of group commit).
"""

from __future__ import annotations

from repro.common.records import Record
from repro.lsm.blocks import decode_records, encode_record
from repro.simssd.fs import SimFilesystem, SimFile
from repro.simssd.traffic import TrafficKind


class WriteAheadLog:
    """An append-only log of records with batched (group) commits."""

    def __init__(
        self, fs: SimFilesystem, name: str = "wal", group_size: int = 32
    ) -> None:
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self._fs = fs
        self._name = name
        self._file: SimFile = fs.create(name)
        self._group_size = group_size
        self._pending: list[bytes] = []
        self._synced_records = 0

    @property
    def size_bytes(self) -> int:
        return self._file.size

    @property
    def synced_records(self) -> int:
        return self._synced_records

    def append(self, rec: Record) -> float:
        """Stage a record; commits the group when it reaches ``group_size``.

        Returns the service time charged for this call (zero unless this
        append triggered a group commit).
        """
        self._pending.append(encode_record(rec))
        if len(self._pending) >= self._group_size:
            return self.sync()
        return 0.0

    def sync(self) -> float:
        """Force-commit any staged records.  Returns the service time."""
        if not self._pending:
            return 0.0
        payload = b"".join(self._pending)
        count = len(self._pending)
        self._pending.clear()
        _, service = self._file.append(payload, TrafficKind.WAL, sequential=True)
        self._synced_records += count
        return service

    def replay(self) -> list[Record]:
        """Decode every synced record, oldest first (crash recovery)."""
        data, _ = self._file.read(0, self._file.size, TrafficKind.FOREGROUND, sequential=True)
        return list(decode_records(data))

    def reset(self) -> None:
        """Truncate the log after a successful memtable flush."""
        self._pending.clear()
        self._fs.delete(self._name)
        self._file = self._fs.create(self._name)
        self._synced_records = 0

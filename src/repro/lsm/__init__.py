"""LSM-tree storage engine.

This package implements the classic leveled LSM-tree used by the RocksDB-like
baselines and — with the semi-SSTable extensions in :mod:`repro.lsm.semi` —
the capacity tier of HyperDB.

Layout of responsibilities:

* :mod:`repro.lsm.blocks` — on-media record/block encoding with checksums.
* :mod:`repro.lsm.memtable` — skip-list memtable with size accounting.
* :mod:`repro.lsm.wal` — write-ahead log with group commit.
* :mod:`repro.lsm.sstable` — immutable sorted tables (data blocks, bloom
  metadata, index).
* :mod:`repro.lsm.version` — the level structure and overlap queries.
* :mod:`repro.lsm.compaction` — leveled compaction with per-level I/O stats.
* :mod:`repro.lsm.lsmtree` — the engine tying everything together, with
  RocksDB-style ``db_paths`` tier placement.
"""

from repro.lsm.memtable import MemTable
from repro.lsm.wal import WriteAheadLog
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.version import Version, LevelState
from repro.lsm.compaction import LeveledCompactor
from repro.lsm.lsmtree import LSMTree, LSMOptions

__all__ = [
    "MemTable",
    "WriteAheadLog",
    "SSTable",
    "SSTableBuilder",
    "Version",
    "LevelState",
    "LeveledCompactor",
    "LSMTree",
    "LSMOptions",
]

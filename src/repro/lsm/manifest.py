"""Durable version metadata for :class:`repro.lsm.lsmtree.LSMTree`.

An LSM-tree's level structure (which tables exist, at which level, with
which block handles and bloom filters) normally lives only in memory: after
a crash the SSTable *bytes* survive on media but nothing says how to read
them.  RocksDB solves this with a MANIFEST journal; this module is the
reproduction's equivalent, scaled to the simulation.

A manifest is a full snapshot of the version, CRC32-protected, written as a
rotated file ``manifest.<seq>``:

1. the new snapshot is appended under the *next* sequence number;
2. only then is the previous manifest deleted.

A crash at any point leaves at least one intact manifest on media: a torn
new snapshot fails its CRC and recovery falls back to the previous one,
whose referenced table files still exist because compaction deletes input
files only *after* the manifest that drops them is durable.

Manifest writes are real, charged I/O.  They are optional
(``LSMOptions.manifest_enabled``) because durable metadata is overhead the
paper's benchmark configuration does not model — the crash-consistency
harness and recovery tests enable them.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.common.bloom import BloomFilter
from repro.common.errors import CorruptionError
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind

MANIFEST_PREFIX = "manifest."

_MAGIC = 0x4D414E49  # "MANI"
_FORMAT_VERSION = 1
_HEADER = struct.Struct(">IHIQ")      # magic, format, table_count, table_seq
_TABLE = struct.Struct(">iQQHII")     # level, id, nrecs, name_len, bloom_len, handle_count
_HANDLE = struct.Struct(">QIIHH")     # offset, length, num_records, fklen, lklen
_CRC = struct.Struct(">I")


@dataclass
class HandleMeta:
    """One serialized block handle."""

    first_key: bytes
    last_key: bytes
    offset: int
    length: int
    num_records: int


@dataclass
class TableMeta:
    """One serialized table: enough to rebuild an :class:`SSTable` object."""

    level: int
    table_id: int
    num_records: int
    file_name: str
    bloom: bytes
    handles: list[HandleMeta] = field(default_factory=list)


def encode_manifest(tables: list[TableMeta], table_seq: int) -> bytes:
    """Serialize a version snapshot with a CRC32 trailer."""
    out = [_HEADER.pack(_MAGIC, _FORMAT_VERSION, len(tables), table_seq)]
    for t in tables:
        name = t.file_name.encode("utf-8")
        out.append(
            _TABLE.pack(
                t.level, t.table_id, t.num_records, len(name), len(t.bloom),
                len(t.handles),
            )
        )
        out.append(name)
        out.append(t.bloom)
        for h in t.handles:
            out.append(
                _HANDLE.pack(
                    h.offset, h.length, h.num_records,
                    len(h.first_key), len(h.last_key),
                )
            )
            out.append(h.first_key)
            out.append(h.last_key)
    payload = b"".join(out)
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_manifest(data: bytes) -> tuple[list[TableMeta], int]:
    """Parse and verify a manifest; returns ``(tables, table_seq)``.

    Raises :class:`CorruptionError` on a bad magic, CRC mismatch, or any
    structural truncation — the caller falls back to an older manifest.
    """
    if len(data) < _HEADER.size + _CRC.size:
        raise CorruptionError("manifest shorter than header + CRC")
    payload, footer = data[: -_CRC.size], data[-_CRC.size :]
    (expected,) = _CRC.unpack(footer)
    actual = zlib.crc32(payload)
    if actual != expected:
        raise CorruptionError(
            f"manifest CRC mismatch: stored={expected:#x} computed={actual:#x}"
        )
    magic, fmt, table_count, table_seq = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise CorruptionError(f"bad manifest magic {magic:#x}")
    if fmt != _FORMAT_VERSION:
        raise CorruptionError(f"unsupported manifest format {fmt}")
    pos = _HEADER.size
    try:
        tables: list[TableMeta] = []
        for _ in range(table_count):
            level, tid, nrecs, name_len, bloom_len, handle_count = (
                _TABLE.unpack_from(payload, pos)
            )
            pos += _TABLE.size
            name = payload[pos : pos + name_len].decode("utf-8")
            pos += name_len
            bloom = payload[pos : pos + bloom_len]
            pos += bloom_len
            handles: list[HandleMeta] = []
            for _ in range(handle_count):
                offset, length, hrecs, fklen, lklen = _HANDLE.unpack_from(
                    payload, pos
                )
                pos += _HANDLE.size
                fk = payload[pos : pos + fklen]
                pos += fklen
                lk = payload[pos : pos + lklen]
                pos += lklen
                handles.append(HandleMeta(fk, lk, offset, length, hrecs))
            tables.append(TableMeta(level, tid, nrecs, name, bytes(bloom), handles))
    except struct.error as e:
        raise CorruptionError(f"truncated manifest: {e}") from e
    return tables, table_seq


class ManifestStore:
    """Rotated manifest files on one filesystem (the tree's first path)."""

    def __init__(self, fs: SimFilesystem) -> None:
        self._fs = fs
        self._seq = self._highest_existing_seq()

    def _manifest_names(self) -> list[tuple[int, str]]:
        out = []
        for f in self._fs.files():
            if f.name.startswith(MANIFEST_PREFIX):
                try:
                    out.append((int(f.name[len(MANIFEST_PREFIX) :]), f.name))
                except ValueError:
                    continue
        out.sort(reverse=True)
        return out

    def _highest_existing_seq(self) -> int:
        names = self._manifest_names()
        return names[0][0] if names else 0

    # -------------------------------------------------------------- write

    def write(
        self,
        tables: list[TableMeta],
        table_seq: int,
        kind: TrafficKind = TrafficKind.FLUSH,
    ) -> float:
        """Persist a snapshot (rotate-then-delete).  Returns service time."""
        payload = encode_manifest(tables, table_seq)
        old = [name for _, name in self._manifest_names()]
        self._seq += 1
        f = self._fs.create(f"{MANIFEST_PREFIX}{self._seq:08d}")
        _, service = f.append(payload, kind, sequential=True)
        # The new snapshot is durable; retire every older one.
        for name in old:
            self._fs.delete(name)
        return service

    # --------------------------------------------------------------- load

    def load_latest(self) -> tuple[list[TableMeta] | None, int, list[str]]:
        """Load the newest intact manifest.

        Returns ``(tables, table_seq, notes)`` where ``tables`` is None when
        no manifest exists at all.  Torn/corrupt newer manifests are skipped
        (and noted) in favor of older intact ones.
        """
        notes: list[str] = []
        for seq, name in self._manifest_names():
            f = self._fs.open(name)
            data, _ = f.read(0, f.size, TrafficKind.FOREGROUND, sequential=True)
            try:
                tables, table_seq = decode_manifest(data)
            except CorruptionError as e:
                notes.append(f"skipped corrupt manifest {name!r}: {e}")
                continue
            self._seq = seq
            return tables, table_seq, notes
        return None, 0, notes


def bloom_from_meta(meta: TableMeta) -> BloomFilter:
    """Rebuild a table's bloom filter from its serialized form."""
    return BloomFilter.from_bytes(meta.bloom)

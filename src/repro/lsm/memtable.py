"""The in-memory write buffer.

A :class:`MemTable` pairs a hash map — O(1) point lookups, replacement,
and size accounting — with a skip list that orders keys only when order
is observable.  Puts append new keys to a pending backlog; the first
ordered access (a flush or scan calling :meth:`records`,
:meth:`first_key`, :meth:`last_key`) merges the backlog into the skip
list in one sorted sweep.  The paper's description of the MemTable ("a
skip-list and sorted by keys") holds at every ordered access; the hot
write path just defers the ordering work until something reads it.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.records import Record
from repro.common.skiplist import SkipList


class MemTable:
    """Sorted in-memory buffer of the most recent writes."""

    def __init__(self, capacity_bytes: int, seed: int = 0) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._map: dict[bytes, Record] = {}
        self._order = SkipList(seed=seed)
        #: Keys inserted since the last ordered access, not yet in the
        #: skip list.  Each key appears at most once (replacements only
        #: touch the map), so one sort merges the whole backlog.
        self._pending: list[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return len(self._map)

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity_bytes

    def put(self, rec: Record) -> None:
        """Insert or replace; tombstones are stored like any record."""
        old = self._map.get(rec.key)
        if old is not None:
            self._size -= old.encoded_size
        else:
            self._pending.append(rec.key)
        self._map[rec.key] = rec
        self._size += rec.encoded_size

    def get(self, key: bytes) -> Optional[Record]:
        """The newest record for ``key``, tombstones included, else None."""
        return self._map.get(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._map

    def _seal_pending(self) -> None:
        pending = self._pending
        if pending:
            insert = self._order.insert
            for key in sorted(pending):
                insert(key, None)
            pending.clear()

    def records(self, start: Optional[bytes] = None) -> Iterator[Record]:
        """Key-ordered iteration of all live records (tombstones included)."""
        self._seal_pending()
        rec_for = self._map
        for key, _ in self._order.items(start=start):
            yield rec_for[key]

    def first_key(self) -> Optional[bytes]:
        self._seal_pending()
        return self._order.first_key()

    def last_key(self) -> Optional[bytes]:
        self._seal_pending()
        return self._order.last_key()

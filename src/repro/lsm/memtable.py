"""The in-memory write buffer.

A :class:`MemTable` is a skip list of :class:`Record` keyed by the record
key, with running size accounting so the engine knows when to rotate it to
immutable and flush.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.records import Record
from repro.common.skiplist import SkipList


class MemTable:
    """Sorted in-memory buffer of the most recent writes."""

    def __init__(self, capacity_bytes: int, seed: int = 0) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries = SkipList(seed=seed)
        self._size = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity_bytes

    def put(self, rec: Record) -> None:
        """Insert or replace; tombstones are stored like any record."""
        old: Optional[Record] = self._entries.get(rec.key)
        if old is not None:
            self._size -= old.encoded_size
        self._entries.insert(rec.key, rec)
        self._size += rec.encoded_size

    def get(self, key: bytes) -> Optional[Record]:
        """The newest record for ``key``, tombstones included, else None."""
        return self._entries.get(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def records(self, start: Optional[bytes] = None) -> Iterator[Record]:
        """Key-ordered iteration of all live records (tombstones included)."""
        for _, rec in self._entries.items(start=start):
            yield rec

    def first_key(self) -> Optional[bytes]:
        return self._entries.first_key()

    def last_key(self) -> Optional[bytes]:
        return self._entries.last_key()

"""On-media encoding of records and data blocks.

Format of one record::

    [seqno: 8B big-endian][flags: 1B][key_len: 2B][value_len: 4B][key][value]

Flags bit 0 marks a tombstone (deletions are out-of-band of the value).

A data block is a concatenation of records in key order followed by a 4-byte
CRC32 checksum.  Decoding verifies the checksum and raises
:class:`CorruptionError` on mismatch, which the failure-injection tests rely
on.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Iterator

from repro.common.errors import CorruptionError
from repro.common.records import Record

_HEADER = struct.Struct(">QBHI")
CHECKSUM_SIZE = 4
_FLAG_TOMBSTONE = 0x01


def encode_record(rec: Record) -> bytes:
    """Serialize one record: header (seqno, flags, sizes) + key + value."""
    flags = _FLAG_TOMBSTONE if rec.deleted else 0
    return (
        _HEADER.pack(rec.seqno, flags, len(rec.key), len(rec.value))
        + rec.key
        + rec.value
    )


def decode_records(data: bytes) -> Iterator[Record]:
    """Decode back-to-back records from ``data`` (no checksum expected)."""
    pos = 0
    end = len(data)
    while pos < end:
        if pos + _HEADER.size > end:
            raise CorruptionError(f"truncated record header at offset {pos}")
        seqno, flags, klen, vlen = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        if pos + klen + vlen > end:
            raise CorruptionError(f"truncated record body at offset {pos}")
        key = data[pos : pos + klen]
        pos += klen
        value = data[pos : pos + vlen]
        pos += vlen
        yield Record(key, value, seqno, deleted=bool(flags & _FLAG_TOMBSTONE))


# Content-keyed memo for single-record decodes (the NVMe slot read
# path).  Records are never mutated after construction anywhere in the
# tree, so handing repeat readers of the same payload one shared Record
# is safe; a corrupted payload can't collide with a memoized key.
_DECODE_ONE_MEMO: dict[tuple[bytes, int], Record] = {}
_DECODE_ONE_MEMO_MAX = 8192


def decode_one(data: bytes, offset: int = 0) -> Record:
    """Decode the single record starting at ``offset``.

    Equivalent to the first item of :func:`decode_records` but without the
    generator machinery; the NVMe slot read path decodes exactly one record
    per object lookup, so this is a hot path.
    """
    memo_key = (data, offset)
    rec = _DECODE_ONE_MEMO.get(memo_key)
    if rec is not None:
        return rec
    end = len(data)
    if offset + _HEADER.size > end:
        raise CorruptionError(f"truncated record header at offset {offset}")
    seqno, flags, klen, vlen = _HEADER.unpack_from(data, offset)
    body = offset + _HEADER.size
    if body + klen + vlen > end:
        raise CorruptionError(f"truncated record body at offset {body}")
    rec = Record(
        data[body : body + klen],
        data[body + klen : body + klen + vlen],
        seqno,
        deleted=bool(flags & _FLAG_TOMBSTONE),
    )
    if len(_DECODE_ONE_MEMO) >= _DECODE_ONE_MEMO_MAX:
        _DECODE_ONE_MEMO.clear()
    _DECODE_ONE_MEMO[memo_key] = rec
    return rec


def decode_prefix(data: bytes) -> tuple[list[Record], int, bool]:
    """Decode the longest clean prefix of back-to-back records.

    Unlike :func:`decode_records`, a truncated or structurally implausible
    record does not raise: decoding stops at the first bad record and the
    prefix decoded so far is returned.  This is what a torn WAL tail looks
    like after a crash — every record before the tear is intact, the tear
    itself is garbage.

    Returns ``(records, bytes_consumed, truncated)`` where ``truncated`` is
    True when trailing bytes past ``bytes_consumed`` were dropped.
    """
    records: list[Record] = []
    pos = 0
    end = len(data)
    while pos < end:
        if pos + _HEADER.size > end:
            return records, pos, True
        seqno, flags, klen, vlen = _HEADER.unpack_from(data, pos)
        body = pos + _HEADER.size
        if flags & ~_FLAG_TOMBSTONE or body + klen + vlen > end:
            return records, pos, True
        key = data[body : body + klen]
        value = data[body + klen : body + klen + vlen]
        records.append(
            Record(key, value, seqno, deleted=bool(flags & _FLAG_TOMBSTONE))
        )
        pos = body + klen + vlen
    return records, pos, False


def encode_block(records: Iterable[Record]) -> bytes:
    """Encode records into a checksummed data block."""
    payload = b"".join(encode_record(r) for r in records)
    return payload + struct.pack(">I", zlib.crc32(payload))


# Content-keyed memo of decoded blocks.  Decoding is pure, and the block
# cache already hands the same record list to every reader, so sharing
# one list per distinct block payload is safe.  The memo only pays off
# when a block is re-read (and re-decoded) after LRU eviction; a
# corrupted payload never matches a memoized key, so checksum failures
# still surface.  Bounded by wholesale clearing -- entries are cheap to
# rebuild.
_DECODE_MEMO: dict[bytes, list[Record]] = {}
_DECODE_MEMO_MAX = 1024


def decode_block(block: bytes) -> list[Record]:
    """Decode a checksummed data block, verifying integrity."""
    cached = _DECODE_MEMO.get(block)
    if cached is not None:
        return cached
    if len(block) < CHECKSUM_SIZE:
        raise CorruptionError("block shorter than its checksum")
    payload, footer = block[:-CHECKSUM_SIZE], block[-CHECKSUM_SIZE:]
    (expected,) = struct.unpack(">I", footer)
    actual = zlib.crc32(payload)
    if actual != expected:
        raise CorruptionError(
            f"block checksum mismatch: stored={expected:#x} computed={actual:#x}"
        )
    # Inline loop rather than list(decode_records(...)): block decodes run
    # on every table read and the generator resumption overhead is
    # measurable there.
    records: list[Record] = []
    append = records.append
    unpack_from = _HEADER.unpack_from
    hsize = _HEADER.size
    pos = 0
    end = len(payload)
    while pos < end:
        if pos + hsize > end:
            raise CorruptionError(f"truncated record header at offset {pos}")
        seqno, flags, klen, vlen = unpack_from(payload, pos)
        body = pos + hsize
        pos = body + klen + vlen
        if pos > end:
            raise CorruptionError(f"truncated record body at offset {body}")
        append(
            Record(
                payload[body : body + klen],
                payload[body + klen : pos],
                seqno,
                deleted=bool(flags & _FLAG_TOMBSTONE),
            )
        )
    if len(_DECODE_MEMO) >= _DECODE_MEMO_MAX:
        _DECODE_MEMO.clear()
    _DECODE_MEMO[block] = records
    return records


def record_encoded_size(rec: Record) -> int:
    """Size of one encoded record (excludes the per-block checksum)."""
    return _HEADER.size + len(rec.key) + len(rec.value)

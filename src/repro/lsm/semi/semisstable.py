"""The semi-sorted string table (paper §3.2, Fig. 5).

Layout of one semi-SSTable:

* **data blocks** — records sorted *within* a block; blocks appended over the
  table's lifetime need not be ordered relative to each other;
* **metadata blocks** — a bloom filter per table for fast negative lookups;
* **index blocks** — per-block key ranges, offsets, and validity, plus the
  set of all *valid* keys in the table (the paper prefix-compresses these;
  we keep them in an in-memory map and charge their serialized size).

Merging new objects (:meth:`SemiSSTable.merge_append`) rewrites only the
blocks whose keys are touched: their surviving records are merged with the
incoming ones into fresh blocks appended at the file's end, the old blocks
are marked dead, and clean blocks are untouched.  Dead blocks make the file
larger than its live payload — :attr:`SemiSSTable.dirty_ratio` and
:meth:`SemiSSTable.full_compact` manage that space debt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.common.bloom import BloomFilter
from repro.common.errors import CorruptionError, ReproError
from repro.common.keys import KeyRange, ranges_overlap
from repro.common.records import Record
from repro.lsm.blocks import decode_block, encode_block, record_encoded_size
from repro.simssd.fs import SimFile, SimFilesystem
from repro.simssd.traffic import TrafficKind


@dataclass(slots=True)
class SemiBlock:
    """Index metadata for one data block of a semi-SSTable."""

    block_id: int
    first_key: bytes
    last_key: bytes
    offset: int
    length: int
    num_records: int
    valid_count: int

    @property
    def is_dead(self) -> bool:
        return self.valid_count == 0

    @property
    def is_dirty(self) -> bool:
        return 0 < self.valid_count < self.num_records

    def overlaps(self, lo: bytes, hi: Optional[bytes]) -> bool:
        return ranges_overlap(self.first_key, self.last_key + b"\x00", lo, hi)


class SemiSSTable:
    """A mutable-by-append semi-sorted table owning one declared key range.

    Parameters
    ----------
    table_id:
        Unique id within the tree.
    fs:
        Filesystem (device) the table file lives on.
    declared_range:
        The key segment this table is responsible for (§3.2: files at each
        level own fixed, non-overlapping key segments so deep compactions
        stop cascading).
    block_size:
        Target encoded size of one data block.
    """

    def __init__(
        self,
        table_id: int,
        fs: SimFilesystem,
        declared_range: KeyRange,
        block_size: int = 4096,
        bits_per_key: int = 10,
    ) -> None:
        self.table_id = table_id
        self.fs = fs
        self.declared_range = declared_range
        self.block_size = block_size
        self.bits_per_key = bits_per_key
        self.file: SimFile = fs.create(f"semi_{table_id:08d}")
        self.blocks: list[SemiBlock] = []
        # key -> (block_id, seqno, record_size); the table's "index block".
        self._key_map: dict[bytes, tuple[int, int, int]] = {}
        self._blocks_by_id: dict[int, SemiBlock] = {}
        self._next_block_id = 0
        self._bloom = BloomFilter(4096, bits_per_key)
        self._valid_bytes = 0
        #: Bumped by full_compact so cached block decodes of the previous
        #: file generation (same name, same offsets) cannot alias.
        self._generation = 0
        #: Engine hook called as ``hook(table, block, superseded)`` when a
        #: *background* read (compaction victim scan, merge survivor read,
        #: ride-along extraction) finds a block whose checksum fails.  The
        #: hook triages the block's records against redundant copies before
        #: the block is killed; ``superseded`` names keys the caller is
        #: about to overwrite anyway.  ``None`` (the default) keeps the
        #: historical behavior: the :class:`CorruptionError` propagates.
        self.on_corrupt_block = None

    # ----------------------------------------------------------- metadata

    @property
    def num_valid_records(self) -> int:
        return len(self._key_map)

    @property
    def valid_bytes(self) -> int:
        """Live payload bytes (what a full compaction would retain)."""
        return self._valid_bytes

    @property
    def file_bytes(self) -> int:
        return self.file.size

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_dead_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.is_dead)

    @property
    def dirty_ratio(self) -> float:
        """Fraction of blocks that are dead or dirty (stale data on media)."""
        if not self.blocks:
            return 0.0
        stale = sum(1 for b in self.blocks if b.is_dead or b.is_dirty)
        return stale / len(self.blocks)

    @property
    def dead_bytes(self) -> int:
        """File bytes in blocks that no longer back any valid record."""
        live = sum(b.length for b in self.blocks if not b.is_dead)
        return max(0, self.file.size - live)

    def _index_size_estimate(self) -> int:
        # Serialized metadata: a bloom sized to the live keys (10 bits each)
        # plus one index entry per block.  The in-memory filter may be
        # over-provisioned; media pays only for what a real table would store.
        bloom_bytes = (self.num_valid_records * self.bits_per_key + 7) // 8
        return bloom_bytes + 24 * len(self.blocks)

    def index_read_size(self) -> int:
        """Bytes a worker reads to fetch this table's keys from index blocks
        (Algorithm 1 reads only index blocks, never data blocks)."""
        key_bytes = sum(len(k) for k in self._key_map)
        # Prefix compression on sorted fixed-width keys: ~half the raw size.
        return self._index_size_estimate() + key_bytes // 2

    def contains_key(self, key: bytes) -> bool:
        """Index-only membership test (no data-block I/O)."""
        return key in self._key_map

    def valid_keys(self) -> list[bytes]:
        return sorted(self._key_map)

    def keys_from(self, start: bytes, limit: int) -> list[bytes]:
        """Up to ``limit`` sorted valid keys >= ``start`` — an index-only
        operation (the key list lives in the index blocks)."""
        return sorted(k for k in self._key_map if k >= start)[:limit]

    def key_seqno(self, key: bytes) -> Optional[int]:
        """Sequence number of the table's valid copy of ``key``, if any."""
        entry = self._key_map.get(key)
        return entry[1] if entry else None

    def overlapping_blocks(self, lo: bytes, hi: Optional[bytes]) -> list[SemiBlock]:
        """Live blocks whose key range intersects ``[lo, hi)``."""
        return [b for b in self.blocks if not b.is_dead and b.overlaps(lo, hi)]

    # -------------------------------------------------------------- reads

    def get(
        self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND, cache=None
    ) -> tuple[Optional[Record], float]:
        """Point lookup.  Returns ``(record_or_none, service_time)``."""
        if key not in self._bloom:
            return None, 0.0
        entry = self._key_map.get(key)
        if entry is None:
            return None, 0.0
        block = self._blocks_by_id[entry[0]]
        records, service = self._read_block(block, kind, cache)
        for rec in records:
            if rec.key == key:
                return rec, service
        raise ReproError(
            f"index says key {key!r} is in block {block.block_id} but it is not"
        )

    def _read_block(
        self, block: SemiBlock, kind: TrafficKind, cache=None
    ) -> tuple[list[Record], float]:
        cache_key = ("semiblk", self.file.name, self._generation, block.offset)
        if cache is not None:
            cached = cache.get(cache_key)
            if cached is not None:
                return cached, 0.0
        raw, service = self.file.read(block.offset, block.length, kind)
        records = decode_block(raw)
        if cache is not None:
            cache.put(cache_key, records, charge=block.length)
        return records, service

    def read_blocks_bulk(
        self,
        blocks: list[SemiBlock],
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache=None,
    ) -> tuple[dict[int, list[Record]], float]:
        """Prefetch many blocks at once (the paper's future-work scan
        optimization): blocks are sorted by file offset and contiguous runs
        are fetched as single sequential I/Os, paying one command setup per
        run instead of one per block."""
        out: dict[int, list[Record]] = {}
        pending: list[SemiBlock] = []
        service = 0.0
        for block in sorted(blocks, key=lambda b: b.offset):
            cache_key = ("semiblk", self.file.name, self._generation, block.offset)
            cached = cache.get(cache_key) if cache is not None else None
            if cached is not None:
                out[block.block_id] = cached
                continue
            pending.append(block)
        # Coalesce adjacent blocks into sequential runs.
        run: list[SemiBlock] = []
        runs: list[list[SemiBlock]] = []
        for block in pending:
            if run and block.offset != run[-1].offset + run[-1].length:
                runs.append(run)
                run = []
            run.append(block)
        if run:
            runs.append(run)
        for run in runs:
            start = run[0].offset
            length = run[-1].offset + run[-1].length - start
            raw, s = self.file.read(start, length, kind, sequential=True)
            service += s
            for block in run:
                chunk = raw[block.offset - start : block.offset - start + block.length]
                records = decode_block(chunk)
                out[block.block_id] = records
                if cache is not None:
                    cache.put(
                        ("semiblk", self.file.name, self._generation, block.offset),
                        records,
                        charge=block.length,
                    )
        return out, service

    def iter_valid_records(
        self, kind: TrafficKind = TrafficKind.COMPACTION, cache=None
    ) -> Iterator[Record]:
        """All valid records in key order (reads every live block once)."""
        out: list[Record] = []
        for block in self.blocks:
            if block.is_dead:
                continue
            try:
                records, _ = self._read_block(block, kind, cache)
            except CorruptionError:
                if self.on_corrupt_block is None:
                    raise
                self.on_corrupt_block(self, block, frozenset())
                self._kill_block(block)
                continue
            for rec in records:
                entry = self._key_map.get(rec.key)
                if entry is not None and entry[0] == block.block_id:
                    out.append(rec)
        out.sort(key=lambda r: r.key)
        return iter(out)

    def iter_from(
        self, start: bytes, kind: TrafficKind = TrafficKind.FOREGROUND, cache=None
    ) -> Iterator[Record]:
        """Ordered iteration of valid records with key >= ``start``.

        Because blocks are unordered between themselves, a scan touches every
        live block overlapping the requested span — this is the scan penalty
        the paper acknowledges for YCSB-E (§4.2).
        """
        for rec in self.iter_valid_records(kind, cache):
            if rec.key >= start:
                yield rec

    # ------------------------------------------------------------- writes

    def merge_append(
        self,
        records: list[Record],
        kind: TrafficKind = TrafficKind.COMPACTION,
        invalidate_only: Optional[set[bytes]] = None,
    ) -> float:
        """Merge sorted ``records`` into the table at block granularity.

        Blocks containing keys being written are read, their surviving
        records merged with the incoming ones, and the result appended as
        fresh blocks; untouched blocks stay clean (paper Fig. 5).

        ``invalidate_only`` keys are removed from the index without writing a
        replacement (their newer version went to a deeper level).

        Returns the service time charged.
        """
        service = 0.0
        if invalidate_only:
            for key in invalidate_only:
                self._invalidate(key)
        if not records:
            service += self._rewrite_index(kind)
            return service
        for a, b in zip(records, records[1:]):
            if a.key >= b.key:
                raise ReproError("merge_append requires strictly sorted records")
        for rec in records:
            if not self.declared_range.contains(rec.key):
                raise ReproError(
                    f"record key {rec.key!r} outside declared range of table "
                    f"{self.table_id}"
                )

        incoming = {r.key: r for r in records}
        # Skip records older than what the table already holds.
        for key in list(incoming):
            entry = self._key_map.get(key)
            if entry is not None and entry[1] >= incoming[key].seqno:
                del incoming[key]
        if not incoming:
            service += self._rewrite_index(kind)
            return service

        # Find the blocks whose live records are displaced by the merge.
        touched: dict[int, SemiBlock] = {}
        for key in incoming:
            entry = self._key_map.get(key)
            if entry is not None:
                block = self._blocks_by_id[entry[0]]
                touched[block.block_id] = block

        survivors: list[Record] = []
        for block in touched.values():
            try:
                block_records, s = self._read_block(block, kind)
            except CorruptionError:
                if self.on_corrupt_block is None:
                    raise
                # Keys being overwritten by this merge are superseded either
                # way; the hook triages the block's *other* survivors.
                self.on_corrupt_block(self, block, frozenset(incoming))
                continue
            service += s
            for rec in block_records:
                entry = self._key_map.get(rec.key)
                if (
                    entry is not None
                    and entry[0] == block.block_id
                    and rec.key not in incoming
                ):
                    survivors.append(rec)

        merged = sorted(
            list(incoming.values()) + survivors, key=lambda r: r.key
        )

        # Retire the touched blocks entirely (their bytes become dead space).
        for block in touched.values():
            self._kill_block(block)

        service += self._append_blocks(merged, kind)
        service += self._rewrite_index(kind)
        return service

    def _append_blocks(self, merged: list[Record], kind: TrafficKind) -> float:
        """Columnar block append: chunk, encode, then pay for the whole
        batch with one grouped device charge (:meth:`SimFile.append_many`).

        The metadata installs run after the charges; they touch no device
        state, so the ledger — and the per-block service times summed by
        sequential accumulation — is bit-identical to per-block
        :meth:`_write_block` calls.
        """
        chunks: list[list[Record]] = []
        chunk: list[Record] = []
        chunk_size = 0
        for rec in merged:
            chunk.append(rec)
            chunk_size += record_encoded_size(rec)
            if chunk_size >= self.block_size:
                chunks.append(chunk)
                chunk, chunk_size = [], 0
        if chunk:
            chunks.append(chunk)
        if not chunks:
            return 0.0
        payloads = [encode_block(c) for c in chunks]
        offsets, services = self.file.append_many(payloads, kind, sequential=True)
        for c, payload, offset in zip(chunks, payloads, offsets):
            self._install_block(c, payload, offset)
        total = np.empty(len(services) + 1)
        total[0] = 0.0
        total[1:] = services
        np.add.accumulate(total, out=total)
        return float(total[-1])

    def _write_block(self, chunk: list[Record], kind: TrafficKind) -> float:
        payload = encode_block(chunk)
        offset, service = self.file.append(payload, kind, sequential=True)
        self._install_block(chunk, payload, offset)
        return service

    def _install_block(
        self, chunk: list[Record], payload: bytes, offset: int
    ) -> None:
        block = SemiBlock(
            block_id=self._next_block_id,
            first_key=chunk[0].key,
            last_key=chunk[-1].key,
            offset=offset,
            length=len(payload),
            num_records=len(chunk),
            valid_count=len(chunk),
        )
        self._next_block_id += 1
        self.blocks.append(block)
        self._blocks_by_id[block.block_id] = block
        key_map = self._key_map
        for rec in chunk:
            old = key_map.get(rec.key)
            if old is not None:
                self._retire_entry(rec.key, old)
            key_map[rec.key] = (block.block_id, rec.seqno, rec.encoded_size)
            self._valid_bytes += rec.encoded_size
        self._bloom.add_many([rec.key for rec in chunk])

    def _retire_entry(self, key: bytes, entry: tuple[int, int, int]) -> None:
        old_block = self._blocks_by_id[entry[0]]
        old_block.valid_count -= 1
        self._valid_bytes -= entry[2]

    def _invalidate(self, key: bytes) -> bool:
        entry = self._key_map.pop(key, None)
        if entry is None:
            return False
        self._retire_entry(key, entry)
        return True

    def extract_block_records(
        self, key: bytes, kind: TrafficKind = TrafficKind.COMPACTION
    ) -> tuple[list[Record], float]:
        """Remove and return all valid records of the block holding ``key``.

        Used by preemptive compaction's ride-along (paper Fig. 7): when a
        block's key is superseded by a record going to a deeper level, the
        block's surviving neighbours travel down with it instead of staying
        behind as dirty data.  The block is retired.
        """
        entry = self._key_map.get(key)
        if entry is None:
            return [], 0.0
        block = self._blocks_by_id[entry[0]]
        try:
            records, service = self._read_block(block, kind)
        except CorruptionError:
            if self.on_corrupt_block is None:
                raise
            # The triggering key is superseded by the record travelling
            # down; the hook triages the rest, then the block dies.
            self.on_corrupt_block(self, block, frozenset((key,)))
            self._kill_block(block)
            return [], 0.0
        survivors = [
            rec
            for rec in records
            if (e := self._key_map.get(rec.key)) is not None
            and e[0] == block.block_id
        ]
        self._kill_block(block)
        return survivors, service

    def _kill_block(self, block: SemiBlock) -> None:
        """Drop every index entry still pointing at ``block``."""
        if block.valid_count == 0:
            return
        for key in [k for k, e in self._key_map.items() if e[0] == block.block_id]:
            entry = self._key_map.pop(key)
            self._valid_bytes -= entry[2]
        block.valid_count = 0

    def _rewrite_index(self, kind: TrafficKind) -> float:
        """Charge writing fresh metadata + index blocks after a merge."""
        size = self._index_size_estimate()
        if size == 0:
            return 0.0
        # Index/metadata blocks are small relative to data blocks (§3.1) and
        # are charged as I/O without growing the data extent.
        return self.fs.device.write_bytes_io(size, kind, sequential=True)

    # ------------------------------------------------------ housekeeping

    def full_compact(self, kind: TrafficKind = TrafficKind.COMPACTION) -> float:
        """Rewrite the table clean: read live blocks, rewrite a fresh file.

        Reclaims dead bytes and restores block ordering, improving later
        sequential reads (paper: "regular full compaction can enhance the
        organization of data within the table").
        """
        live = list(self.iter_valid_records(kind))
        service = 0.0
        old_name = self.file.name
        self.fs.delete(old_name)
        self.file = self.fs.create(old_name)
        self._generation += 1
        self.blocks = []
        self._blocks_by_id = {}
        self._key_map = {}
        self._next_block_id = 0
        self._valid_bytes = 0
        self._bloom = BloomFilter(max(1024, len(live)), self.bits_per_key)
        if live:
            service += self._append_blocks(live, kind)
        service += self._rewrite_index(kind)
        return service

    def destroy(self) -> None:
        """Delete the backing file and drop all state."""
        if self.fs.exists(self.file.name):
            self.fs.delete(self.file.name)
        self.blocks = []
        self._blocks_by_id = {}
        self._key_map = {}
        self._valid_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SemiSSTable(id={self.table_id}, blocks={len(self.blocks)}, "
            f"valid={self.num_valid_records}, dirty={self.dirty_ratio:.2f})"
        )

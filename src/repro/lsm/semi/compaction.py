"""Preemptive block compaction (paper §3.4, Fig. 7, Algorithm 1).

When a level exceeds its target, a victim semi-SSTable is chosen and its
valid records are pushed down.  Unlike classic leveled compaction, each
record is routed to the **deepest** level within the compaction depth that
already holds an older version of its key — skipping the intermediate-level
rewrites that cause most of the deep-layer write amplification the paper
measures in Fig. 3b.  Stale copies on the intermediate levels are
invalidated through the index without any data-block write.

Victim selection trades write amplification against space amplification:

* space overhead above ``space_amp_limit`` → pick the table with the most
  dead bytes (a full push frees its whole file);
* otherwise → pick the table with the highest *overlap score*
  (Algorithm 1): the count of blocks transitively overlapped across the
  next ``depth`` levels, computed from index blocks alone, over a
  power-of-``k``-choices sample of candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.common.records import Record
from repro.lsm.semi.levels import SemiLevels
from repro.lsm.semi.semisstable import SemiSSTable
from repro.simssd.traffic import TrafficKind


@dataclass
class SemiCompactionStats:
    """Volume and composition of preemptive block compactions."""

    read_bytes_by_level: Dict[int, int] = field(default_factory=dict)
    write_bytes_by_level: Dict[int, int] = field(default_factory=dict)
    compactions: int = 0
    full_compactions: int = 0
    preemptive_records: int = 0   # records routed deeper than the child level
    normal_records: int = 0

    def note_io(self, output_level: int, read_bytes: int, write_bytes: int) -> None:
        self.read_bytes_by_level[output_level] = (
            self.read_bytes_by_level.get(output_level, 0) + read_bytes
        )
        self.write_bytes_by_level[output_level] = (
            self.write_bytes_by_level.get(output_level, 0) + write_bytes
        )

    def total_write_bytes(self) -> int:
        return sum(self.write_bytes_by_level.values())

    def total_read_bytes(self) -> int:
        return sum(self.read_bytes_by_level.values())


class PreemptiveBlockCompactor:
    """Drives preemptive block compaction over a :class:`SemiLevels` tree."""

    def __init__(
        self,
        levels: SemiLevels,
        depth: int = 2,
        t_clean: float = 0.5,
        space_amp_limit: float = 1.5,
        candidate_k: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"compaction depth must be >= 1, got {depth}")
        if not 0.0 < t_clean <= 1.0:
            raise ValueError(f"t_clean must be in (0, 1], got {t_clean}")
        self.levels = levels
        self.depth = depth
        self.t_clean = t_clean
        self.space_amp_limit = space_amp_limit
        self.candidate_k = candidate_k
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = SemiCompactionStats()

    # ------------------------------------------------------------- policy

    def level_score(self, level_no: int) -> float:
        """Valid bytes over target; the bottom level never scores (it only grows)."""
        if level_no >= self.levels.num_levels:
            return 0.0  # the bottom level only grows
        valid = self.levels.level_valid_bytes(level_no)
        return valid / self.levels.config.target_bytes(level_no)

    def pick_compaction_level(self) -> Optional[int]:
        """The level most over target, or None when everything fits."""
        best, best_score = None, 1.0
        for level_no in range(1, self.levels.num_levels):
            score = self.level_score(level_no)
            if score >= best_score:
                best, best_score = level_no, score
        return best

    def maybe_compact(self, max_rounds: int = 64) -> int:
        """Compact until every level is within target; returns rounds run."""
        rounds = 0
        while rounds < max_rounds:
            level_no = self.pick_compaction_level()
            if level_no is None:
                break
            if not self.compact_level(level_no):
                break
            rounds += 1
        return rounds

    # ------------------------------------------------- victim selection

    def overlap_score(self, table: SemiSSTable, level_no: int) -> int:
        """Algorithm 1: transitive overlapping-block count across ``depth``
        child levels, computed from index metadata only."""
        device = self.levels.fs.device
        # Reading the candidate's own index block.
        device.read_bytes_io(table.index_read_size(), TrafficKind.COMPACTION)
        block_meta = [
            (b.first_key, b.last_key + b"\x00")
            for b in table.blocks
            if not b.is_dead
        ]
        score = 0
        for n in range(1, self.depth + 1):
            child_no = level_no + n
            if child_no > self.levels.num_levels:
                break
            next_meta: list[tuple[bytes, bytes]] = []
            seen_tables = set()
            for lo, hi in block_meta:
                for child in self.levels.tables_overlapping(child_no, lo, hi):
                    if id(child) not in seen_tables:
                        seen_tables.add(id(child))
                        device.read_bytes_io(
                            child.index_read_size(), TrafficKind.COMPACTION
                        )
                    for blk in child.overlapping_blocks(lo, hi):
                        next_meta.append((blk.first_key, blk.last_key + b"\x00"))
            score += len(next_meta)
            if not next_meta:
                break
            block_meta = next_meta
        return score

    def select_victim(self, level_no: int) -> Optional[SemiSSTable]:
        """Dirtiest table under space pressure, else highest overlap score over a power-of-k sample (§3.4)."""
        tables = self.levels.level(level_no).live_tables()
        if not tables:
            return None
        if self.levels.space_amplification() > self.space_amp_limit:
            return max(tables, key=lambda t: t.dead_bytes)
        k = min(self.candidate_k, len(tables))
        idx = self.rng.choice(len(tables), size=k, replace=False)
        candidates = [tables[i] for i in idx]
        return max(candidates, key=lambda t: self.overlap_score(t, level_no))

    # --------------------------------------------------------------- work

    def compact_level(self, level_no: int) -> bool:
        """Push one victim table from ``level_no`` down.  Returns success."""
        victim = self.select_victim(level_no)
        if victim is None:
            return False
        device = self.levels.fs.device
        # Each semi-compaction job lands on the least-busy background
        # queue (no-op on single-queue devices).
        device.begin_background_job(TrafficKind.COMPACTION)
        traffic = device.traffic
        read_before = traffic.read_bytes(TrafficKind.COMPACTION)
        write_before = traffic.write_bytes(TrafficKind.COMPACTION)
        rec = obs.RECORDER
        if rec is not None:
            rec.begin(
                "semi_compaction", t=traffic.busy_seconds(),
                level=level_no, victim_records=victim.num_valid_records,
            )

        records = list(victim.iter_valid_records(TrafficKind.COMPACTION))
        self._route_records(level_no, records)

        # The victim's whole file is reclaimed.
        lvl = self.levels.level(level_no)
        for segment, t in list(lvl.tables.items()):
            if t is victim:
                del lvl.tables[segment]
        victim.destroy()

        self.stats.compactions += 1
        read_delta = traffic.read_bytes(TrafficKind.COMPACTION) - read_before
        write_delta = traffic.write_bytes(TrafficKind.COMPACTION) - write_before
        self.stats.note_io(level_no + 1, read_delta, write_delta)
        if rec is not None:
            rec.end(
                "semi_compaction", t=traffic.busy_seconds(),
                level=level_no, read_bytes=read_delta, write_bytes=write_delta,
            )
        return True

    def _route_records(self, level_no: int, records: list[Record]) -> None:
        """Send each record to the deepest in-depth level holding its key.

        When a record supersedes a copy on an intermediate level, the
        surviving neighbours of that copy's block ride along to the deeper
        destination (paper Fig. 7) — the block dies cleanly instead of
        lingering as dirty data that a full compaction must reclaim later.
        """
        bottom = self.levels.num_levels
        max_level = min(level_no + self.depth, bottom)
        # (dest_level, segment) -> {key: record}; keyed so duplicates from
        # ride-along extraction resolve by seqno.
        batches: dict[int, dict[int, dict[bytes, Record]]] = {}
        invalidations: dict[int, dict[int, set[bytes]]] = {}

        def stage(dest: int, rec: Record) -> None:
            seg = self.levels.level(dest).segment_of(rec.key)
            if dest == bottom and rec.is_tombstone:
                # Tombstones reaching the bottom need no physical write.
                t = self.levels.table_for_key(dest, rec.key)
                if t is not None and t.contains_key(rec.key):
                    invalidations.setdefault(dest, {}).setdefault(seg, set()).add(
                        rec.key
                    )
                return
            bucket = batches.setdefault(dest, {}).setdefault(seg, {})
            old = bucket.get(rec.key)
            if old is None or rec.seqno > old.seqno:
                bucket[rec.key] = rec

        def dest_for(key: bytes, floor: int) -> int:
            for candidate in range(max_level, floor, -1):
                t = self.levels.table_for_key(candidate, key)
                if t is not None and t.contains_key(key):
                    return candidate
            return floor + 1

        staged_keys: set[bytes] = set()
        for rec in records:
            dest = dest_for(rec.key, level_no)
            if dest > level_no + 1:
                self.stats.preemptive_records += 1
                # Retire the record's stale intermediate copies; their block
                # neighbours travel down with it (ride-along).
                for mid in range(level_no + 1, dest):
                    mt = self.levels.table_for_key(mid, rec.key)
                    if mt is None or not mt.contains_key(rec.key):
                        continue
                    survivors, _ = mt.extract_block_records(
                        rec.key, TrafficKind.COMPACTION
                    )
                    for s in survivors:
                        if s.key == rec.key or s.key in staged_keys:
                            continue
                        stage(dest_for(s.key, mid), s)
                        staged_keys.add(s.key)
            else:
                self.stats.normal_records += 1
            stage(dest, rec)
            staged_keys.add(rec.key)

        for dest, segs in sorted(invalidations.items()):
            for seg, keys in segs.items():
                table = self.levels.table_for_key(dest, next(iter(keys)), create=False)
                if table is not None and not batches.get(dest, {}).get(seg):
                    table.merge_append([], TrafficKind.COMPACTION, invalidate_only=keys)
        for dest, segs in sorted(batches.items()):
            for seg, bucket in segs.items():
                recs = sorted(bucket.values(), key=lambda r: r.key)
                table = self.levels.table_for_key(dest, recs[0].key, create=True)
                inv = invalidations.get(dest, {}).get(seg)
                table.merge_append(recs, TrafficKind.COMPACTION, invalidate_only=inv)
                self._maybe_full_compact(table)

    def _maybe_full_compact(self, table: SemiSSTable) -> None:
        """Full compaction when stale blocks exceed ``T_clean`` (§3.4)."""
        if table.num_blocks > 0 and table.dirty_ratio > self.t_clean:
            rec = obs.RECORDER
            if rec is not None:
                rec.emit(
                    "full_compaction",
                    t=self.levels.fs.device.busy_seconds(),
                    blocks=table.num_blocks,
                )
            table.full_compact(TrafficKind.COMPACTION)
            self.stats.full_compactions += 1

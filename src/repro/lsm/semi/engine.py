"""The capacity-tier engine: semi-SSTable levels + preemptive compaction.

This is the SATA-resident half of HyperDB.  Batches of objects demoted from
the NVMe tier are merged into ``L1`` (the NVMe tier is conceptually ``L0``),
and preemptive block compaction keeps levels within target.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.records import Record
from repro.lsm.semi.compaction import PreemptiveBlockCompactor
from repro.lsm.semi.levels import SemiLevelConfig, SemiLevels
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind


class CapacityTier:
    """HyperDB's SATA-tier store."""

    def __init__(
        self,
        fs: SimFilesystem,
        config: SemiLevelConfig,
        depth: int = 2,
        t_clean: float = 0.5,
        space_amp_limit: float = 1.5,
        candidate_k: int = 8,
        rng: Optional[np.random.Generator] = None,
        cache=None,
    ) -> None:
        self.fs = fs
        self.levels = SemiLevels(fs, config)
        self.compactor = PreemptiveBlockCompactor(
            self.levels,
            depth=depth,
            t_clean=t_clean,
            space_amp_limit=space_amp_limit,
            candidate_k=candidate_k,
            rng=rng,
        )
        self.cache = cache

    # ------------------------------------------------------------- writes

    def ingest(
        self, records: list[Record], kind: TrafficKind = TrafficKind.MIGRATION
    ) -> float:
        """Merge a demotion batch into L1 and rebalance.

        ``records`` need not be sorted; they are grouped by L1 segment.
        Returns the service time charged for the L1 merge (compaction time
        is background and accounted on the device).

        The whole merge-and-rebalance runs inside one device health epoch:
        an OFFLINE capacity device rejects the batch atomically at entry
        (``DeviceOfflineError`` before any table mutates), so callers can
        requeue the batch without worrying about split state.
        """
        if not records:
            return 0.0
        with self.fs.device.health_epoch:
            by_segment: dict[int, list[Record]] = {}
            lvl1 = self.levels.level(1)
            for rec in records:
                by_segment.setdefault(lvl1.segment_of(rec.key), []).append(rec)
            service = 0.0
            for seg, recs in sorted(by_segment.items()):
                recs.sort(key=lambda r: r.key)
                deduped = [recs[0]]
                for rec in recs[1:]:
                    if rec.key == deduped[-1].key:
                        if rec.seqno > deduped[-1].seqno:
                            deduped[-1] = rec
                    else:
                        deduped.append(rec)
                table = self.levels.table_for_key(1, deduped[0].key, create=True)
                service += table.merge_append(deduped, kind)
                self.compactor._maybe_full_compact(table)
            self.compactor.maybe_compact()
            return service

    # -------------------------------------------------------------- reads

    def get(
        self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> tuple[Optional[Record], float]:
        """Newest record for ``key`` across all levels (tombstones included)."""
        service = 0.0
        for level_no in range(1, self.levels.num_levels + 1):
            table = self.levels.table_for_key(level_no, key)
            if table is None:
                continue
            rec, s = table.get(key, kind, self.cache)
            service += s
            if rec is not None:
                return rec, service
        return None, service

    def contains_key(self, key: bytes) -> bool:
        """Index-only membership check across levels (no data I/O)."""
        for level_no in range(1, self.levels.num_levels + 1):
            table = self.levels.table_for_key(level_no, key)
            if table is not None and table.contains_key(key):
                return True
        return False

    def scan(
        self,
        start: bytes,
        count: int,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        prefetch: bool = False,
    ) -> tuple[list[Record], float]:
        """Up to ``count`` live records from ``start``, in key order.

        Default mode is index-directed sequential point queries (§4.2): the
        candidate keys come from the tables' index blocks (kept on NVMe, no
        data-tier I/O), then each record is fetched with one block read.
        Blocks being unordered between themselves is why HyperDB gains
        nothing on YCSB-E relative to a strictly sorted LSM.

        ``prefetch=True`` enables the paper's *future-work* optimization:
        the blocks a scan will touch are identified up front from the index
        and fetched per-table as coalesced sequential runs.
        """
        device_before = self.fs.device.busy_seconds()
        want = count + 16  # slack for tombstones
        # key -> shallowest level holding it (the authoritative version).
        owner: dict[bytes, int] = {}
        for level_no in range(self.levels.num_levels, 0, -1):
            tables = sorted(
                (
                    t
                    for t in self.levels.tables_overlapping(level_no, start, None)
                    if t.num_valid_records > 0
                ),
                key=lambda t: t.declared_range.lo,
            )
            got = 0
            for t in tables:
                for key in t.keys_from(start, want - got):
                    owner[key] = level_no  # shallower levels overwrite
                    got += 1
                if got >= want:
                    break
        keys = sorted(owner)
        if prefetch:
            self._prefetch_scan_blocks(keys, owner, kind)
        out: list[Record] = []
        for key in keys:
            table = self.levels.table_for_key(owner[key], key)
            rec, _ = table.get(key, kind, self.cache)
            if rec is None or rec.is_tombstone:
                continue
            out.append(rec)
            if len(out) >= count:
                break
        return out, self.fs.device.busy_seconds() - device_before

    def _prefetch_scan_blocks(self, keys, owner, kind) -> None:
        """Bulk-read every block the scan will touch into the page cache."""
        if self.cache is None:
            return  # nowhere to stage prefetched blocks
        by_table: dict[int, tuple] = {}
        for key in keys:
            table = self.levels.table_for_key(owner[key], key)
            entry = table._key_map.get(key)
            if entry is None:
                continue
            block = table._blocks_by_id[entry[0]]
            tid = id(table)
            if tid not in by_table:
                by_table[tid] = (table, {})
            by_table[tid][1][block.block_id] = block
        for table, blocks in by_table.values():
            table.read_blocks_bulk(list(blocks.values()), kind, self.cache)

    # --------------------------------------------------------- accounting

    def used_bytes(self) -> int:
        return self.levels.total_file_bytes()

    def valid_bytes(self) -> int:
        return self.levels.total_valid_bytes()

    def space_amplification(self) -> float:
        return self.levels.space_amplification()

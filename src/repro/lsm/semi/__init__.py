"""Semi-sorted tables and preemptive block compaction (paper §3.2, §3.4).

A *semi-SSTable* keeps records sorted **within** each data block but allows
blocks to be **appended after the file is persisted**, so merging new objects
into a table only rewrites the blocks whose key ranges they touch — clean
blocks are left in place.  The stale copies of rewritten ("dirty") blocks
remain in the file until a *full compaction* reclaims them, trading a little
space amplification for a large reduction in compaction write volume.

*Preemptive block compaction* extends this across levels: when a victim
table's objects also have older versions several levels deeper, they are
merged directly into the deepest such level, skipping the intermediate
rewrites that classic leveled compaction would perform.
"""

from repro.lsm.semi.semisstable import SemiSSTable, SemiBlock
from repro.lsm.semi.levels import SemiLevels, SemiLevelConfig
from repro.lsm.semi.compaction import PreemptiveBlockCompactor, SemiCompactionStats
from repro.lsm.semi.engine import CapacityTier

__all__ = [
    "SemiSSTable",
    "SemiBlock",
    "SemiLevels",
    "SemiLevelConfig",
    "PreemptiveBlockCompactor",
    "SemiCompactionStats",
    "CapacityTier",
]

"""Segmented level structure for semi-SSTables (paper §3.2).

HyperDB restricts each capacity-tier file to a fixed key segment: the bottom
level ``Ln`` divides the key space into uniform segments, and each level
above owns ranges covering ``T`` contiguous child ranges (``T`` = LSM size
ratio).  The first level is ``L1`` — the NVMe tier plays the role of ``L0``
— which avoids the compaction-efficiency loss of overlapping L0 files.

Tables are created lazily when data first lands in their range.  Uniform
segmentation assumes numeric 8-byte keys (what YCSB produces); a production
system would derive boundaries from sampled key quantiles instead.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.errors import ConfigError, ReproError
from repro.common.keys import KeyRange, decode_key, encode_key
from repro.lsm.semi.semisstable import SemiSSTable
from repro.simssd.fs import SimFilesystem


@dataclass
class SemiLevelConfig:
    """Geometry of the capacity-tier tree."""

    key_space: KeyRange
    num_levels: int = 3          # L1 .. L{num_levels}
    size_ratio: int = 8          # T: child ranges per parent range
    bottom_segments: int = 64    # segments at the deepest level
    block_size: int = 4096
    level1_target_bytes: int = 256 << 10
    bits_per_key: int = 10

    def __post_init__(self) -> None:
        if self.num_levels < 2:
            raise ConfigError("capacity tier needs at least 2 levels")
        if self.size_ratio < 2:
            raise ConfigError("size ratio must be >= 2")
        if self.key_space.hi is None:
            raise ConfigError("key space must be bounded for segmentation")
        min_segments = self.size_ratio ** (self.num_levels - 1)
        if self.bottom_segments < min_segments:
            raise ConfigError(
                f"bottom_segments ({self.bottom_segments}) must be >= "
                f"size_ratio^(num_levels-1) ({min_segments})"
            )

    def segments_at(self, level_no: int) -> int:
        """Number of key ranges at ``level_no`` (1-indexed from the top)."""
        if not 1 <= level_no <= self.num_levels:
            raise ConfigError(f"no such level: L{level_no}")
        shrink = self.size_ratio ** (self.num_levels - level_no)
        return max(1, self.bottom_segments // shrink)

    def target_bytes(self, level_no: int) -> int:
        return self.level1_target_bytes * (self.size_ratio ** (level_no - 1))


class _SemiLevel:
    """All tables of one level, keyed by segment index."""

    def __init__(self, level_no: int, boundaries: list[bytes]) -> None:
        self.level_no = level_no
        #: ``boundaries[i]`` is the inclusive lower bound of segment ``i``;
        #: segment ``i`` spans ``[boundaries[i], boundaries[i+1])`` with the
        #: final segment bounded by the key-space high end.
        self.boundaries = boundaries
        self.tables: dict[int, SemiSSTable] = {}

    def segment_of(self, key: bytes) -> int:
        idx = bisect_right(self.boundaries, key) - 1
        if idx < 0:
            raise ReproError(f"key {key!r} below key space")
        return idx

    def live_tables(self) -> list[SemiSSTable]:
        return [t for t in self.tables.values() if t.num_valid_records > 0]

    def valid_bytes(self) -> int:
        return sum(t.valid_bytes for t in self.tables.values())

    def file_bytes(self) -> int:
        return sum(t.file_bytes for t in self.tables.values())


class SemiLevels:
    """The capacity-tier level hierarchy of semi-SSTables."""

    def __init__(self, fs: SimFilesystem, config: SemiLevelConfig) -> None:
        self.fs = fs
        self.config = config
        self._table_seq = 0
        lo = decode_key(config.key_space.lo)
        hi = decode_key(config.key_space.hi)
        if hi <= lo:
            raise ConfigError("empty key space")
        self._levels: dict[int, _SemiLevel] = {}
        for level_no in range(1, config.num_levels + 1):
            nseg = config.segments_at(level_no)
            step = (hi - lo) / nseg
            bounds = [encode_key(lo + int(i * step)) for i in range(nseg)]
            bounds[0] = config.key_space.lo  # exact lower edge
            self._levels[level_no] = _SemiLevel(level_no, bounds)
        #: Copied into every table created here — see
        #: :attr:`repro.lsm.semi.semisstable.SemiSSTable.on_corrupt_block`.
        self.on_corrupt_block = None

    # ------------------------------------------------------------ lookup

    @property
    def num_levels(self) -> int:
        return self.config.num_levels

    def level(self, level_no: int) -> _SemiLevel:
        lvl = self._levels.get(level_no)
        if lvl is None:
            raise ReproError(f"no such level: L{level_no}")
        return lvl

    def segment_range(self, level_no: int, segment: int) -> KeyRange:
        lvl = self.level(level_no)
        lo = lvl.boundaries[segment]
        if segment + 1 < len(lvl.boundaries):
            hi = lvl.boundaries[segment + 1]
        else:
            hi = self.config.key_space.hi
        return KeyRange(lo, hi)

    def table_for_key(self, level_no: int, key: bytes, create: bool = False) -> Optional[SemiSSTable]:
        """The table owning ``key`` at ``level_no`` (created lazily on demand)."""
        if not self.config.key_space.contains(key):
            raise ReproError(f"key {key!r} outside configured key space")
        lvl = self.level(level_no)
        segment = lvl.segment_of(key)
        table = lvl.tables.get(segment)
        if table is None and create:
            self._table_seq += 1
            table = SemiSSTable(
                table_id=level_no * 1_000_000 + self._table_seq,
                fs=self.fs,
                declared_range=self.segment_range(level_no, segment),
                block_size=self.config.block_size,
                bits_per_key=self.config.bits_per_key,
            )
            table.on_corrupt_block = self.on_corrupt_block
            lvl.tables[segment] = table
        return table

    def tables_overlapping(
        self, level_no: int, lo: bytes, hi: Optional[bytes]
    ) -> list[SemiSSTable]:
        """Tables at ``level_no`` whose declared segment intersects [lo, hi)."""
        return [
            t
            for t in self.level(level_no).tables.values()
            if t.declared_range.overlaps(KeyRange(lo, hi))
        ]

    def all_tables(self) -> Iterator[SemiSSTable]:
        for lvl in self._levels.values():
            yield from lvl.tables.values()

    # --------------------------------------------------------- accounting

    def level_valid_bytes(self, level_no: int) -> int:
        return self.level(level_no).valid_bytes()

    def level_file_bytes(self, level_no: int) -> int:
        return self.level(level_no).file_bytes()

    def total_valid_bytes(self) -> int:
        return sum(l.valid_bytes() for l in self._levels.values())

    def total_file_bytes(self) -> int:
        return sum(l.file_bytes() for l in self._levels.values())

    def space_amplification(self) -> float:
        valid = self.total_valid_bytes()
        if valid == 0:
            return 1.0
        return self.total_file_bytes() / valid

    def num_valid_records(self) -> int:
        return sum(t.num_valid_records for t in self.all_tables())

"""The level structure of an LSM-tree.

A :class:`Version` tracks which tables live at which level and answers the
overlap queries that compaction and reads need.  Level 0 holds possibly
overlapping tables ordered newest-last; levels >= 1 hold disjoint tables
kept sorted by first key.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional

import numpy as np

from repro.common.errors import ReproError
from repro.common.keys import ranges_overlap


class LevelState:
    """Tables resident at one level."""

    def __init__(self, level: int) -> None:
        self.level = level
        self.tables: List = []
        #: Cached ``[t.first_key for t in tables]``; rebuilt lazily after
        #: add/remove so point lookups bisect instead of scanning.
        self._firsts: Optional[List[bytes]] = None
        #: The same keys as an object-dtype array for batched
        #: ``np.searchsorted`` resolution (:meth:`tables_for_keys`).
        self._firsts_arr: Optional[np.ndarray] = None

    @property
    def overlapping_allowed(self) -> bool:
        return self.level == 0

    def _first_keys(self) -> List[bytes]:
        if self._firsts is None:
            self._firsts = [t.first_key for t in self.tables]
        return self._firsts

    def add(self, table) -> None:
        if self.overlapping_allowed:
            self.tables.append(table)
            self._firsts = None
            self._firsts_arr = None
            return
        # Keep sorted by first key; reject overlap with neighbours.
        firsts = self._first_keys()
        idx = bisect_left(firsts, table.first_key)
        left = self.tables[idx - 1] if idx > 0 else None
        right = self.tables[idx] if idx < len(self.tables) else None
        if left is not None and left.last_key >= table.first_key:
            raise ReproError(
                f"L{self.level} overlap: new table {table.table_id} "
                f"intersects table {left.table_id}"
            )
        if right is not None and right.first_key <= table.last_key:
            raise ReproError(
                f"L{self.level} overlap: new table {table.table_id} "
                f"intersects table {right.table_id}"
            )
        self.tables.insert(idx, table)
        self._firsts = None
        self._firsts_arr = None

    def remove(self, table) -> None:
        try:
            self.tables.remove(table)
        except ValueError:
            raise ReproError(
                f"table {table.table_id} not present at L{self.level}"
            ) from None
        self._firsts = None
        self._firsts_arr = None

    def overlapping(self, lo: bytes, hi: Optional[bytes]) -> list:
        """Tables whose key range intersects ``[lo, hi)``."""
        return [
            t
            for t in self.tables
            if ranges_overlap(t.first_key, t.last_key + b"\x00", lo, hi)
        ]

    def table_for_key(self, key: bytes):
        """The single table whose range contains ``key``, or ``None``.

        Only valid on sorted (disjoint) levels; bisects the cached first
        keys instead of range-testing every table per lookup.
        """
        if self.overlapping_allowed:
            raise ReproError("table_for_key is undefined on overlapping L0")
        firsts = self._first_keys()
        idx = bisect_right(firsts, key) - 1
        if idx < 0:
            return None
        t = self.tables[idx]
        return t if key <= t.last_key else None

    def tables_for_keys(self, keys) -> list:
        """Batched :meth:`table_for_key`: one ``np.searchsorted`` over the
        cached first-key array resolves the whole batch.

        Object dtype keeps Python byte-string comparison semantics exactly
        (numpy's fixed-width ``S`` dtype strips trailing NULs), so every
        verdict equals the scalar bisect's.
        """
        if self.overlapping_allowed:
            raise ReproError("tables_for_keys is undefined on overlapping L0")
        tables = self.tables
        n = len(keys)
        if not tables:
            return [None] * n
        if self._firsts_arr is None:
            arr = np.empty(len(tables), dtype=object)
            arr[:] = self._first_keys()
            self._firsts_arr = arr
        karr = np.empty(n, dtype=object)
        karr[:] = keys
        idx = np.searchsorted(self._firsts_arr, karr, side="right") - 1
        out = []
        append = out.append
        for i, key in zip(idx.tolist(), keys):
            if i < 0:
                append(None)
                continue
            t = tables[i]
            append(t if key <= t.last_key else None)
        return out

    def size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.tables)

    def num_records(self) -> int:
        return sum(t.num_records for t in self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator:
        return iter(self.tables)


class Version:
    """The full level hierarchy of one tree."""

    def __init__(self, num_levels: int = 7, first_level: int = 0) -> None:
        """Create levels ``first_level .. first_level + num_levels - 1``.

        HyperDB's capacity tier uses ``first_level=1`` (the NVMe tier is
        conceptually L0), so every on-tree level is non-overlapping; only a
        literal level 0 allows overlapping tables.
        """
        if num_levels < 2:
            raise ReproError(f"need at least 2 levels, got {num_levels}")
        self.first_level = first_level
        self.levels: List[LevelState] = [
            LevelState(first_level + i) for i in range(num_levels)
        ]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def level(self, level_no: int) -> LevelState:
        idx = level_no - self.first_level
        if idx < 0 or idx >= len(self.levels):
            raise ReproError(f"no such level: L{level_no}")
        return self.levels[idx]

    def add_table(self, level_no: int, table) -> None:
        self.level(level_no).add(table)

    def remove_table(self, level_no: int, table) -> None:
        self.level(level_no).remove(table)

    def overlapping(self, level_no: int, lo: bytes, hi: Optional[bytes]) -> list:
        """Tables at the level whose actual key range intersects [lo, hi)."""
        return self.level(level_no).overlapping(lo, hi)

    def total_size_bytes(self) -> int:
        return sum(l.size_bytes() for l in self.levels)

    def total_tables(self) -> int:
        return sum(len(l) for l in self.levels)

    def all_levels(self) -> Iterator[LevelState]:
        return iter(self.levels)

    def deepest_nonempty_level(self) -> int:
        deepest = self.first_level
        for lvl in self.levels:
            if len(lvl) > 0:
                deepest = lvl.level
        return deepest

"""The leveled LSM-tree engine.

This is a complete single-node LSM key-value store over simulated devices:
WAL → memtable → L0 flush → leveled compaction.  It powers the RocksDB-like
baselines directly and (with ``first_level=1`` and semi-SSTables) underlies
HyperDB's capacity tier.

Tier placement follows RocksDB's ``db_paths``: each path is a filesystem plus
a byte budget, and levels are assigned greedily to the first path whose
remaining budget covers the level's target size — reproducing the paper's
observation (§2.3) that a level cannot span storage tiers and that capacity
use of the fast path is therefore coarse-grained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro import obs
from repro.common.bloom import hash_many
from repro.common.cache import LRUCache
from repro.common.errors import ConfigError, CorruptionError
from repro.common.records import Record
from repro.common.stats import StatsRegistry
from repro.health import admission as admission_mod
from repro.health.admission import AdmissionConfig, AdmissionController
from repro.lsm.compaction import LeveledCompactor
from repro.lsm.iterator import merge_records
from repro.lsm.manifest import (
    MANIFEST_PREFIX,
    HandleMeta,
    ManifestStore,
    TableMeta,
    bloom_from_meta,
)
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import BlockHandle, SSTable, SSTableBuilder
from repro.lsm.version import Version
from repro.lsm.wal import WriteAheadLog
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind

KiB = 1024
MiB = 1024 * KiB


@dataclass
class LSMOptions:
    """Tuning knobs, with defaults scaled 1/1024 from the paper's RocksDB
    settings (64 MB SSTables, 64 MB memtable)."""

    memtable_bytes: int = 64 * KiB
    table_size_bytes: int = 64 * KiB
    block_size: int = 4 * KiB
    num_levels: int = 7
    first_level: int = 0
    level0_trigger: int = 4
    level_base_bytes: int = 256 * KiB
    level_multiplier: int = 10
    wal_group_size: int = 32
    wal_enabled: bool = True
    block_cache_bytes: int = 0  # 0 = no cache; baselines pass the shared LRU
    #: Persist version metadata (a RocksDB-style MANIFEST) after every
    #: flush/compaction so the tree can be reopened from a post-crash image.
    #: Off by default: the paper's benchmark configuration does not model
    #: metadata journaling, and manifest writes are real charged I/O.
    manifest_enabled: bool = False
    #: RocksDB-style write stalls (slowdown/stop triggers on memtable count
    #: and L0 file count).  ``None`` — the default — disables backpressure,
    #: so existing benchmarks and digests are unchanged.
    admission: Optional[AdmissionConfig] = None

    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0 or self.table_size_bytes <= 0:
            raise ConfigError("memtable and table sizes must be positive")
        if self.level_multiplier < 2:
            raise ConfigError("level multiplier must be >= 2")
        if self.first_level not in (0, 1):
            raise ConfigError("first_level must be 0 or 1")


@dataclass
class DbPath:
    """One entry of a RocksDB-style ``db_paths`` configuration."""

    fs: SimFilesystem
    target_bytes: int


@dataclass
class RecoveryReport:
    """What :meth:`LSMTree.reopen` found and did."""

    tables_recovered: int = 0
    wal_records_replayed: int = 0
    wal_truncated: bool = False
    wal_dropped_bytes: int = 0
    leaked_files_removed: int = 0
    manifest_found: bool = False
    notes: list[str] = field(default_factory=list)


class LSMTree:
    """A leveled LSM-tree key-value store.

    Parameters
    ----------
    paths:
        One or more :class:`DbPath`.  Levels are placed on paths in order,
        by cumulative target size, like RocksDB's ``db_paths``.
    options:
        Engine tuning.
    cache:
        Optional shared block LRU (DRAM page cache).
    """

    def __init__(
        self,
        paths: list[DbPath] | SimFilesystem,
        options: Optional[LSMOptions] = None,
        cache: Optional[LRUCache] = None,
        recover_existing: bool = False,
    ) -> None:
        if isinstance(paths, SimFilesystem):
            paths = [DbPath(paths, target_bytes=1 << 62)]
        if not paths:
            raise ConfigError("at least one db path is required")
        self.paths = paths
        self.options = options or LSMOptions()
        self.cache = cache
        self.stats = StatsRegistry()

        opts = self.options
        self.version = Version(opts.num_levels, first_level=opts.first_level)
        self._level_paths = self._assign_levels_to_paths()
        self._table_seq = 0
        self._manifest = (
            ManifestStore(paths[0].fs) if opts.manifest_enabled else None
        )
        #: Tables pulled from service after a block failed its checksum.
        #: Their files are kept on media for forensics but never read again.
        self.quarantined: list[SSTable] = []
        self.compactor = LeveledCompactor(
            self.version,
            self.fs_for_level,
            self._next_table_id,
            table_size_bytes=opts.table_size_bytes,
            block_size=opts.block_size,
            level0_trigger=opts.level0_trigger,
            level_base_bytes=opts.level_base_bytes,
            level_multiplier=opts.level_multiplier,
            on_install=self._write_manifest if opts.manifest_enabled else None,
        )

        self.admission = (
            AdmissionController(opts.admission)
            if opts.admission is not None
            else None
        )
        self._seqno = 0
        self._memtable = MemTable(opts.memtable_bytes)
        self._immutables: list[MemTable] = []
        self.wal = (
            WriteAheadLog(
                paths[0].fs,
                name="wal",
                group_size=opts.wal_group_size,
                reuse_existing=recover_existing,
            )
            if opts.wal_enabled
            else None
        )
        #: Service time charged to foreground ops since construction;
        #: the workload runner converts this into latency samples.
        self.last_op_service = 0.0
        #: Populated by :meth:`reopen`.
        self.recovery_report: Optional[RecoveryReport] = None
        if recover_existing:
            self.recovery_report = self._recover_state()

    @classmethod
    def reopen(
        cls,
        paths: list[DbPath] | SimFilesystem,
        options: Optional[LSMOptions] = None,
        cache: Optional[LRUCache] = None,
    ) -> "LSMTree":
        """Open a tree over filesystems that already hold its files.

        Rebuilds the version from the newest intact manifest, garbage-
        collects table files the manifest doesn't reference (half-written
        tables from a crash mid-flush/compaction), replays the WAL's clean
        prefix into the memtable, and truncates any torn WAL tail.  The
        result is readable/writable; ``tree.recovery_report`` says what was
        recovered and what was dropped.
        """
        opts = options or LSMOptions()
        if not opts.manifest_enabled:
            # Without a durable manifest only the WAL is recoverable.
            # reopen() is the crash-recovery entry point, so turn it on.
            from dataclasses import replace

            opts = replace(opts, manifest_enabled=True)
        return cls(paths, opts, cache, recover_existing=True)

    # ------------------------------------------------------- level layout

    def _assign_levels_to_paths(self) -> dict[int, SimFilesystem]:
        opts = self.options
        assignment: dict[int, SimFilesystem] = {}
        path_idx = 0
        # The first path also hosts the WAL; reserve room for it, and place
        # levels with a 2x margin so transient build-ups (L0 accumulating to
        # its trigger, both input and output tables alive mid-compaction)
        # don't overflow a small fast device.
        remaining = self.paths[0].target_bytes
        if opts.wal_enabled:
            remaining -= 2 * opts.memtable_bytes
        first = opts.first_level
        for level_no in range(first, first + opts.num_levels):
            if level_no == 0:
                need = 2 * opts.level0_trigger * opts.memtable_bytes
            elif level_no == max(first, 1):
                need = 2 * opts.level_base_bytes
            else:
                need = 2 * opts.level_base_bytes * (
                    opts.level_multiplier ** (level_no - max(first, 1))
                )
            while need > remaining and path_idx < len(self.paths) - 1:
                path_idx += 1
                remaining = self.paths[path_idx].target_bytes
            remaining -= need
            assignment[level_no] = self.paths[path_idx].fs
        return assignment

    def fs_for_level(self, level_no: int) -> SimFilesystem:
        return self._level_paths[level_no]

    def _next_table_id(self) -> int:
        self._table_seq += 1
        return self._table_seq

    def next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    # --------------------------------------------------- durable metadata

    def _write_manifest(self) -> float:
        """Snapshot the version into the manifest (no-op when disabled)."""
        if self._manifest is None:
            return 0.0
        tables: list[TableMeta] = []
        for lvl in self.version.all_levels():
            for t in lvl:
                tables.append(
                    TableMeta(
                        level=lvl.level,
                        table_id=t.table_id,
                        num_records=t.num_records,
                        file_name=t.file.name,
                        bloom=t.bloom.to_bytes(),
                        handles=[
                            HandleMeta(
                                h.first_key, h.last_key, h.offset, h.length,
                                h.num_records,
                            )
                            for h in t.handles
                        ],
                    )
                )
        return self._manifest.write(tables, self._table_seq)

    def _recover_state(self) -> RecoveryReport:
        """Rebuild version + memtable from on-media state (post-crash)."""
        report = RecoveryReport()
        referenced: set[str] = set()
        if self._manifest is not None:
            metas, table_seq, notes = self._manifest.load_latest()
            report.notes.extend(notes)
            if metas is not None:
                report.manifest_found = True
                self._table_seq = max(self._table_seq, table_seq)
                for meta in metas:
                    fs = self._find_fs_with(meta.file_name)
                    if fs is None:
                        report.notes.append(
                            f"manifest references missing file {meta.file_name!r}"
                        )
                        continue
                    handles = [
                        BlockHandle(
                            h.first_key, h.last_key, h.offset, h.length,
                            h.num_records,
                        )
                        for h in meta.handles
                    ]
                    table = SSTable(
                        meta.table_id,
                        fs.open(meta.file_name),
                        handles,
                        bloom_from_meta(meta),
                        meta.num_records,
                    )
                    self.version.add_table(meta.level, table)
                    referenced.add(meta.file_name)
                    report.tables_recovered += 1
        # GC table files no durable metadata references (crash leftovers).
        # Only safe when a manifest was found: without one, "unreferenced"
        # would mean every table file.
        if report.manifest_found:
            for path in self.paths:
                for f in list(path.fs.files()):
                    if f.name.startswith("sst_") and f.name not in referenced:
                        path.fs.delete(f.name)
                        report.leaked_files_removed += 1
        if self.wal is not None:
            replay = self.wal.replay()
            report.wal_records_replayed = len(replay)
            report.wal_truncated = replay.truncated
            report.wal_dropped_bytes = replay.dropped_bytes
            if replay.truncated:
                self.wal.truncate_torn_tail(replay.valid_bytes)
                report.notes.append(
                    f"WAL tail torn: dropped {replay.dropped_bytes} bytes"
                )
            for rec in replay:
                self._memtable.put(rec)
                if rec.seqno > self._seqno:
                    self._seqno = rec.seqno
            self.wal.note_recovered(len(replay))
        return report

    def _find_fs_with(self, name: str) -> Optional[SimFilesystem]:
        for path in self.paths:
            if path.fs.exists(name):
                return path.fs
        return None

    def _quarantine(self, level_no: int, table: SSTable) -> None:
        """Pull a table whose data failed its checksum out of service.

        The corrupt file stays on media (for forensics / re-replication in
        a real deployment) but is dropped from the version — and from the
        durable manifest — so no reader ever sees its bytes again.
        """
        try:
            self.version.remove_table(level_no, table)
        except Exception:
            pass  # already removed by a concurrent quarantine
        self.quarantined.append(table)
        self.stats.counter("quarantined_tables").add()
        rec = obs.RECORDER
        if rec is not None:
            dev = self.fs_for_level(level_no).device
            rec.emit(
                "quarantine", t=dev.busy_seconds(),
                level=level_no, table=table.table_id,
                records=table.num_records,
            )
        self._write_manifest()

    # ------------------------------------------------------------- writes

    def put(self, key: bytes, value: bytes) -> float:
        """Insert or update.  Returns foreground service time."""
        return self._write(Record(key, value, self.next_seqno()))

    def delete(self, key: bytes) -> float:
        """Delete via tombstone.  Returns foreground service time."""
        return self._write(Record.tombstone(key, self.next_seqno()))

    def put_many(self, keys, values, busy_hook=None) -> list[float]:
        """Batched :meth:`put`: one fused loop over the write path.

        ``busy_hook``, when given, is invoked after every op (the store
        layer snapshots per-device busy seconds into latency rows there).
        Admission control or an active recorder falls back to the per-op
        write so stall ordering and emitted events stay exact; either way
        the calls, their order, and the float math match :meth:`put`
        bit for bit.
        """
        if self.admission is not None or obs.RECORDER is not None:
            write = self._write
            out = []
            for key, value in zip(keys, values):
                self._seqno += 1
                out.append(write(Record(key, value, self._seqno)))
                if busy_hook is not None:
                    busy_hook()
            return out
        wal = self.wal
        puts = self.stats.counter("puts")
        mem = self._memtable
        mem_put = mem.put
        out = []
        append = out.append
        for key, value in zip(keys, values):
            self._seqno += 1
            rec = Record(key, value, self._seqno)
            service = wal.append(rec) if wal is not None else 0.0
            mem_put(rec)
            puts.value += 1
            if mem.is_full:
                service += self.flush()
                mem = self._memtable
                mem_put = mem.put
            self.last_op_service = service
            append(service)
            if busy_hook is not None:
                busy_hook()
        return out

    def delete_many(self, keys, busy_hook=None) -> list[float]:
        """Batched :meth:`delete`: tombstones through the fused write loop."""
        write = self._write
        out = []
        for key in keys:
            self._seqno += 1
            out.append(write(Record.tombstone(key, self._seqno)))
            if busy_hook is not None:
                busy_hook()
        return out

    def get_many(self, keys, busy_hook=None) -> list:
        """Batched :meth:`get` with a columnar resolution pass.

        On the unguarded fast path every pure per-key step is hoisted out
        of the I/O loop and vectorized: candidate tables for each sorted
        level come from one ``np.searchsorted`` over the level's cached
        first keys (:meth:`LevelState.tables_for_keys`), and bloom
        membership for all keys sharing a candidate table from one
        :meth:`~repro.common.bloom.BloomFilter.contains_many` probe over
        the batch's hash array.  The block reads then run per key in op
        order, so cache population and eviction — and therefore every
        charge — match the per-op path bit for bit.  Guarded devices
        (fault injector, health windows) or an active recorder fall back
        to the scalar loop.
        """
        fast = obs.RECORDER is None and all(
            p.fs.device._fastpath for p in self.paths
        )
        if not fast:
            get = self.get
            out = []
            for key in keys:
                out.append(get(key))
                if busy_hook is not None:
                    busy_hook()
            return out
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        n = len(keys)
        if n == 0:
            return []
        self.stats.counter("gets").add(n)
        # Pure pre-pass: memtable lookups are dict probes (no I/O, no
        # cache traffic), so resolving every key up front is invisible
        # to the ledger.  A read batch never mutates the memtables or
        # the version, so the state probed here is frozen.
        mem_get = self._memtable.get
        imms = self._immutables
        recs: list = []
        recs_append = recs.append
        misses: list[bytes] = []
        miss_pos: list[int] = []
        for i, key in enumerate(keys):
            rec = mem_get(key)
            if rec is None and imms:
                for imm in reversed(imms):
                    rec = imm.get(key)
                    if rec is not None:
                        break
            recs_append(rec)
            if rec is None:
                miss_pos.append(i)
                misses.append(key)
        first = self.options.first_level
        level_cands: list[tuple[list, list]] = []
        pos_to_j: dict[int, int] = {}
        if misses:
            pos_to_j = {i: j for j, i in enumerate(miss_pos)}
            hashes = hash_many(misses)
            for level_no in range(max(first, 1), first + self.options.num_levels):
                if level_no - first >= self.version.num_levels:
                    break
                lvl = self.version.level(level_no)
                if not lvl.tables:
                    continue
                cands = lvl.tables_for_keys(misses)
                verdicts = [False] * len(misses)
                groups: dict[int, tuple] = {}
                for j, t in enumerate(cands):
                    if t is not None:
                        groups.setdefault(id(t), (t, []))[1].append(j)
                for t, js in groups.values():
                    hit = t.bloom.contains_many(hashes[np.array(js)])
                    for j, v in zip(js, hit.tolist()):
                        verdicts[j] = v
                level_cands.append((cands, verdicts))
        l0_tables = (
            list(reversed(self.version.level(0).tables)) if first == 0 else None
        )
        cache = self.cache
        fg = TrafficKind.FOREGROUND
        out = []
        append = out.append
        for i, key in enumerate(keys):
            rec = recs[i]
            if rec is not None:
                self.last_op_service = 0.0
                append(((None if rec.is_tombstone else rec.value), 0.0))
                if busy_hook is not None:
                    busy_hook()
                continue
            service = 0.0
            value = None
            found = False
            if l0_tables:
                for table in l0_tables:
                    if table.first_key <= key <= table.last_key:
                        r, s = table.get(key, fg, cache)
                        service += s
                        if r is not None:
                            value = None if r.is_tombstone else r.value
                            found = True
                            break
            if not found:
                j = pos_to_j[i]
                for cands, verdicts in level_cands:
                    t = cands[j]
                    if t is None or not verdicts[j]:
                        continue
                    r, s = t.get_nobloom(key, fg, cache)
                    service += s
                    if r is not None:
                        value = None if r.is_tombstone else r.value
                        break
            self.last_op_service = service
            append((value, service))
            if busy_hook is not None:
                busy_hook()
        return out

    def ingest(self, rec: Record) -> float:
        """Write a pre-stamped record (used by cross-tier migration)."""
        if rec.seqno > self._seqno:
            self._seqno = rec.seqno
        return self._write(rec)

    def _write(self, rec: Record) -> float:
        service = 0.0
        if self.admission is not None:
            service += self._admission_gate()
        if self.wal is not None:
            service += self.wal.append(rec)
        self._memtable.put(rec)
        self.stats.counter("puts").add()
        if self._memtable.is_full:
            service += self.flush()
        self.last_op_service = service
        return service

    def _admission_gate(self) -> float:
        """RocksDB-style write backpressure on memtable and L0 pressure.

        SLOWDOWN charges a short deterministic stall; STOP first runs
        compaction (the simulated analogue of waiting for background work
        to drain) and charges the long stall.  Stall time lands on the
        first level's device ledger via :meth:`SimDevice.charge_stall`.
        """
        memtables = 1 + len(self._immutables)
        l0_files = (
            len(self.version.level(0).tables)
            if self.options.first_level == 0
            else 0
        )
        verdict, trigger = self.admission.assess(
            memtables=memtables, l0_files=l0_files
        )
        if verdict == admission_mod.OK:
            return 0.0
        if verdict == admission_mod.STOP:
            self.maybe_compact()
        delay = self.admission.stall_s(verdict)
        dev = self.fs_for_level(self.options.first_level).device
        service = dev.charge_stall(delay)
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "write_stall", t=dev.busy_seconds(),
                engine="lsm", verdict=verdict, trigger=trigger,
                delay_s=delay, memtables=memtables, l0_files=l0_files,
            )
        return service

    def flush(self) -> float:
        """Rotate the memtable and persist it as an L0 (or L1) table.

        Crash-safe ordering: WAL sync → table build → manifest snapshot →
        WAL reset.  A crash before the manifest is durable leaves the old
        manifest *and* the un-reset WAL, so replay recovers everything; a
        crash after leaves the new manifest referencing the new table.
        """
        if len(self._memtable) == 0:
            return 0.0
        rec = obs.RECORDER
        flush_dev = self.fs_for_level(self.options.first_level).device
        if rec is not None:
            rec.begin(
                "flush", t=flush_dev.busy_seconds(),
                records=len(self._memtable), bytes=self._memtable.size_bytes,
            )
        # One health epoch around the whole flush: an OFFLINE device rejects
        # it atomically before the memtable rotates or any table is built.
        with flush_dev.health_epoch:
            if self.wal is not None:
                self.wal.sync()
            imm = self._memtable
            self._memtable = MemTable(
                self.options.memtable_bytes, seed=self._table_seq + 1
            )
            self._immutables.append(imm)
            service = self._flush_immutables()
            service += self._write_manifest()
            if self.wal is not None:
                self.wal.reset()
            self.maybe_compact()
        if rec is not None:
            rec.end("flush", t=flush_dev.busy_seconds())
        return service

    def _flush_immutables(self) -> float:
        first = self.options.first_level
        service = 0.0
        while self._immutables:
            imm = self._immutables.pop(0)
            fs = self.fs_for_level(first)
            # One flush job per immutable: spread across background queues
            # on multi-queue devices (no-op otherwise).
            fs.device.begin_background_job(TrafficKind.FLUSH)
            device_before = fs.device.busy_seconds()
            if first == 0:
                builder = SSTableBuilder(
                    fs,
                    self._next_table_id(),
                    self.options.block_size,
                    write_kind=TrafficKind.FLUSH,
                )
                for rec in imm.records():
                    builder.add(rec)
                table = builder.finish()
                self.version.add_table(0, table)
            else:
                # Flushing straight into a sorted level: merge with overlaps.
                self._merge_into_sorted_level(first, list(imm.records()))
            service += fs.device.busy_seconds() - device_before
            self.stats.counter("flushes").add()
        return service

    def _merge_into_sorted_level(
        self, level_no: int, records: list[Record], kind=TrafficKind.FLUSH
    ) -> None:
        if not records:
            return
        lo = records[0].key
        hi = records[-1].key + b"\x00"
        overlaps = self.version.overlapping(level_no, lo, hi)
        streams = [iter(records)] + [t.iter_records(kind) for t in overlaps]
        merged = merge_records(streams)
        fs = self.fs_for_level(level_no)
        builder: Optional[SSTableBuilder] = None
        outputs: list[SSTable] = []
        for rec in merged:
            if builder is None:
                builder = SSTableBuilder(
                    fs,
                    self._next_table_id(),
                    self.options.block_size,
                    write_kind=kind,
                )
            builder.add(rec)
            if builder.estimated_size >= self.options.table_size_bytes:
                outputs.append(builder.finish())
                builder = None
        if builder is not None:
            outputs.append(builder.finish())
        for t in overlaps:
            self.version.remove_table(level_no, t)
        for t in outputs:
            self.version.add_table(level_no, t)
        # Make the new version durable before destroying its inputs, so a
        # crash in between leaks files instead of losing referenced ones.
        self._write_manifest()
        for t in overlaps:
            fs_owner = self.fs_for_level(level_no)
            if fs_owner.exists(t.file.name):
                fs_owner.delete(t.file.name)

    def ingest_batch(self, records: list[Record], kind=TrafficKind.MIGRATION) -> float:
        """Merge a sorted, durable batch straight into the tree, bypassing
        WAL and memtable (used for cross-tier demotions à la PrismDB).

        Records must be sorted by key with no duplicates.
        """
        if not records:
            return 0.0
        first = self.options.first_level
        fs = self.fs_for_level(first)
        # Atomic under OFFLINE: the epoch rejects the batch at entry, before
        # seqnos advance or any table mutates, so callers can requeue it.
        with fs.device.health_epoch:
            busy_before = fs.device.busy_seconds()
            for rec in records:
                if rec.seqno > self._seqno:
                    self._seqno = rec.seqno
            if first == 0:
                builder = SSTableBuilder(
                    fs, self._next_table_id(), self.options.block_size,
                    write_kind=kind,
                )
                for rec in records:
                    builder.add(rec)
                self.version.add_table(0, builder.finish())
                self._write_manifest()
            else:
                self._merge_into_sorted_level(first, records, kind)
            service = fs.device.busy_seconds() - busy_before
            self.maybe_compact()
            return service

    def maybe_compact(self, max_rounds: int = 64) -> int:
        return self.compactor.maybe_compact(max_rounds)

    # -------------------------------------------------------------- reads

    def get(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Point lookup.  Returns ``(value_or_none, service_time)``."""
        self.stats.counter("gets").add()
        rec = self._memtable.get(key)
        if rec is None:
            for imm in reversed(self._immutables):
                rec = imm.get(key)
                if rec is not None:
                    break
        if rec is not None:
            self.last_op_service = 0.0
            return (None if rec.is_tombstone else rec.value), 0.0

        service = 0.0
        first = self.options.first_level
        if first == 0:
            # Copy: quarantine may remove a table mid-iteration.
            for table in reversed(list(self.version.level(0).tables)):
                if table.first_key <= key <= table.last_key:
                    try:
                        rec, s = table.get(key, TrafficKind.FOREGROUND, self.cache)
                    except CorruptionError:
                        # Checksums caught bad media: take the table out of
                        # service rather than surface garbage or crash.
                        self._quarantine(0, table)
                        continue
                    service += s
                    if rec is not None:
                        self.last_op_service = service
                        return (None if rec.is_tombstone else rec.value), service
        for level_no in range(max(first, 1), first + self.options.num_levels):
            if level_no - first >= self.version.num_levels:
                break
            # Sorted levels are disjoint: bisect straight to the one
            # candidate table instead of range-testing the whole level.
            candidate = self.version.level(level_no).table_for_key(key)
            if candidate is None:
                continue
            try:
                rec, s = candidate.get(key, TrafficKind.FOREGROUND, self.cache)
            except CorruptionError:
                self._quarantine(level_no, candidate)
                continue
            service += s
            if rec is not None:
                self.last_op_service = service
                return (None if rec.is_tombstone else rec.value), service
        self.last_op_service = service
        return None, service

    def scan(self, start: bytes, count: int) -> tuple[list[tuple[bytes, bytes]], float]:
        """Range scan of up to ``count`` live records from ``start``."""
        self.stats.counter("scans").add()
        devices = {id(p.fs.device): p.fs.device for p in self.paths}
        device_busy_before = {k: d.busy_seconds() for k, d in devices.items()}
        streams: list[Iterator[Record]] = [self._memtable.records(start=start)]
        for imm in reversed(self._immutables):
            streams.append(imm.records(start=start))
        first = self.options.first_level

        def guarded(level_no: int, table: SSTable) -> Iterator[Record]:
            # Stop the stream (and quarantine) when a block fails its
            # checksum; the scan degrades to the remaining clean tables
            # instead of surfacing corrupt bytes.
            try:
                yield from table.iter_from(start, TrafficKind.FOREGROUND, self.cache)
            except CorruptionError:
                self._quarantine(level_no, table)

        if first == 0:
            for table in reversed(list(self.version.level(0))):
                streams.append(guarded(0, table))
        for level_no in range(max(first, 1), first + self.options.num_levels):
            if level_no - first >= self.version.num_levels:
                break
            lvl_tables = self.version.level(level_no).overlapping(start, None)
            def level_stream(tables=lvl_tables, lvl=level_no):
                for t in tables:
                    yield from guarded(lvl, t)
            streams.append(level_stream())
        out: list[tuple[bytes, bytes]] = []
        for rec in merge_records(streams, drop_tombstones=True):
            out.append((rec.key, rec.value))
            if len(out) >= count:
                break
        service = sum(
            d.busy_seconds() - device_busy_before[k] for k, d in devices.items()
        )
        self.last_op_service = service
        return out, service

    # ------------------------------------------------------------ metrics

    def size_bytes(self) -> int:
        return self.version.total_size_bytes()

    def num_records_estimate(self) -> int:
        return len(self._memtable) + sum(
            lvl.num_records() for lvl in self.version.all_levels()
        )

    def level_sizes(self) -> dict[int, int]:
        return {lvl.level: lvl.size_bytes() for lvl in self.version.all_levels()}

"""Classic leveled compaction.

This is the policy RocksDB's default level compaction uses and the baseline
HyperDB's preemptive block compaction is compared against: pick the level
whose size most exceeds its target, choose a victim table (round-robin by
key), merge it with every overlapping table in the child level, and rewrite
the result as fresh child-level tables.

Per-output-level I/O counters feed the paper's Fig. 3b breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro import obs
from repro.lsm.iterator import merge_records
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.version import Version
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind


@dataclass
class CompactionStats:
    """I/O volume attributed to compactions, keyed by output level."""

    read_bytes_by_level: Dict[int, int] = field(default_factory=dict)
    write_bytes_by_level: Dict[int, int] = field(default_factory=dict)
    compactions: int = 0

    def note(self, output_level: int, read_bytes: int, write_bytes: int) -> None:
        self.read_bytes_by_level[output_level] = (
            self.read_bytes_by_level.get(output_level, 0) + read_bytes
        )
        self.write_bytes_by_level[output_level] = (
            self.write_bytes_by_level.get(output_level, 0) + write_bytes
        )
        self.compactions += 1

    def total_write_bytes(self) -> int:
        return sum(self.write_bytes_by_level.values())

    def total_read_bytes(self) -> int:
        return sum(self.read_bytes_by_level.values())


class LeveledCompactor:
    """Size-tiered-by-level compaction driver for one :class:`Version`.

    Parameters
    ----------
    version:
        The level structure to maintain.
    fs_for_level:
        Maps a level number to the filesystem (device) its tables live on —
        this is how RocksDB's ``db_paths`` tier placement is expressed.
    next_table_id:
        Allocator for fresh table ids.
    table_size_bytes / block_size:
        Output table geometry.
    level0_trigger:
        Number of L0 tables that makes L0 eligible for compaction.
    level_base_bytes / level_multiplier:
        Target size of the first sorted level and the growth ratio.
    on_install:
        Optional callback invoked after a compaction's version change is
        applied but *before* the input files are deleted — the tree uses it
        to make the new version durable (manifest) first, so a crash in
        between leaks files instead of losing referenced ones.
    """

    def __init__(
        self,
        version: Version,
        fs_for_level: Callable[[int], SimFilesystem],
        next_table_id: Callable[[], int],
        table_size_bytes: int,
        block_size: int = 4096,
        level0_trigger: int = 4,
        level_base_bytes: int = 1 << 20,
        level_multiplier: int = 10,
        on_install: Optional[Callable[[], float]] = None,
    ) -> None:
        self.version = version
        self.fs_for_level = fs_for_level
        self.next_table_id = next_table_id
        self.table_size_bytes = table_size_bytes
        self.block_size = block_size
        self.level0_trigger = level0_trigger
        self.level_base_bytes = level_base_bytes
        self.level_multiplier = level_multiplier
        self.on_install = on_install
        self.stats = CompactionStats()
        self._cursors: Dict[int, bytes] = {}  # round-robin victim cursor per level

    # ------------------------------------------------------------- policy

    def level_target_bytes(self, level_no: int) -> int:
        """Target size for a sorted level (L1 gets the base size)."""
        exponent = max(0, level_no - max(1, self.version.first_level))
        return self.level_base_bytes * (self.level_multiplier**exponent)

    def level_score(self, level_no: int) -> float:
        """How far past its target the level is; >= 1 means compaction-eligible."""
        lvl = self.version.level(level_no)
        if level_no == 0:
            return len(lvl) / self.level0_trigger
        if level_no == self.version.first_level + self.version.num_levels - 1:
            return 0.0  # the bottom level has no child to push into
        return lvl.size_bytes() / self.level_target_bytes(level_no)

    def pick_compaction_level(self) -> Optional[int]:
        """The level most in need of compaction, or None if all within target."""
        best_level, best_score = None, 1.0
        for lvl in self.version.all_levels():
            score = self.level_score(lvl.level)
            if score >= best_score:
                best_level, best_score = lvl.level, score
        return best_level

    def pick_victim(self, level_no: int) -> Optional[SSTable]:
        """Round-robin by key: the table after the last compacted key."""
        tables = list(self.version.level(level_no))
        if not tables:
            return None
        cursor = self._cursors.get(level_no)
        if cursor is not None:
            for t in tables:
                if t.first_key > cursor:
                    return t
        return tables[0]

    # -------------------------------------------------------------- work

    def maybe_compact(self, max_rounds: int = 64) -> int:
        """Run compactions until every level is within target.

        Returns the number of compactions performed.
        """
        rounds = 0
        while rounds < max_rounds:
            level = self.pick_compaction_level()
            if level is None:
                break
            self.compact_level(level)
            rounds += 1
        return rounds

    def compact_level(self, level_no: int) -> list[SSTable]:
        """One compaction from ``level_no`` into its child level."""
        child_no = level_no + 1
        # Concurrency-aware placement: each compaction job picks the
        # least-busy background queue on every device it will touch, so
        # back-to-back jobs overlap on a multi-queue device instead of
        # serializing (no-op on single-queue devices).
        parent_dev = self.fs_for_level(level_no).device
        child_dev = self.fs_for_level(child_no).device
        parent_dev.begin_background_job(TrafficKind.COMPACTION)
        if child_dev is not parent_dev:
            child_dev.begin_background_job(TrafficKind.COMPACTION)
        if level_no == 0:
            inputs_parent = list(self.version.level(0))
        else:
            victim = self.pick_victim(level_no)
            if victim is None:
                return []
            inputs_parent = [victim]
            self._cursors[level_no] = victim.last_key
        if not inputs_parent:
            return []

        lo = min(t.first_key for t in inputs_parent)
        hi = max(t.last_key for t in inputs_parent) + b"\x00"
        inputs_child = self.version.overlapping(child_no, lo, hi)
        return self._merge(level_no, inputs_parent, child_no, inputs_child)

    def _merge(
        self,
        parent_no: int,
        parents: list[SSTable],
        child_no: int,
        children: list[SSTable],
    ) -> list[SSTable]:
        read_bytes = sum(t.size_bytes for t in parents + children)
        trc = obs.RECORDER
        if trc is not None:
            trc.begin(
                "compaction",
                t=self.fs_for_level(child_no).device.busy_seconds(),
                parent_level=parent_no, child_level=child_no,
                input_tables=len(parents) + len(children),
                read_bytes=read_bytes,
            )
        # Newest first: L0 tables are ordered oldest-first in the version, so
        # reverse them; parent level is newer than child level.
        streams = [
            t.iter_records(TrafficKind.COMPACTION) for t in reversed(parents)
        ] + [t.iter_records(TrafficKind.COMPACTION) for t in children]
        bottom = child_no >= self.version.first_level + self.version.num_levels - 1
        merged = merge_records(streams, drop_tombstones=bottom)

        fs = self.fs_for_level(child_no)
        outputs: list[SSTable] = []
        builder: Optional[SSTableBuilder] = None
        for rec in merged:
            if builder is None:
                builder = SSTableBuilder(
                    fs,
                    self.next_table_id(),
                    self.block_size,
                    write_kind=TrafficKind.COMPACTION,
                )
            builder.add(rec)
            if builder.estimated_size >= self.table_size_bytes:
                outputs.append(builder.finish())
                builder = None
        if builder is not None and builder.num_records > 0:
            outputs.append(builder.finish())
        elif builder is not None:
            builder.abandon()

        write_bytes = sum(t.size_bytes for t in outputs)
        self.stats.note(child_no, read_bytes, write_bytes)

        # Install outputs, retire inputs; the version change is made durable
        # (on_install → manifest) before any input file is destroyed.
        for t in parents:
            self.version.remove_table(parent_no, t)
        for t in children:
            self.version.remove_table(child_no, t)
        for t in outputs:
            self.version.add_table(child_no, t)
        if self.on_install is not None:
            self.on_install()
        for t in parents:
            self._delete_table_file(parent_no, t)
        for t in children:
            self._delete_table_file(child_no, t)
        if trc is not None:
            trc.end(
                "compaction",
                t=self.fs_for_level(child_no).device.busy_seconds(),
                child_level=child_no, output_tables=len(outputs),
                write_bytes=write_bytes,
            )
        return outputs

    def _delete_table_file(self, level_no: int, table: SSTable) -> None:
        fs = self.fs_for_level(level_no)
        if fs.exists(table.file.name):
            fs.delete(table.file.name)
        else:  # table was written before a path re-assignment; search all
            table.file.delete()

"""Exact reducers for sharded harness results.

A sharded run produces K partial results; these mergers fold them back
into the aggregate a single unsharded run would have produced.  All
reductions are plain sums / concatenations applied in shard order, so a
given shard list always reduces to the same bytes — the pool's ordered
collection plus these mergers is what makes ``--workers N`` output
digest-identical to ``--workers 1``.

None of the mergers mutate their inputs: histograms are merged into
fresh :class:`LatencyHistogram` objects (``merge`` copies samples), and
traffic deltas into fresh dicts.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.common.stats import LatencyHistogram
from repro.ycsb.runner import RunResult, _busy_seconds


def merge_traffic_deltas(
    deltas: Sequence[Dict[str, Dict[str, Dict[str, float]]]],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Field-wise sum of per-device, per-lane traffic snapshots.

    Accepts the ``device -> lane -> field -> value`` dict shape that
    :meth:`TrafficStats.snapshot` and :class:`RunResult.traffic` use.
    Devices/lanes missing from some shards contribute zero.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for delta in deltas:
        for device, lanes in delta.items():
            dev = out.setdefault(device, {})
            for lane, fields in lanes.items():
                tgt = dev.setdefault(lane, dict.fromkeys(fields, 0))
                for name, value in fields.items():
                    tgt[name] = tgt.get(name, 0) + value
    return out


def merge_latency_maps(
    maps: Sequence[Dict[str, LatencyHistogram]],
) -> Dict[str, LatencyHistogram]:
    """Merge per-op histogram maps into fresh histograms (inputs untouched)."""
    out: Dict[str, LatencyHistogram] = {}
    for latency_map in maps:
        for op, hist in latency_map.items():
            tgt = out.get(op)
            if tgt is None:
                tgt = out[op] = LatencyHistogram(
                    initial_capacity=max(16, hist.count)
                )
            tgt.merge(hist)
    return out


def merge_run_results(shards: Sequence[RunResult]) -> RunResult:
    """Fold K concurrent shards of one logical workload into one result.

    Semantics: the shards ran *in parallel* against disjoint slices of
    the work (each with its own devices), so

    * ``operations``, ``clients``, ``background_threads``, traffic bytes
      and space are summed;
    * ``elapsed_s`` is the slowest shard (the run finishes when the last
      shard does) and throughput is total ops over that;
    * latency histograms are concatenated (every op keeps its sample);
    * per-device utilization is recomputed from merged busy time over the
      merged elapsed.
    """
    if not shards:
        raise ValueError("merge_run_results needs at least one shard")
    first = shards[0]
    for other in shards[1:]:
        if other.workload_name != first.workload_name:
            raise ValueError(
                "cannot merge results from different workloads: "
                f"{first.workload_name!r} vs {other.workload_name!r}"
            )
    traffic = merge_traffic_deltas([s.traffic for s in shards])
    elapsed = max(s.elapsed_s for s in shards)
    operations = sum(s.operations for s in shards)
    space: Dict[str, int] = {}
    for s in shards:
        for device, used in s.space_used.items():
            space[device] = space.get(device, 0) + used
    utilization = {
        device: min(1.0, _busy_seconds(lanes) / elapsed) if elapsed > 0 else 0.0
        for device, lanes in traffic.items()
    }
    return RunResult(
        store_name=first.store_name,
        workload_name=first.workload_name,
        operations=operations,
        clients=sum(s.clients for s in shards),
        background_threads=sum(s.background_threads for s in shards),
        elapsed_s=elapsed,
        throughput_ops=operations / elapsed if elapsed > 0 else 0.0,
        latency_by_op=merge_latency_maps([s.latency_by_op for s in shards]),
        traffic=traffic,
        utilization=utilization,
        space_used=space,
    )

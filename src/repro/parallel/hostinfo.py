"""Host-shape metadata for timing records.

Wall-clock numbers only compare meaningfully within one "host shape":
same core count, same architecture, same worker count.  The perf
trajectory stamps every run with this metadata and skips speedup
computation when the baseline's shape differs.
"""

from __future__ import annotations

import os
import platform
from typing import Optional


def host_metadata(workers: int = 1) -> dict:
    """CPU / python / worker-count facts to record next to timings."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "python": platform.python_version(),
        "workers": workers,
    }


def same_host_shape(a: Optional[dict], b: Optional[dict]) -> bool:
    """Whether two runs' timings are comparable.

    Entries recorded before host metadata existed (``None``) are treated
    as same-shape: they came from the single-host serial-only era, and
    refusing to compare would orphan the whole existing trajectory.
    """
    if a is None or b is None:
        return True
    return all(a.get(k) == b.get(k) for k in ("cpu_count", "machine", "workers"))

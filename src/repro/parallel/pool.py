"""Process-pool job scheduling with deterministic collection.

A :class:`Job` is a picklable top-level callable plus its arguments, an
optional per-job seed, and a label.  :func:`run_jobs` executes a list of
jobs either in-process (``workers=1`` — the exact serial code path) or
across a process pool, and always returns one :class:`JobResult` per job
*in submission order*, regardless of completion order.  Each result
carries the job's own wall-clock seconds (measured inside the worker,
excluding queue wait) and, on failure, the formatted traceback instead
of an exception — a 40-cell figure grid should report every broken cell,
not die on the first.

Determinism contract:

* the scheduler never reorders results — merging shard K's output always
  sees shards ``0..K-1`` first, so float reductions associate the same
  way on every run at every worker count;
* a job's randomness must come only from its ``seed`` (or from seeds
  baked into its arguments); :func:`derive_seeds` turns one root seed
  into independent, stable per-job streams via
  :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import multiprocessing as mp

import numpy as np

from repro import obs


@dataclass(frozen=True)
class Job:
    """One unit of independent work: callable + seed + label.

    ``fn`` must be picklable (a module-level function) when the pool runs
    with more than one worker.  When ``seed`` is not ``None`` it is passed
    to ``fn`` as a ``seed=`` keyword argument, making the job's RNG stream
    an explicit part of its identity.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""


@dataclass
class JobResult:
    """Outcome of one job: its value or its traceback, plus timing."""

    index: int
    label: str
    seconds: float
    ok: bool
    value: Any = None
    error: str = ""

    def unwrap(self) -> Any:
        """The job's value, or a ``RuntimeError`` carrying its traceback."""
        if not self.ok:
            raise RuntimeError(
                f"job {self.index} ({self.label or 'unlabelled'}) failed:\n{self.error}"
            )
        return self.value


def derive_seeds(root_seed: int, n: int) -> list[int]:
    """``n`` independent 32-bit seeds derived deterministically from one root.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams are
    statistically independent and stable across numpy versions — the same
    root always yields the same per-job seeds, on every host.
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(c.generate_state(1)[0]) for c in children]


def default_workers() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def _call(job: Job) -> tuple[float, bool, Any, str]:
    """Execute one job, timing just the call and capturing any failure."""
    kwargs = dict(job.kwargs)
    if job.seed is not None:
        kwargs["seed"] = job.seed
    t0 = time.perf_counter()
    try:
        value = job.fn(*job.args, **kwargs)
        return time.perf_counter() - t0, True, value, ""
    except Exception:
        return time.perf_counter() - t0, False, None, traceback.format_exc()


def _call_indexed(payload: tuple[int, Job]) -> tuple[int, float, bool, Any, str]:
    index, job = payload
    seconds, ok, value, error = _call(job)
    return index, seconds, ok, value, error


def _call_traced(job: Job) -> tuple[float, bool, Any, str, dict]:
    """Run one job under a fresh, private trace recorder.

    Returns the job outcome plus the exported trace shard.  Every traced
    job — serial or pooled — records into its own recorder, so the shards
    the scheduler absorbs (in submission order) are identical at any
    worker count.  The previous ambient recorder is restored afterwards,
    which on the serial path hands control back to the caller's recorder.
    """
    prev = obs.RECORDER
    capacity = prev.capacity if prev is not None else obs.DEFAULT_CAPACITY
    rec = obs.install(capacity=capacity)
    try:
        seconds, ok, value, error = _call(job)
    finally:
        obs.RECORDER = prev
    return seconds, ok, value, error, rec.to_doc()


def _call_traced_indexed(
    payload: tuple[int, Job]
) -> tuple[int, float, bool, Any, str, dict]:
    index, job = payload
    seconds, ok, value, error, doc = _call_traced(job)
    return index, seconds, ok, value, error, doc


def _pool_context() -> mp.context.BaseContext:
    # fork keeps worker start-up at milliseconds and needs no re-import of
    # the (numpy-heavy) repro modules; fall back to the platform default
    # where fork is unavailable (the jobs are picklable either way).
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return mp.get_context()


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    raise_on_error: bool = False,
) -> list[JobResult]:
    """Run ``jobs`` and return their results in submission order.

    ``workers=1`` executes in-process (no pickling, no subprocesses) —
    the exact serial path.  ``workers>1`` fans jobs across a process pool;
    results are still collected by index, so output is independent of
    completion order.  ``workers<=0`` means "one per core".

    Failures are captured per job (``ok=False`` + traceback text) unless
    ``raise_on_error`` is set, in which case the first failed job (by
    submission order) raises after all jobs finish.
    """
    jobs = list(jobs)
    if workers <= 0:
        workers = default_workers()
    # With an ambient recorder installed, every job records into its own
    # shard (even serially) and the shards are folded back here in
    # submission order — so the merged trace, like the results, is a pure
    # function of the job list at any worker count.
    parent_recorder = obs.RECORDER
    traced = parent_recorder is not None
    trace_docs: list[Optional[dict]] = [None] * len(jobs)
    results: list[JobResult] = []
    if workers == 1 or len(jobs) <= 1:
        for index, job in enumerate(jobs):
            if traced:
                seconds, ok, value, error, doc = _call_traced(job)
                trace_docs[index] = doc
            else:
                seconds, ok, value, error = _call(job)
            results.append(
                JobResult(index, job.label, seconds, ok, value, error)
            )
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)), mp_context=_pool_context()
        ) as pool:
            by_index: dict[int, JobResult] = {}
            if traced:
                for index, seconds, ok, value, error, doc in pool.map(
                    _call_traced_indexed, list(enumerate(jobs)), chunksize=1
                ):
                    by_index[index] = JobResult(
                        index, jobs[index].label, seconds, ok, value, error
                    )
                    trace_docs[index] = doc
            else:
                for index, seconds, ok, value, error in pool.map(
                    _call_indexed, list(enumerate(jobs)), chunksize=1
                ):
                    by_index[index] = JobResult(
                        index, jobs[index].label, seconds, ok, value, error
                    )
        results = [by_index[i] for i in range(len(jobs))]
    if traced:
        for doc in trace_docs:
            if doc is not None:
                parent_recorder.absorb(doc)
    if raise_on_error:
        for r in results:
            r.unwrap()
    return results


def unwrap_all(results: Sequence[JobResult]) -> list[Any]:
    """Values of all results in order; raises on the first failed job."""
    return [r.unwrap() for r in results]


def timing_records(results: Sequence[JobResult]) -> list[dict]:
    """Per-job timing rows, JSON-ready (for CI artifacts)."""
    return [
        {
            "index": r.index,
            "label": r.label,
            "seconds": round(r.seconds, 6),
            "ok": r.ok,
        }
        for r in results
    ]

"""Deterministic multiprocess fan-out for the repro harnesses.

The evaluation grid — figure cells, sweep points, crash-matrix points —
is embarrassingly parallel: every cell builds its own stores, seeds its
own RNG streams, and returns plain data.  This package supplies the
three pieces that make fanning those cells across processes *safe*:

* :mod:`repro.parallel.pool` — the :class:`Job` abstraction and
  :func:`run_jobs`, a scheduler that preserves submission order, derives
  per-job seeds, and captures per-job timing and failures;
* :mod:`repro.parallel.merge` — exact reducers for the result types the
  harnesses produce (:class:`TrafficStats` lanes, latency histograms,
  whole :class:`RunResult` shards), so a sharded run collapses to the
  same aggregates regardless of worker count;
* :mod:`repro.parallel.hostinfo` — host-shape metadata recorded next to
  timing numbers so cross-machine comparisons stay interpretable.

The invariant every consumer relies on: ``workers=1`` executes the jobs
in-process, in order, and is byte-identical to the pre-parallel serial
code path; ``workers=N`` changes wall-clock only, never results.
"""

from repro.parallel.hostinfo import host_metadata, same_host_shape
from repro.parallel.merge import (
    merge_latency_maps,
    merge_run_results,
    merge_traffic_deltas,
)
from repro.parallel.pool import Job, JobResult, derive_seeds, run_jobs

__all__ = [
    "Job",
    "JobResult",
    "derive_seeds",
    "run_jobs",
    "merge_latency_maps",
    "merge_run_results",
    "merge_traffic_deltas",
    "host_metadata",
    "same_host_shape",
]

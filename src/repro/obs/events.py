"""Typed trace events and the ring-buffered :class:`TraceRecorder`.

The recorder is the collection half of :mod:`repro.obs`: instrumented code
(devices, engines, the migration scheduler, the workload runner) emits
typed events into an ambient recorder when one is installed and does
*nothing* when none is — the check is one module-global load per event
site, so tracing is zero-cost when off.

Two invariants every emitter must respect (regression-tested, and relied
on by the serial-vs-parallel digest checks in CI):

* **No RNG.**  Emitting an event never draws from any random stream; a
  traced run consumes byte-for-byte the same RNG sequence as an untraced
  one.
* **No simulated time.**  Timestamps are *read* from the simulation (a
  device's cumulative busy seconds), never advanced by it.  Events that
  fire in a clockless context (fault injection) carry ``t=None``.

Memory is bounded: the event ring keeps the newest ``capacity`` events
(``dropped`` counts the overflow), while per-device, per-lane byte/IO
totals are aggregated outside the ring, so :func:`repro.obs.report.summarize`
reconstructs exact traffic totals even from a truncated ring.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

#: Default ring capacity; a smoke-mode benchmark fits, a full run keeps
#: the newest window plus exact aggregate totals.
DEFAULT_CAPACITY = 1 << 16

#: Fields of one aggregated traffic lane (mirrors ``TrafficStats`` bytes/IOs).
LANE_FIELDS = ("read_bytes", "write_bytes", "read_ios", "write_ios")

#: Trace file format version (bumped on incompatible JSONL changes).
TRACE_VERSION = 1


@dataclass(slots=True)
class TraceEvent:
    """One typed event: sequence number, simulated-time stamp, payload.

    ``depth`` is the span-nesting depth at emission (see
    :meth:`TraceRecorder.begin` / :meth:`TraceRecorder.end`); the report
    module rebuilds cascade trees from it.  ``t`` is simulated seconds
    (device busy time at the emitting site) or ``None`` when the emitter
    has no clock.  ``data`` holds only JSON-safe scalars.
    """

    seq: int
    t: Optional[float]
    type: str
    depth: int
    data: dict

    def to_json(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t,
            "type": self.type,
            "depth": self.depth,
            "data": self.data,
        }


class TraceRecorder:
    """Bounded-memory collector of :class:`TraceEvent` streams.

    Alongside the ring it keeps three always-exact aggregates:

    * :attr:`lane_totals` — ``device -> lane -> {read/write bytes, IOs}``,
      updated on every :meth:`io` call (never truncated);
    * :attr:`counts` — events emitted per type (dropped events included);
    * :attr:`phases` — phase-scope reports appended by
      :class:`repro.obs.metrics.MetricScope`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._depth = 0
        self.dropped = 0
        self.counts: dict[str, int] = {}
        self.lane_totals: dict[str, dict[str, dict[str, int]]] = {}
        self.phases: list[dict] = []

    # ------------------------------------------------------------ emitting

    def emit(self, etype: str, t: Optional[float] = None, **data) -> None:
        """Append one event.  ``data`` values must be JSON-safe scalars."""
        self._seq += 1
        self.counts[etype] = self.counts.get(etype, 0) + 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self._seq, t, etype, self._depth, data))

    def begin(self, etype: str, t: Optional[float] = None, **data) -> None:
        """Open a span: emits ``<etype>_begin`` and deepens nesting."""
        self.emit(f"{etype}_begin", t, **data)
        self._depth += 1

    def end(self, etype: str, t: Optional[float] = None, **data) -> None:
        """Close a span: shallows nesting and emits ``<etype>_end``."""
        self._depth = max(0, self._depth - 1)
        self.emit(f"{etype}_end", t, **data)

    def io(
        self,
        device: str,
        lane: str,
        rw: str,
        nbytes: int,
        ios: int,
        t: Optional[float] = None,
    ) -> None:
        """Record one device I/O: exact lane aggregation + a ring event.

        ``rw`` is ``"read"`` or ``"write"``; ``lane`` is a
        :class:`repro.simssd.traffic.TrafficKind` value.
        """
        lanes = self.lane_totals.setdefault(device, {})
        tot = lanes.get(lane)
        if tot is None:
            tot = lanes[lane] = dict.fromkeys(LANE_FIELDS, 0)
        tot[f"{rw}_bytes"] += nbytes
        tot[f"{rw}_ios"] += ios
        self.emit("io", t, device=device, lane=lane, rw=rw, bytes=nbytes, ios=ios)

    def note_phase(self, report: dict) -> None:
        """Attach one phase-scope report (see :mod:`repro.obs.metrics`)."""
        self.phases.append(report)

    # ----------------------------------------------------------- accessors

    @property
    def num_events(self) -> int:
        """Events currently retained in the ring."""
        return len(self._events)

    @property
    def total_events(self) -> int:
        """Events ever emitted (retained + dropped)."""
        return self._seq

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    # ------------------------------------------------------ export / merge

    def to_doc(self) -> dict:
        """The whole trace as one JSON-safe document."""
        return {
            "header": {
                "version": TRACE_VERSION,
                "capacity": self.capacity,
                "events": len(self._events),
                "total_events": self._seq,
                "dropped": self.dropped,
                "counts": dict(self.counts),
            },
            "lane_totals": {
                dev: {lane: dict(tot) for lane, tot in lanes.items()}
                for dev, lanes in self.lane_totals.items()
            },
            "phases": list(self.phases),
            "events": [ev.to_json() for ev in self._events],
        }

    def absorb(self, doc: dict) -> None:
        """Fold an exported trace document into this recorder.

        This is the shard reducer: a worker process records its own trace,
        exports it with :meth:`to_doc`, and the parent absorbs the shard
        docs *in submission order* — so the merged stream is deterministic
        and equal to the single-process stream (events are renumbered onto
        this recorder's sequence; aggregates are plain sums).
        """
        for ev in doc.get("events", ()):
            self._seq += 1
            etype = ev["type"]
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(
                TraceEvent(self._seq, ev["t"], etype, ev["depth"], ev["data"])
            )
        # Counts cover dropped events too, so fold the shard's full census
        # (not just the events replayed above), then its own drop count.
        for etype, n in doc.get("header", {}).get("counts", {}).items():
            self.counts[etype] = self.counts.get(etype, 0) + n
        self.dropped += doc.get("header", {}).get("dropped", 0)
        for dev, lanes in doc.get("lane_totals", {}).items():
            tgt_lanes = self.lane_totals.setdefault(dev, {})
            for lane, tot in lanes.items():
                tgt = tgt_lanes.setdefault(lane, dict.fromkeys(LANE_FIELDS, 0))
                for fld, v in tot.items():
                    tgt[fld] = tgt.get(fld, 0) + v
        self.phases.extend(doc.get("phases", ()))

    def export_jsonl(self, path: str) -> None:
        """Write the trace as JSON Lines: header, lane totals, phases, events."""
        doc = self.to_doc()
        with open(path, "w") as f:
            f.write(json.dumps({"kind": "header", **doc["header"]}) + "\n")
            f.write(
                json.dumps({"kind": "lane_totals", "devices": doc["lane_totals"]})
                + "\n"
            )
            for phase in doc["phases"]:
                f.write(json.dumps({"kind": "phase", **phase}) + "\n")
            for ev in doc["events"]:
                f.write(json.dumps({"kind": "event", **ev}) + "\n")


def read_trace(path: str) -> dict:
    """Load a JSONL trace back into the :meth:`TraceRecorder.to_doc` shape."""
    doc: dict = {"header": {}, "lane_totals": {}, "phases": [], "events": []}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("kind", "event")
            if kind == "header":
                doc["header"] = rec
            elif kind == "lane_totals":
                doc["lane_totals"] = rec.get("devices", {})
            elif kind == "phase":
                doc["phases"].append(rec)
            else:
                doc["events"].append(rec)
    return doc


def events_of(doc: dict, *types: str) -> Iterable[dict]:
    """The doc's ring events, optionally filtered to the given types."""
    if not types:
        return list(doc.get("events", ()))
    wanted = set(types)
    return [ev for ev in doc.get("events", ()) if ev["type"] in wanted]

"""Zero-cost-when-off tracing and phase metrics (the observability layer).

Instrumented code throughout the stack (``SimDevice``, the LSM engines,
the migration scheduler, the fault injector, the workload runner) emits
typed events into one *ambient* recorder::

    from repro import obs
    ...
    rec = obs.RECORDER
    if rec is not None:
        rec.io("nvme", "compaction", "write", nbytes, ios, t=busy_s)

When no recorder is installed (the default), every instrumentation site
is a single global load and a falsy check — no allocation, no branches
into tracing code — so untraced runs are byte-identical to pre-obs runs.

Hard invariants (see DESIGN.md, enforced by tests and CI digests):

* tracing never consumes RNG streams;
* tracing never advances simulated time (timestamps are *reads* of
  device busy-time);
* sharded traces merge deterministically in job submission order
  (:func:`~repro.obs.merge.merge_traces`), so ``--trace-out`` output is
  identical at any ``--workers`` count.

Typical harness usage::

    with obs.recording() as rec:
        ... run workload ...
        rec.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import (
    DEFAULT_CAPACITY,
    TraceEvent,
    TraceRecorder,
    events_of,
    read_trace,
)
from repro.obs.merge import merge_traces
from repro.obs.metrics import MetricScope

__all__ = [
    "DEFAULT_CAPACITY",
    "MetricScope",
    "RECORDER",
    "TraceEvent",
    "TraceRecorder",
    "active",
    "events_of",
    "install",
    "merge_traces",
    "read_trace",
    "recording",
    "uninstall",
]

#: The ambient recorder. ``None`` means tracing is off (the default); hot
#: paths read this exactly once per instrumented call.
RECORDER: Optional[TraceRecorder] = None


def install(
    recorder: Optional[TraceRecorder] = None, capacity: int = DEFAULT_CAPACITY
) -> TraceRecorder:
    """Make ``recorder`` (or a fresh one) the ambient recorder."""
    global RECORDER
    if recorder is None:
        recorder = TraceRecorder(capacity=capacity)
    RECORDER = recorder
    return recorder


def uninstall() -> Optional[TraceRecorder]:
    """Turn tracing off; returns the recorder that was installed, if any."""
    global RECORDER
    recorder, RECORDER = RECORDER, None
    return recorder


def active() -> bool:
    return RECORDER is not None


@contextmanager
def recording(
    capacity: int = DEFAULT_CAPACITY, recorder: Optional[TraceRecorder] = None
) -> Iterator[TraceRecorder]:
    """Install a recorder for the duration of the ``with`` block."""
    rec = install(recorder, capacity=capacity)
    try:
        yield rec
    finally:
        global RECORDER
        if RECORDER is rec:
            RECORDER = None

"""CLI over exported trace files.

Examples
--------
Totals and phase deltas from a bench trace::

    PYTHONPATH=src python -m repro.obs summarize results/trace.jsonl

Per-lane heat strips plus the compaction-cascade tree::

    PYTHONPATH=src python -m repro.obs timeline results/trace.jsonl --buckets 32

What changed between two runs (lane totals and event census)::

    PYTHONPATH=src python -m repro.obs diff base.jsonl candidate.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.events import read_trace
from repro.obs import report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect traces exported by the --trace-out harness flags.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="event census, lane totals, phases")
    p_sum.add_argument("trace", help="JSONL trace file")

    p_tl = sub.add_parser(
        "timeline", help="per-device per-lane heat strips + cascade tree"
    )
    p_tl.add_argument("trace", help="JSONL trace file")
    p_tl.add_argument(
        "--buckets", type=int, default=24, help="time buckets (default 24)"
    )

    p_diff = sub.add_parser("diff", help="lane-total/event-count delta of two traces")
    p_diff.add_argument("trace_a", help="baseline JSONL trace")
    p_diff.add_argument("trace_b", help="candidate JSONL trace")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        print(report.summarize(read_trace(args.trace)))
    elif args.command == "timeline":
        doc = read_trace(args.trace)
        print(report.timeline(doc, buckets=args.buckets))
        print(report.cascade(doc))
    else:
        print(
            report.diff(
                read_trace(args.trace_a),
                read_trace(args.trace_b),
                label_a=args.trace_a,
                label_b=args.trace_b,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic reducer for sharded trace documents.

When a traced run fans out across worker processes
(:func:`repro.parallel.run_jobs`), each worker records into its own fresh
:class:`~repro.obs.events.TraceRecorder` and ships the exported document
back with its result.  The parent folds the shard docs back together **in
job submission order**, which makes the merged trace a pure function of
the job list — independent of worker count or completion order, exactly
like the result digests the parallel layer already guarantees.

Mirrors the style of :mod:`repro.parallel.merge`: inputs are never
mutated, and merging is associative over concatenation of shard lists.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.events import DEFAULT_CAPACITY, TraceRecorder


def merge_traces(docs: Iterable[dict], capacity: Optional[int] = None) -> dict:
    """Fold shard trace docs (in order) into one merged document.

    ``capacity`` bounds the merged ring; by default it is sized to hold
    every retained shard event, so the merge itself never drops (shards'
    own ``dropped`` counts still carry through).
    """
    docs = list(docs)
    if capacity is None:
        capacity = max(
            DEFAULT_CAPACITY,
            sum(len(d.get("events", ())) for d in docs),
            *(d.get("header", {}).get("capacity", 0) for d in docs),
            1,
        )
    merged = TraceRecorder(capacity=capacity)
    for doc in docs:
        merged.absorb(doc)
    return merged.to_doc()

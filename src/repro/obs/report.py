"""Human-readable renderings of exported trace documents.

All renderers are pure functions of the trace doc (the
:meth:`~repro.obs.events.TraceRecorder.to_doc` /
:func:`~repro.obs.events.read_trace` shape) returning strings, so their
output is byte-stable for a given trace — the CLI layers on top and CI
can diff renderings across runs.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import LANE_FIELDS

#: Canonical lane ordering (matches ``TrafficKind`` declaration order);
#: unknown lanes sort after these, alphabetically.
_LANE_ORDER = ("foreground", "wal", "flush", "compaction", "migration", "gc")

#: Glyph ramp for the timeline heat strips (space = no traffic).
_RAMP = " .:-=+*#%@"


def _lane_key(lane: str):
    try:
        return (0, _LANE_ORDER.index(lane))
    except ValueError:
        return (1, lane)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:,.1f}{unit}" if unit != "B" else f"{n:,.0f}B"
        n /= 1024.0
    return f"{n:,.1f}GiB"  # pragma: no cover - loop always returns


def summarize(doc: dict) -> str:
    """Totals view: event census, exact per-device per-lane traffic, phases."""
    header = doc.get("header", {})
    lines = ["== trace summary =="]
    lines.append(
        "events: {retained} retained / {total} emitted ({dropped} dropped)".format(
            retained=header.get("events", len(doc.get("events", ()))),
            total=header.get("total_events", len(doc.get("events", ()))),
            dropped=header.get("dropped", 0),
        )
    )
    counts = header.get("counts", {})
    if counts:
        lines.append("event counts:")
        for etype in sorted(counts):
            lines.append(f"  {etype:<24} {counts[etype]}")
    lane_totals = doc.get("lane_totals", {})
    if lane_totals:
        lines.append("lane totals (exact, aggregated outside the ring):")
        for dev in sorted(lane_totals):
            lines.append(f"  device {dev}:")
            for lane in sorted(lane_totals[dev], key=_lane_key):
                tot = lane_totals[dev][lane]
                lines.append(
                    f"    {lane:<11} read={_fmt_bytes(tot.get('read_bytes', 0)):>12}"
                    f" ({tot.get('read_ios', 0)} ios)"
                    f"  write={_fmt_bytes(tot.get('write_bytes', 0)):>12}"
                    f" ({tot.get('write_ios', 0)} ios)"
                )
    phases = doc.get("phases", ())
    if phases:
        lines.append("phases:")
        for phase in phases:
            total_rd = total_wr = 0
            for lanes in phase.get("traffic", {}).values():
                for tot in lanes.values():
                    total_rd += tot.get("read_bytes", 0)
                    total_wr += tot.get("write_bytes", 0)
            lines.append(
                f"  {phase.get('phase', '?'):<12}"
                f" read={_fmt_bytes(total_rd):>12}  write={_fmt_bytes(total_wr):>12}"
            )
    return "\n".join(lines)


def lane_totals_from_events(doc: dict) -> dict:
    """Recompute lane totals from the retained ``io`` events only.

    Equals ``doc['lane_totals']`` exactly when the ring never dropped;
    used by tests to cross-check the two accounting paths.
    """
    out: dict = {}
    for ev in doc.get("events", ()):
        if ev["type"] != "io":
            continue
        d = ev["data"]
        tot = out.setdefault(d["device"], {}).setdefault(
            d["lane"], dict.fromkeys(LANE_FIELDS, 0)
        )
        tot[f"{d['rw']}_bytes"] += d["bytes"]
        tot[f"{d['rw']}_ios"] += d["ios"]
    return out


def timeline(doc: dict, buckets: int = 24) -> str:
    """Per-device per-lane heat strips over simulated time.

    Buckets retained ``io`` events by timestamp; each strip cell shows
    relative byte volume in that simulated-time slice.  Events without a
    timestamp (clockless emitters) are excluded.
    """
    ios = [
        ev
        for ev in doc.get("events", ())
        if ev["type"] == "io" and ev.get("t") is not None
    ]
    if not ios:
        return "== timeline ==\n(no timestamped io events in the ring)"
    tmax = max(ev["t"] for ev in ios)
    width = tmax / buckets if tmax > 0 else 1.0
    # device -> lane -> list of per-bucket byte totals
    grid: dict = {}
    for ev in ios:
        d = ev["data"]
        idx = min(buckets - 1, int(ev["t"] / width)) if tmax > 0 else 0
        row = grid.setdefault(d["device"], {}).setdefault(d["lane"], [0] * buckets)
        row[idx] += d["bytes"]
    peak = max(max(row) for lanes in grid.values() for row in lanes.values())
    lines = [
        "== timeline ==",
        f"simulated span: 0.000000s .. {tmax:.6f}s across {buckets} buckets"
        f" (peak bucket {_fmt_bytes(peak)})",
    ]
    top = len(_RAMP) - 1
    for dev in sorted(grid):
        lines.append(f"device {dev}:")
        for lane in sorted(grid[dev], key=_lane_key):
            row = grid[dev][lane]
            strip = "".join(
                _RAMP[0 if v == 0 else max(1, round(v / peak * top))] for v in row
            )
            lines.append(f"  {lane:<11} |{strip}| {_fmt_bytes(sum(row))}")
    return "\n".join(lines)


def cascade(doc: dict) -> str:
    """Span tree from retained ``*_begin`` / ``*_end`` events.

    Shows how work nests — a memtable flush fanning out into per-level
    compaction rounds, a migration job into zone demotions.  Depth comes
    from the events themselves, so a ring-truncated prefix degrades to a
    forest rather than failing.
    """
    lines = ["== cascade =="]
    open_spans = 0
    for ev in doc.get("events", ()):
        etype = ev["type"]
        if etype.endswith("_begin"):
            name = etype[: -len("_begin")]
            detail = ", ".join(f"{k}={v}" for k, v in sorted(ev["data"].items()))
            stamp = f" @{ev['t']:.6f}s" if ev.get("t") is not None else ""
            lines.append("  " * ev["depth"] + f"+ {name}{stamp}" + (f" [{detail}]" if detail else ""))
            open_spans += 1
        elif etype.endswith("_end"):
            name = etype[: -len("_end")]
            detail = ", ".join(f"{k}={v}" for k, v in sorted(ev["data"].items()))
            stamp = f" @{ev['t']:.6f}s" if ev.get("t") is not None else ""
            lines.append("  " * ev["depth"] + f"- {name}{stamp}" + (f" [{detail}]" if detail else ""))
            open_spans = max(0, open_spans - 1)
    if len(lines) == 1:
        lines.append("(no span events in the ring)")
    return "\n".join(lines)


def diff(doc_a: dict, doc_b: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Lane-total and event-census differences between two traces (B - A)."""
    lines = [f"== trace diff ({label_b} - {label_a}) =="]
    totals_a = doc_a.get("lane_totals", {})
    totals_b = doc_b.get("lane_totals", {})
    devices = sorted(set(totals_a) | set(totals_b))
    any_delta = False
    for dev in devices:
        lanes = sorted(
            set(totals_a.get(dev, {})) | set(totals_b.get(dev, {})), key=_lane_key
        )
        dev_lines = []
        for lane in lanes:
            ta = totals_a.get(dev, {}).get(lane, {})
            tb = totals_b.get(dev, {}).get(lane, {})
            deltas = {
                fld: tb.get(fld, 0) - ta.get(fld, 0)
                for fld in LANE_FIELDS
                if tb.get(fld, 0) != ta.get(fld, 0)
            }
            if deltas:
                pretty = ", ".join(f"{k}:{v:+,}" for k, v in deltas.items())
                dev_lines.append(f"    {lane:<11} {pretty}")
        if dev_lines:
            any_delta = True
            lines.append(f"  device {dev}:")
            lines.extend(dev_lines)
    counts_a = doc_a.get("header", {}).get("counts", {})
    counts_b = doc_b.get("header", {}).get("counts", {})
    count_lines = []
    for etype in sorted(set(counts_a) | set(counts_b)):
        delta = counts_b.get(etype, 0) - counts_a.get(etype, 0)
        if delta:
            count_lines.append(f"    {etype:<24} {delta:+}")
    if count_lines:
        any_delta = True
        lines.append("  event counts:")
        lines.extend(count_lines)
    if not any_delta:
        lines.append("  (traces agree on lane totals and event counts)")
    return "\n".join(lines)


def render(doc: dict, mode: str = "summarize", buckets: Optional[int] = None) -> str:
    """Dispatch helper used by the CLI for single-trace views."""
    if mode == "summarize":
        return summarize(doc)
    if mode == "timeline":
        out = timeline(doc, buckets=buckets or 24)
        return out + "\n" + cascade(doc)
    raise ValueError(f"unknown render mode: {mode!r}")

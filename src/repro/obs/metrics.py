"""Phase-scoped metric windows over ``TrafficStats`` / ``StatsRegistry``.

Benchmarks and the fault harness care about *phase deltas* — what the load
phase wrote vs what the run phase wrote vs what recovery replayed — not
end-of-process totals.  :class:`MetricScope` makes those windows first-class:
it snapshots every device's traffic ledger (and optionally a
:class:`repro.common.stats.StatsRegistry`) on entry, diffs on exit, and
publishes the delta report both on itself and into the ambient trace
recorder (when one is installed) as a ``phase`` record.

Like every part of :mod:`repro.obs`, entering or exiting a scope consumes
no RNG and moves no simulated time — it only reads counters.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


class MetricScope:
    """Context manager measuring one named phase of a run.

    Parameters
    ----------
    name:
        Phase label (``"load"``, ``"run"``, ``"recovery"``, ...).
    devices:
        Mapping of device name to an object with a ``.traffic``
        :class:`~repro.simssd.traffic.TrafficStats` (a ``SimDevice``).
    registry:
        Optional :class:`~repro.common.stats.StatsRegistry`; counter deltas
        and end-of-phase histogram stats are included in the report.
    recorder:
        Explicit :class:`~repro.obs.events.TraceRecorder` to publish into;
        defaults to the ambient ``repro.obs.RECORDER`` at exit time.

    After the ``with`` block, :attr:`report` holds the JSON-safe delta.
    """

    def __init__(
        self,
        name: str,
        devices: Mapping[str, object],
        registry=None,
        recorder=None,
    ) -> None:
        self.name = name
        self.devices = dict(devices)
        self.registry = registry
        self.recorder = recorder
        self.report: Optional[dict] = None
        self._traffic_before: Dict[str, dict] = {}
        self._counters_before: Dict[str, int] = {}

    def __enter__(self) -> "MetricScope":
        self._traffic_before = {
            name: dev.traffic.snapshot() for name, dev in self.devices.items()
        }
        if self.registry is not None:
            self._counters_before = {
                name: c.value for name, c in self.registry.counters.items()
            }
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        traffic = {}
        for name, dev in self.devices.items():
            after = dev.traffic.snapshot()
            before = self._traffic_before[name]
            traffic[name] = {
                lane: {
                    fld: after[lane][fld] - before.get(lane, {}).get(fld, 0)
                    for fld in fields
                }
                for lane, fields in after.items()
            }
        report = {"phase": self.name, "traffic": traffic}
        if self.registry is not None:
            report["counters"] = {
                name: c.value - self._counters_before.get(name, 0)
                for name, c in self.registry.counters.items()
            }
            # Histogram percentiles don't diff meaningfully, so report the
            # end-of-phase view: sample-count delta plus current quantiles.
            report["histograms"] = {
                name: {
                    "count": h.count,
                    "median": h.median,
                    "p99": h.p99,
                }
                for name, h in self.registry.histograms.items()
            }
        self.report = report
        rec = self.recorder
        if rec is None:
            from repro import obs

            rec = obs.RECORDER
        if rec is not None:
            rec.note_phase(report)

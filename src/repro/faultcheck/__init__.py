"""Crash-consistency and fault-tolerance harness.

Runs the engines under :mod:`repro.simssd.faults` fault plans — power loss
at sampled write-I/O ordinals, transient error storms — and verifies the
recovery contracts end to end:

* every synced-acknowledged write is readable after recovery;
* recovered state is a consistent prefix of the issued operations (never
  garbage, never out of order);
* transient errors are absorbed by the device retry policy, with the
  retried traffic visible in the ledger.

Entry points: :func:`run_lsm_crash_matrix`,
:func:`run_hyperdb_crash_matrix`, :func:`run_transient_absorption`, or
``python -m repro.faultcheck`` for the CLI.
"""

from repro.faultcheck.harness import (
    CrashPointResult,
    MatrixReport,
    TransientReport,
    run_hyperdb_crash_matrix,
    run_lsm_crash_matrix,
    run_transient_absorption,
)

__all__ = [
    "CrashPointResult",
    "MatrixReport",
    "TransientReport",
    "run_hyperdb_crash_matrix",
    "run_lsm_crash_matrix",
    "run_transient_absorption",
]

"""CLI for the crash-consistency harness.

Examples
--------
Run the full matrix (the CI smoke configuration)::

    PYTHONPATH=src python -m repro.faultcheck

Quick check with fewer points::

    PYTHONPATH=src python -m repro.faultcheck --lsm-points 4 --hyperdb-points 4

Exit status is non-zero when any crash point or absorption check fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.faultcheck.harness import (
    run_hyperdb_crash_matrix,
    run_lsm_crash_matrix,
    run_transient_absorption,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.faultcheck",
        description="Seeded crash-consistency and fault-tolerance matrix.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--lsm-points",
        type=int,
        default=12,
        help="crash points for the RocksDB-like baseline (default 12)",
    )
    parser.add_argument(
        "--hyperdb-points",
        type=int,
        default=10,
        help="crash points for HyperDB (default 10)",
    )
    parser.add_argument(
        "--ops", type=int, default=240, help="workload size per run"
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=0.02,
        help="per-I/O transient error rate for the absorption checks",
    )
    parser.add_argument(
        "--skip-transient",
        action="store_true",
        help="run only the crash matrices",
    )
    args = parser.parse_args(argv)

    failed = False
    reports = []
    if args.lsm_points > 0:
        reports.append(
            run_lsm_crash_matrix(
                num_points=args.lsm_points,
                seed=args.seed,
                num_ops=args.ops,
                two_tier=True,
            )
        )
    if args.hyperdb_points > 0:
        reports.append(
            run_hyperdb_crash_matrix(
                num_points=args.hyperdb_points, seed=args.seed
            )
        )
    for report in reports:
        print(report.summary())
        failed |= not report.passed

    if not args.skip_transient:
        for engine in ("rocksdb-like", "hyperdb"):
            t = run_transient_absorption(
                engine=engine,
                seed=args.seed,
                num_ops=args.ops,
                error_rate=args.error_rate,
            )
            print(t.summary())
            failed |= not t.passed

    total_points = sum(len(r.results) for r in reports)
    print(f"crash points exercised: {total_points}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI for the crash-consistency harness.

Examples
--------
Run the full matrix (the CI smoke configuration)::

    PYTHONPATH=src python -m repro.faultcheck

Quick check with fewer points::

    PYTHONPATH=src python -m repro.faultcheck --lsm-points 4 --hyperdb-points 4

Fan the crash matrices across worker processes (reports are identical at
every worker count — CI asserts the digest matches the serial run)::

    PYTHONPATH=src python -m repro.faultcheck --workers 4 --digest

Exit status is non-zero when any crash point or absorption check fails.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro import obs
from repro.faultcheck.harness import (
    run_hyperdb_crash_matrix,
    run_lsm_crash_matrix,
    run_transient_absorption,
)
from repro.parallel import host_metadata


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.faultcheck",
        description="Seeded crash-consistency and fault-tolerance matrix.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--lsm-points",
        type=int,
        default=12,
        help="crash points for the RocksDB-like baseline (default 12)",
    )
    parser.add_argument(
        "--hyperdb-points",
        type=int,
        default=10,
        help="crash points for HyperDB (default 10)",
    )
    parser.add_argument(
        "--ops", type=int, default=240, help="workload size per run"
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=0.02,
        help="per-I/O transient error rate for the absorption checks",
    )
    parser.add_argument(
        "--skip-transient",
        action="store_true",
        help="run only the crash matrices",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the crash-point fan-out (1 = serial "
        "in-process, 0 = one per core; reports are identical at any count)",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print 'DIGEST <sha256>' over all report summaries, for "
        "serial/parallel equivalence checks",
    )
    parser.add_argument(
        "--timing-out", metavar="FILE", default=None,
        help="write per-crash-point timings + host metadata as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record an obs trace (crash/fault/recovery events included) "
        "and export it as JSONL; tracing never changes the matrix verdicts",
    )
    args = parser.parse_args(argv)

    recorder = obs.install() if args.trace_out else None
    failed = False
    reports = []
    summaries: list[str] = []
    if args.lsm_points > 0:
        reports.append(
            run_lsm_crash_matrix(
                num_points=args.lsm_points,
                seed=args.seed,
                num_ops=args.ops,
                two_tier=True,
                workers=args.workers,
            )
        )
    if args.hyperdb_points > 0:
        reports.append(
            run_hyperdb_crash_matrix(
                num_points=args.hyperdb_points,
                seed=args.seed,
                workers=args.workers,
            )
        )
    for report in reports:
        summaries.append(report.summary())
        print(summaries[-1])
        failed |= not report.passed

    if not args.skip_transient:
        for engine in ("rocksdb-like", "hyperdb"):
            t = run_transient_absorption(
                engine=engine,
                seed=args.seed,
                num_ops=args.ops,
                error_rate=args.error_rate,
            )
            summaries.append(t.summary())
            print(summaries[-1])
            failed |= not t.passed

    total_points = sum(len(r.results) for r in reports)
    print(f"crash points exercised: {total_points}")
    if recorder is not None:
        obs.uninstall()
        recorder.export_jsonl(args.trace_out)
        print(
            f"trace: {recorder.total_events} events "
            f"({recorder.dropped} dropped) -> {args.trace_out}"
        )
    if args.digest:
        digest = hashlib.sha256("\n".join(summaries).encode()).hexdigest()
        print(f"DIGEST {digest}")
    if args.timing_out:
        doc = {
            "host": host_metadata(workers=args.workers),
            "matrices": [
                {
                    "engine": r.engine,
                    "points": [
                        {
                            "crash_after_write_io": p.crash_after_write_io,
                            "seconds": round(s, 6),
                            "ok": p.ok,
                        }
                        for p, s in zip(r.results, r.point_seconds)
                    ],
                }
                for r in reports
            ],
        }
        with open(args.timing_out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Workload → crash → recover → verify, over seeded fault plans.

The harness drives a deterministic workload against an engine whose devices
share one :class:`FaultInjector` (whole-node power loss), crashes it at a
sampled write-I/O ordinal, rebuilds the engine from what survived on media,
and checks the recovery contract:

* **LSM / RocksDB-like** — the recovered store must equal the state after
  some *prefix* of the issued operations, at least as long as the durable
  watermark (``WriteAheadLog.total_synced_records``): every synced-
  acknowledged write is readable, acked-but-unsynced writes may or may not
  survive (torn group commit), and nothing out-of-order or corrupt ever
  appears.
* **HyperDB** — the performance tier recovers to its last index checkpoint:
  every pre-checkpoint object must come back with its checkpoint-time
  value; post-checkpoint writes are lost (documented §3.1 semantics) and
  must read as missing, never as garbage.
* **Transient absorption** — under a seeded error rate, the device retry
  policy must absorb every fault (no ``TransientIOError`` escapes), values
  must stay intact, and the retried traffic must be visible in the ledger.

Everything is seeded: a failing crash point reproduces exactly.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.common.errors import PowerLossError, TransientIOError
from repro.parallel import Job, run_jobs
from repro.parallel.pool import unwrap_all
from repro.common.keys import KeyRange, encode_key
from repro.core.config import HyperDBConfig
from repro.core.hyperdb import HyperDB
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.nvme.config import NVMeConfig
from repro.simssd.device import SimDevice
from repro.simssd.faults import FaultInjector, FaultPlan
from repro.simssd.fs import SimFilesystem
from repro.simssd.profiles import DeviceProfile

KiB = 1024
MiB = 1024 * KiB

#: Small devices so a few hundred operations produce flushes, compactions,
#: and migrations — i.e. crash points inside every background path.
_NVME_PROFILE = DeviceProfile(
    name="nvme",
    capacity_bytes=4 * MiB,
    page_size=4096,
    read_latency_s=8e-5,
    write_latency_s=2e-5,
    read_bandwidth=6.5e9,
    write_bandwidth=3.5e9,
)
_SATA_PROFILE = DeviceProfile(
    name="sata",
    capacity_bytes=64 * MiB,
    page_size=4096,
    read_latency_s=2e-4,
    write_latency_s=6e-5,
    read_bandwidth=5.6e8,
    write_bandwidth=5.1e8,
)


# --------------------------------------------------------------- reporting


@dataclass
class CrashPointResult:
    """Outcome of one workload → crash → recover → verify cycle."""

    engine: str
    crash_after_write_io: int
    ops_issued: int = 0
    ops_acked: int = 0
    durable_watermark: int = 0
    recovered_prefix: int = -1
    wal_truncated: bool = False
    ok: bool = False
    detail: str = ""


@dataclass
class MatrixReport:
    """All crash points tried for one engine."""

    engine: str
    total_write_ios: int
    results: list[CrashPointResult] = field(default_factory=list)
    #: Per-point wall-clock seconds, parallel to ``results`` (measured
    #: inside the worker, so pool queue time is excluded).
    point_seconds: list[float] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def summary(self) -> str:
        good = sum(1 for r in self.results if r.ok)
        lines = [
            f"[{self.engine}] {good}/{len(self.results)} crash points verified "
            f"(workload spans {self.total_write_ios} write I/Os)"
        ]
        for r in self.results:
            status = "ok " if r.ok else "FAIL"
            lines.append(
                f"  {status} crash@{r.crash_after_write_io:>5}  "
                f"acked={r.ops_acked:<4} durable={r.durable_watermark:<4} "
                f"recovered_prefix={r.recovered_prefix:<4}"
                + (f" torn-wal" if r.wal_truncated else "")
                + (f"  {r.detail}" if r.detail else "")
            )
        return "\n".join(lines)


@dataclass
class TransientReport:
    """Outcome of a transient-error absorption run."""

    engine: str
    transient_faults: int = 0
    retried_ios: int = 0
    clean_bytes: int = 0
    faulty_bytes: int = 0
    backoff_seconds: float = 0.0
    errors_surfaced: int = 0
    values_verified: int = 0
    mismatches: int = 0

    @property
    def passed(self) -> bool:
        return (
            self.errors_surfaced == 0
            and self.mismatches == 0
            and self.transient_faults > 0
            and self.retried_ios > 0
            and self.faulty_bytes > self.clean_bytes
        )

    def summary(self) -> str:
        status = "ok " if self.passed else "FAIL"
        return (
            f"[{self.engine}] {status} transient absorption: "
            f"{self.transient_faults} faults absorbed via {self.retried_ios} "
            f"retried I/Os, ledger {self.clean_bytes} → {self.faulty_bytes} bytes, "
            f"{self.values_verified} values verified "
            f"({self.errors_surfaced} errors surfaced, {self.mismatches} mismatches)"
        )


# --------------------------------------------------------- LSM crash matrix


def _lsm_options() -> LSMOptions:
    # Tiny geometry: a couple hundred operations exercise flush, L0→L1
    # compaction, manifest rotation, and WAL group commits many times over.
    return LSMOptions(
        memtable_bytes=2 * KiB,
        table_size_bytes=2 * KiB,
        block_size=512,
        level0_trigger=2,
        level_base_bytes=4 * KiB,
        level_multiplier=4,
        wal_group_size=8,
        manifest_enabled=True,
    )


def _lsm_ops(seed: int, n: int) -> list[tuple[str, bytes, Optional[bytes]]]:
    """Deterministic put/delete stream over a small key universe.

    Values embed the op index so that distinct prefixes of the stream are
    byte-distinguishable during verification.
    """
    rng = random.Random(seed)
    ops: list[tuple[str, bytes, Optional[bytes]]] = []
    for i in range(n):
        key = b"key%04d" % rng.randrange(48)
        if rng.random() < 0.12:
            ops.append(("del", key, None))
        else:
            pad = bytes(rng.randrange(256) for _ in range(rng.randrange(8, 40)))
            ops.append(("put", key, b"v%05d." % i + pad))
    return ops


def _build_lsm(
    injector: Optional[FaultInjector], two_tier: bool
) -> LSMTree:
    if two_tier:
        nvme = SimDevice(_NVME_PROFILE, injector=injector)
        sata = SimDevice(_SATA_PROFILE, injector=injector)
        paths = [
            DbPath(SimFilesystem(nvme), target_bytes=24 * KiB),
            DbPath(SimFilesystem(sata), target_bytes=1 << 62),
        ]
    else:
        dev = SimDevice(_NVME_PROFILE, injector=injector)
        paths = [DbPath(SimFilesystem(dev), target_bytes=1 << 62)]
    return LSMTree(paths, _lsm_options())


def _state_after(
    ops: list[tuple[str, bytes, Optional[bytes]]], prefix: int
) -> dict[bytes, Optional[bytes]]:
    state: dict[bytes, Optional[bytes]] = {}
    for op, key, val in ops[:prefix]:
        state[key] = val if op == "put" else None
    return state


def _match_prefix(
    ops: list[tuple[str, bytes, Optional[bytes]]],
    recovered: dict[bytes, Optional[bytes]],
    lo: int,
    hi: int,
) -> int:
    """The prefix length in [lo, hi] whose state equals ``recovered``, or -1."""
    keys = {key for _, key, _ in ops}
    for prefix in range(hi, lo - 1, -1):
        state = _state_after(ops, prefix)
        if all(recovered.get(k) == state.get(k) for k in keys):
            return prefix
    return -1


def run_lsm_crash_matrix(
    num_points: int = 10,
    seed: int = 0,
    num_ops: int = 240,
    two_tier: bool = True,
    on_progress: Optional[Callable[[CrashPointResult], None]] = None,
    workers: int = 1,
) -> MatrixReport:
    """Crash the LSM engine at ``num_points`` sampled write-I/O ordinals.

    ``two_tier=True`` runs the RocksDB-like baseline configuration (levels
    spanning NVMe + SATA via db_paths, one injector for both devices).

    Each crash point is fully independent (its own injector seed, its own
    devices), so ``workers>1`` fans the points across processes via
    :mod:`repro.parallel`; the report is identical at every worker count.
    """
    engine = "rocksdb-like" if two_tier else "lsm"
    ops = _lsm_ops(seed, num_ops)

    # Probe run: same workload, no faults, to learn the write-I/O span.
    probe = FaultInjector(FaultPlan(seed=seed))
    tree = _build_lsm(probe, two_tier)
    for op, key, val in ops:
        tree.put(key, val) if op == "put" else tree.delete(key)
    total = probe.write_ios
    report = MatrixReport(engine=engine, total_write_ios=total)

    rng = random.Random(seed ^ 0x5AFE)
    points = sorted(rng.sample(range(1, total + 1), min(num_points, total)))
    jobs = [
        Job(
            _run_lsm_crash_point,
            args=(ops, point, seed, two_tier, engine),
            label=f"{engine}:crash@{point}",
        )
        for point in points
    ]
    outcomes = run_jobs(jobs, workers=workers)
    report.point_seconds = [r.seconds for r in outcomes]
    for result in unwrap_all(outcomes):
        report.results.append(result)
        if on_progress is not None:
            on_progress(result)
    return report


def _run_lsm_crash_point(
    ops: list[tuple[str, bytes, Optional[bytes]]],
    point: int,
    seed: int,
    two_tier: bool,
    engine: str,
) -> CrashPointResult:
    result = CrashPointResult(engine=engine, crash_after_write_io=point)
    injector = FaultInjector(
        FaultPlan(seed=seed * 1_000_003 + point, crash_after_write_io=point)
    )
    tree = _build_lsm(injector, two_tier)
    acked = 0
    crashed = False
    for op, key, val in ops:
        try:
            tree.put(key, val) if op == "put" else tree.delete(key)
        except PowerLossError:
            crashed = True
            break
        acked += 1
    result.ops_acked = acked
    result.ops_issued = acked + (1 if crashed else 0)
    result.durable_watermark = (
        tree.wal.total_synced_records if tree.wal is not None else acked
    )

    # Freeze whatever is on media and reopen from it.
    images = [
        DbPath(p.fs.post_crash_image(), target_bytes=p.target_bytes)
        for p in tree.paths
    ]
    scope = (
        obs.MetricScope(
            "recovery",
            {p.fs.device.profile.name: p.fs.device for p in images},
        )
        if obs.RECORDER is not None
        else nullcontext()
    )
    with scope:
        reopened = LSMTree.reopen(images, _lsm_options())
    assert reopened.recovery_report is not None
    result.wal_truncated = reopened.recovery_report.wal_truncated

    recovered: dict[bytes, Optional[bytes]] = {}
    for key in sorted({k for _, k, _ in ops}):
        value, _ = reopened.get(key)
        recovered[key] = value
    result.recovered_prefix = _match_prefix(
        ops, recovered, result.durable_watermark, result.ops_issued
    )
    if result.recovered_prefix < 0:
        result.detail = (
            "recovered state matches no op prefix >= the durable watermark"
        )
    else:
        result.ok = True
    return result


# ----------------------------------------------------- HyperDB crash matrix


def _hyperdb_config() -> HyperDBConfig:
    return HyperDBConfig(
        key_space=KeyRange(encode_key(0), encode_key(50_000)),
        nvme=NVMeConfig(
            num_partitions=2,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
    )


def _build_hyperdb(injector: Optional[FaultInjector]) -> HyperDB:
    nvme = SimDevice(_NVME_PROFILE, injector=injector)
    sata = SimDevice(_SATA_PROFILE, injector=injector)
    return HyperDB(nvme, sata, _hyperdb_config())


def _hyperdb_workloads(
    seed: int, w1_ops: int, w2_ops: int
) -> tuple[list[tuple[bytes, bytes]], list[tuple[bytes, bytes]]]:
    """Two put streams over *disjoint* key ranges.

    W2 keys are fresh so the post-checkpoint writes never overwrite or
    relocate checkpointed objects — the checkpoint's recovery guarantee
    covers exactly the W1 state.
    """
    rng = random.Random(seed)
    w1 = []
    for i in range(w1_ops):
        key = encode_key(rng.randrange(0, 2_000))
        pad = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 56)))
        w1.append((key, b"w1-%05d." % i + pad))
    w2 = []
    for i in range(w2_ops):
        key = encode_key(rng.randrange(30_000, 31_000))
        pad = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 56)))
        w2.append((key, b"w2-%05d." % i + pad))
    return w1, w2


def run_hyperdb_crash_matrix(
    num_points: int = 10,
    seed: int = 0,
    w1_ops: int = 260,
    w2_ops: int = 60,
    on_progress: Optional[Callable[[CrashPointResult], None]] = None,
    workers: int = 1,
) -> MatrixReport:
    """Crash HyperDB at sampled points *after* its index checkpoint.

    Contract (§3.1): recovery rebuilds the performance tier from the last
    checkpoint, so every checkpointed object must read back with its
    checkpoint-time value; post-checkpoint writes are lost and must read as
    missing — never as garbage.
    """
    w1, w2 = _hyperdb_workloads(seed, w1_ops, w2_ops)

    # Probe run: find the write-I/O ordinal where the checkpoint completes
    # and where the post-checkpoint workload ends.
    probe = FaultInjector(FaultPlan(seed=seed))
    db = _build_hyperdb(probe)
    for key, val in w1:
        db.put(key, val)
    db.checkpoint()
    ckpt_io = probe.write_ios
    for key, val in w2:
        db.put(key, val)
    total = probe.write_ios
    report = MatrixReport(engine="hyperdb", total_write_ios=total)
    if total <= ckpt_io:
        raise RuntimeError("post-checkpoint workload produced no write I/O")

    rng = random.Random(seed ^ 0xC4A5)
    span = range(ckpt_io + 1, total + 1)
    points = sorted(rng.sample(span, min(num_points, len(span))))
    jobs = [
        Job(
            _run_hyperdb_crash_point,
            args=(w1, w2, point, seed),
            label=f"hyperdb:crash@{point}",
        )
        for point in points
    ]
    outcomes = run_jobs(jobs, workers=workers)
    report.point_seconds = [r.seconds for r in outcomes]
    for result in unwrap_all(outcomes):
        report.results.append(result)
        if on_progress is not None:
            on_progress(result)
    return report


def _run_hyperdb_crash_point(
    w1: list[tuple[bytes, bytes]],
    w2: list[tuple[bytes, bytes]],
    point: int,
    seed: int,
) -> CrashPointResult:
    result = CrashPointResult(engine="hyperdb", crash_after_write_io=point)
    injector = FaultInjector(
        FaultPlan(seed=seed * 1_000_003 + point, crash_after_write_io=point)
    )
    db = _build_hyperdb(injector)
    checkpoint_state: dict[bytes, bytes] = {}
    for key, val in w1:
        db.put(key, val)
        checkpoint_state[key] = val
    db.checkpoint()
    result.durable_watermark = len(w1)

    acked = 0
    crashed = False
    for key, val in w2:
        try:
            db.put(key, val)
        except PowerLossError:
            crashed = True
            break
        acked += 1
    result.ops_acked = len(w1) + acked
    result.ops_issued = result.ops_acked + (1 if crashed else 0)
    if not crashed:
        result.detail = "crash point never fired during W2"
        return result

    # Reboot on the surviving media and recover from the checkpoint.
    injector.reboot()
    scope = (
        obs.MetricScope("recovery", db.devices(), registry=db.stats)
        if obs.RECORDER is not None
        else nullcontext()
    )
    with scope:
        db.recover()

    bad = 0
    for key, want in checkpoint_state.items():
        got, _ = db.get(key)
        if got != want:
            bad += 1
    lost = 0
    for key, _ in w2:
        got, _ = db.get(key)
        if got is not None:
            lost += 1  # a post-checkpoint write must read as missing
    if bad or lost:
        result.detail = (
            f"{bad} checkpointed values wrong, "
            f"{lost} post-checkpoint keys resurrected"
        )
    else:
        result.recovered_prefix = len(w1)
        result.ok = True
    return result


# ------------------------------------------------------ transient absorption


def run_transient_absorption(
    engine: str = "rocksdb-like",
    seed: int = 0,
    num_ops: int = 240,
    error_rate: float = 0.02,
) -> TransientReport:
    """Run a workload under a seeded transient-error storm and verify that
    the device retry policy absorbs every fault, values stay intact, and the
    retried traffic shows up in the ledger."""
    report = TransientReport(engine=engine)

    def run(injector: Optional[FaultInjector]) -> tuple[int, int, dict]:
        surfaced = 0
        mismatches = 0
        if engine == "hyperdb":
            db = _build_hyperdb(injector)
            expected: dict[bytes, bytes] = {}
            w1, _ = _hyperdb_workloads(seed, num_ops, 0)
            for key, val in w1:
                try:
                    db.put(key, val)
                    expected[key] = val
                except TransientIOError:
                    surfaced += 1
            devices = [db.nvme_device, db.sata_device]
            for key, want in expected.items():
                try:
                    got, _ = db.get(key)
                except TransientIOError:
                    surfaced += 1
                    continue
                if got != want:
                    mismatches += 1
        else:
            tree = _build_lsm(injector, two_tier=(engine == "rocksdb-like"))
            ops = _lsm_ops(seed, num_ops)
            for op, key, val in ops:
                try:
                    tree.put(key, val) if op == "put" else tree.delete(key)
                except TransientIOError:
                    surfaced += 1
            devices = [p.fs.device for p in tree.paths]
            final = _state_after(ops, len(ops))
            for key, want in final.items():
                try:
                    got, _ = tree.get(key)
                except TransientIOError:
                    surfaced += 1
                    continue
                if got != want:
                    mismatches += 1
            expected = final
        stats = {
            "bytes": sum(d.traffic.total_bytes() for d in devices),
            "retried": sum(d.retried_ios for d in devices),
            "verified": len(expected),
        }
        return surfaced, mismatches, stats

    _, _, clean = run(None)
    injector = FaultInjector(
        FaultPlan(
            seed=seed, read_error_rate=error_rate, write_error_rate=error_rate
        )
    )
    surfaced, mismatches, faulty = run(injector)

    report.clean_bytes = clean["bytes"]
    report.faulty_bytes = faulty["bytes"]
    report.retried_ios = faulty["retried"]
    report.transient_faults = injector.transient_faults
    report.errors_surfaced = surfaced
    report.mismatches = mismatches
    report.values_verified = faulty["verified"]
    return report

"""Per-partition hotness tracker.

Thin orchestration over the :class:`CascadingDiscriminator`: every client
read/update is recorded, and migration code asks :meth:`is_hot` when
deciding whether to demote an object or park it in the hot zone.

The window capacity is sized from the number of objects the partition's
NVMe share can hold (§3.3: "we set the threshold as the number of objects
that NVMe storage can store").
"""

from __future__ import annotations

from repro.hotness.discriminator import CascadingDiscriminator


class HotnessTracker:
    """Tracks object popularity for one partition."""

    def __init__(
        self,
        partition_capacity_objects: int,
        max_filters: int = 4,
        hot_threshold: int = 3,
        bits_per_key: int = 10,
    ) -> None:
        self.discriminator = CascadingDiscriminator(
            window_capacity=max(1, partition_capacity_objects),
            max_filters=max_filters,
            hot_threshold=hot_threshold,
            bits_per_key=bits_per_key,
        )
        self.hot_hits = 0
        self.queries = 0

    def record_access(self, key: bytes) -> None:
        """Feed one client read/update into the discriminator."""
        self.discriminator.access(key)

    def is_hot(self, key: bytes) -> bool:
        """Whether the discriminator currently classifies ``key`` as hot."""
        self.queries += 1
        hot = self.discriminator.is_hot(key)
        if hot:
            self.hot_hits += 1
        return hot

    @property
    def memory_bytes(self) -> int:
        return self.discriminator.memory_bytes

    @property
    def accesses(self) -> int:
        return self.discriminator.accesses

"""The cascading discriminator (paper §3.3, Fig. 6b).

A chain of standard bloom filters:

* one **open** filter absorbs every access; each insert counts toward its
  capacity;
* when full, the filter is **sealed** and appended to a FIFO of at most
  ``max_filters`` sealed filters (the oldest is evicted);
* an object is **hot** when it appears in at least ``hot_threshold``
  *consecutive* sealed filters, scanning from the newest backwards — i.e.
  its access interval stayed below one window for several windows in a row.

The paper's configuration: 10 bits per object (<1% false positives), up to
four sealed filters, hot when present in at least three.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.bloom import BloomFilter, base_hashes, hash_many


class CascadingDiscriminator:
    """Windowed access-interval detector over bloom filters."""

    def __init__(
        self,
        window_capacity: int,
        max_filters: int = 4,
        hot_threshold: int = 3,
        bits_per_key: int = 10,
    ) -> None:
        if window_capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {window_capacity}")
        if not 1 <= hot_threshold <= max_filters:
            raise ValueError(
                f"hot_threshold ({hot_threshold}) must be in [1, max_filters"
                f"={max_filters}]"
            )
        self.window_capacity = window_capacity
        self.max_filters = max_filters
        self.hot_threshold = hot_threshold
        self.bits_per_key = bits_per_key
        self._open = BloomFilter(window_capacity, bits_per_key)
        self._sealed: deque[BloomFilter] = deque()  # newest at the right
        #: Base hashes of accesses not yet scattered into the open
        #: filter's bits.  The open window is never probed (``is_hot``
        #: scans sealed filters only), so bit placement can be deferred
        #: and vectorized at seal time; counts stay exact per access.
        self._pending: list[tuple[int, int]] = []
        self.accesses = 0
        self.windows_sealed = 0

    def access(self, key: bytes) -> None:
        """Record one read or update of ``key``."""
        o = self._open
        self._pending.append(base_hashes(key))
        o._count += 1
        self.accesses += 1
        # Inlined ``is_full`` (this runs once per store operation).
        if o._count >= o.capacity:
            self._seal()

    def _seal(self) -> None:
        self._open.scatter_hashed(self._pending)
        self._pending.clear()
        self._sealed.append(self._open)
        self.windows_sealed += 1
        if len(self._sealed) > self.max_filters:
            self._sealed.popleft()
        self._open = BloomFilter(self.window_capacity, self.bits_per_key)

    def is_hot(self, key: bytes) -> bool:
        """Whether ``key`` was seen in >= ``hot_threshold`` consecutive
        sealed windows (newest backwards)."""
        if len(self._sealed) < self.hot_threshold:
            return False
        h1, h2 = base_hashes(key)  # hash once, probe the whole chain
        run = 0
        best = 0
        for bf in reversed(self._sealed):
            if bf.contains_hashed(h1, h2):
                run += 1
                best = max(best, run)
            else:
                run = 0
        return best >= self.hot_threshold

    def is_hot_many(self, keys: "list[bytes]") -> "np.ndarray":
        """Vectorized :meth:`is_hot` over a key batch.

        Hashes the batch once (:func:`hash_many`), probes every sealed
        filter with :meth:`BloomFilter.contains_many`, and computes the
        longest consecutive-membership run newest-backwards columnar-wise.
        ``out[i] == is_hot(keys[i])`` exactly — only legal while no
        ``access`` lands between the probe and the verdicts' use (the
        migration collector holds that invariant: demotion never records
        accesses).
        """
        n = len(keys)
        if n == 0 or len(self._sealed) < self.hot_threshold:
            return np.zeros(n, dtype=bool)
        hashes = hash_many(keys)
        run = np.zeros(n, dtype=np.int64)
        best = np.zeros(n, dtype=np.int64)
        for bf in reversed(self._sealed):
            member = bf.contains_many(hashes)
            run = np.where(member, run + 1, 0)
            best = np.maximum(best, run)
        return best >= self.hot_threshold

    @property
    def num_sealed(self) -> int:
        return len(self._sealed)

    @property
    def memory_bytes(self) -> int:
        """Total filter memory — the tracker's footprint budget."""
        return self._open.size_bytes + sum(bf.size_bytes for bf in self._sealed)

    def reset(self) -> None:
        self._sealed.clear()
        self._open = BloomFilter(self.window_capacity, self.bits_per_key)
        self._pending.clear()
        self.accesses = 0

"""Access-interval analysis (reproduces paper Fig. 6a).

Given an access trace (a sequence of keys), these helpers compute, per
object, the conditional probability

    P( t_next < t  |  the last s intervals were all < t )

— the statistical basis for interval-based hotness detection: if the
probability is high, "recently re-accessed within a window" predicts
"will be re-accessed within the window".

Traces of integer key ids (the common case: YCSB key sequences) are grouped
with one stable argsort instead of a per-access Python loop; arbitrary
hashable keys fall back to the loop.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Sequence

import numpy as np


def access_intervals(trace: Sequence[Hashable]) -> Dict[Hashable, np.ndarray]:
    """Per-object arrays of gaps (in accesses) between consecutive accesses."""
    arr = np.asarray(trace)
    if arr.ndim == 1 and arr.dtype.kind in "iu" and len(arr) > 0:
        # Stable argsort groups each key's access positions in trace order.
        order = np.argsort(arr, kind="stable")
        sorted_keys = arr[order]
        starts = np.flatnonzero(np.diff(sorted_keys)) + 1
        groups = np.split(order, starts)
        return {
            int(sorted_keys[g[0]]): np.diff(g)
            for g in groups
            if len(g) >= 2
        }
    positions: Dict[Hashable, list[int]] = defaultdict(list)
    for pos, key in enumerate(trace):
        positions[key].append(pos)
    return {
        key: np.diff(np.asarray(p))
        for key, p in positions.items()
        if len(p) >= 2
    }


def _run_lengths(below: np.ndarray) -> np.ndarray:
    """``run[i]`` = count of consecutive True values ending at index ``i``."""
    idx = np.arange(len(below))
    last_false = np.maximum.accumulate(np.where(~below, idx, -1))
    return idx - last_false


def interval_conditional_probabilities(
    trace: Sequence[Hashable],
    threshold: int,
    history: int = 1,
) -> np.ndarray:
    """Per-object conditional probabilities for one (threshold, history) cell.

    Parameters
    ----------
    trace:
        The access sequence.
    threshold:
        ``t`` — interval bound, in number of accesses (the paper expresses it
        as a fraction of the workload size).
    history:
        ``s`` — how many consecutive past intervals must be below ``t``.

    Returns
    -------
    One probability per object that produced at least one conditioning event;
    objects with no qualifying history are excluded (as in the paper's
    per-object boxplots).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if history < 1:
        raise ValueError(f"history must be >= 1, got {history}")
    probs: list[float] = []
    for intervals in access_intervals(trace).values():
        if len(intervals) <= history:
            continue
        below = intervals < threshold
        # Conditioning events: `history` consecutive below-threshold
        # intervals ending at i, with interval i+1 left to test.
        cond = _run_lengths(below)[:-1] >= history
        events = int(np.count_nonzero(cond))
        if events:
            hits = int(np.count_nonzero(cond & below[1:]))
            probs.append(hits / events)
    return np.asarray(probs, dtype=np.float64)


def probability_summary(probs: np.ndarray) -> Dict[str, float]:
    """Median and quartiles of the per-object probabilities (boxplot stats).

    ``objects`` is the integer number of objects summarized.  An empty
    input yields NaN statistics with ``objects == 0`` — distinguishable
    from a populated trace whose objects are all cold (real 0.0 stats).
    """
    if len(probs) == 0:
        return {
            "median": float("nan"),
            "p25": float("nan"),
            "p75": float("nan"),
            "objects": 0,
        }
    return {
        "median": float(np.percentile(probs, 50)),
        "p25": float(np.percentile(probs, 25)),
        "p75": float(np.percentile(probs, 75)),
        "objects": int(len(probs)),
    }

"""Lightweight object-hotness tracking (paper §3.3).

HyperDB estimates object popularity from *access intervals*: an object whose
recent accesses all fell within a bounded window is very likely to be
accessed again soon (Fig. 6a).  The :class:`CascadingDiscriminator` detects
this with a FIFO chain of fixed-capacity bloom filters — each sealed filter
represents one access window, and membership in a continuous run of filters
means every recent access interval was shorter than the window.
"""

from repro.hotness.discriminator import CascadingDiscriminator
from repro.hotness.tracker import HotnessTracker
from repro.hotness.interval import (
    access_intervals,
    interval_conditional_probabilities,
)

__all__ = [
    "CascadingDiscriminator",
    "HotnessTracker",
    "access_intervals",
    "interval_conditional_probabilities",
]

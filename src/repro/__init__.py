"""HyperDB reproduction (Zhou et al., ICPP 2024).

A tiered key-value store over simulated heterogeneous SSD storage, with the
paper's baselines, workloads, and benchmark harness.  Public entry points:

>>> from repro import HyperDB, HyperDBConfig, KeyRange, encode_key
>>> from repro import NVME_PROFILE, SATA_PROFILE, SimDevice
>>> nvme = SimDevice(NVME_PROFILE.with_capacity(4 << 20))
>>> sata = SimDevice(SATA_PROFILE.with_capacity(64 << 20))
>>> db = HyperDB(nvme, sata, HyperDBConfig(
...     key_space=KeyRange(encode_key(0), encode_key(100_000))))
>>> db.put(encode_key(1), b"hello")  # doctest: +ELLIPSIS
...
>>> db.get(encode_key(1))[0]
b'hello'

Sub-packages: :mod:`repro.core` (HyperDB), :mod:`repro.baselines`
(RocksDB-like, RocksDB-SC, PrismDB-like), :mod:`repro.ycsb` (workloads),
:mod:`repro.bench` (figure harness), and the substrates
:mod:`repro.simssd`, :mod:`repro.lsm`, :mod:`repro.nvme`,
:mod:`repro.hotness`, :mod:`repro.migration`.
"""

from repro.common.errors import (
    CorruptionError,
    PowerLossError,
    RecoveryError,
    TransientIOError,
)
from repro.common.keys import KeyRange, decode_key, encode_key
from repro.core import HyperDB, HyperDBConfig, KVStore
from repro.simssd import (
    NVME_PROFILE,
    SATA_PROFILE,
    DeviceProfile,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimDevice,
)

__version__ = "1.0.0"

__all__ = [
    "HyperDB",
    "HyperDBConfig",
    "KVStore",
    "KeyRange",
    "encode_key",
    "decode_key",
    "NVME_PROFILE",
    "SATA_PROFILE",
    "DeviceProfile",
    "SimDevice",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "CorruptionError",
    "TransientIOError",
    "PowerLossError",
    "RecoveryError",
    "__version__",
]

"""Per-category I/O traffic accounting.

Every device I/O is tagged with a :class:`TrafficKind` so the harness can
break down bandwidth and write volume the way the paper does: foreground
requests vs WAL vs flush vs compaction vs migration (Figs. 2, 3, 11).

Busy time is split into two components:

* **transfer** — ``bytes / bandwidth``; consumes the device's data channel
  and cannot be parallelized away on a single device;
* **latency** — per-command setup time; overlapping requests (more client
  or background threads) hide it.

The run-time model combines them as
``elapsed ≥ transfer + latency / concurrency``, which is what lets a single
compaction thread under-utilize a device while eight threads saturate it
(paper Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np


def _accumulate_seeded(seed: float, deltas: "np.ndarray") -> "np.ndarray":
    """Sequential running sums of ``seed + deltas[0] + ... + deltas[i]``.

    ``np.add.accumulate`` is strictly left-to-right, so every intermediate
    value — and in particular the final one — is bit-identical to a scalar
    ``+=`` loop applying the same deltas in the same order.  (``np.sum``
    would not be: its pairwise summation associates differently.)
    """
    out = np.empty(len(deltas) + 1)
    out[0] = seed
    out[1:] = deltas
    np.add.accumulate(out, out=out)
    return out[1:]


class TrafficKind(Enum):
    """Why an I/O was issued."""

    FOREGROUND = "foreground"   # client get/put/scan touching media directly
    WAL = "wal"                 # write-ahead-log appends
    FLUSH = "flush"             # memtable -> L1/L0 flushes
    COMPACTION = "compaction"   # LSM merge I/O
    MIGRATION = "migration"     # cross-tier demotion/promotion I/O
    GC = "gc"                   # slab / zone garbage collection
    SCRUB = "scrub"             # background integrity verification + repair


#: Categories charged to background work in utilization breakdowns.
BACKGROUND_KINDS = (
    TrafficKind.FLUSH,
    TrafficKind.COMPACTION,
    TrafficKind.MIGRATION,
    TrafficKind.GC,
    TrafficKind.SCRUB,
)

#: Lanes omitted from snapshots while they carry zero traffic.  Scrubbing
#: is off by default, and an always-present all-zero lane would perturb
#: digests computed over snapshot keys (the CI-pinned ycsb_e2e digest
#: iterates every lane present); runs that never scrub must snapshot
#: exactly as before the lane existed.
_OMIT_IDLE_KINDS = frozenset({TrafficKind.SCRUB})


@dataclass(slots=True)
class _Lane:
    read_bytes: int = 0
    write_bytes: int = 0
    read_ios: int = 0
    write_ios: int = 0
    read_latency_s: float = 0.0
    read_transfer_s: float = 0.0
    write_latency_s: float = 0.0
    write_transfer_s: float = 0.0


@dataclass
class TrafficStats:
    """Byte / IO / busy-time totals for one device, split by category.

    With ``queue_count > 1`` the ledger additionally keeps one full lane
    set *per submission queue* plus a per-queue busy total.  The
    device-wide lanes stay authoritative (every aggregate, snapshot, and
    digest reads them exactly as before); the queue ledgers are a pure
    refinement — summing a field across queues reproduces the device-wide
    field.  At the default ``queue_count=1`` no queue structures are
    allocated and every code path is byte-identical to the historical
    single-timeline ledger.
    """

    lanes: Dict[TrafficKind, _Lane] = field(
        default_factory=lambda: {k: _Lane() for k in TrafficKind}
    )
    #: Running latency+transfer total across all lanes, kept incrementally
    #: so the per-op busy-time snapshots in the runner are O(1).
    _busy_s: float = 0.0
    #: Number of submission queues tracked (1 = classic single timeline).
    queue_count: int = 1
    #: Per-queue lane sets; ``None`` iff ``queue_count == 1``.
    _queue_lanes: Optional[List[Dict[TrafficKind, _Lane]]] = field(
        default=None, init=False, repr=False
    )
    #: Per-queue running busy totals; ``None`` iff ``queue_count == 1``.
    _queue_busy: Optional[List[float]] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.queue_count < 1:
            raise ValueError(f"queue_count must be >= 1, got {self.queue_count}")
        if self.queue_count > 1:
            self._queue_lanes = [
                {k: _Lane() for k in TrafficKind} for _ in range(self.queue_count)
            ]
            self._queue_busy = [0.0] * self.queue_count

    def note_read(
        self,
        kind: TrafficKind,
        nbytes: int,
        ios: int,
        latency_s: float,
        transfer_s: float,
        queue: int = 0,
    ) -> None:
        lane = self.lanes[kind]
        lane.read_bytes += nbytes
        lane.read_ios += ios
        lane.read_latency_s += latency_s
        lane.read_transfer_s += transfer_s
        self._busy_s += latency_s + transfer_s
        if self._queue_lanes is not None:
            qlane = self._queue_lanes[queue][kind]
            qlane.read_bytes += nbytes
            qlane.read_ios += ios
            qlane.read_latency_s += latency_s
            qlane.read_transfer_s += transfer_s
            self._queue_busy[queue] += latency_s + transfer_s

    def note_write(
        self,
        kind: TrafficKind,
        nbytes: int,
        ios: int,
        latency_s: float,
        transfer_s: float,
        queue: int = 0,
    ) -> None:
        lane = self.lanes[kind]
        lane.write_bytes += nbytes
        lane.write_ios += ios
        lane.write_latency_s += latency_s
        lane.write_transfer_s += transfer_s
        self._busy_s += latency_s + transfer_s
        if self._queue_lanes is not None:
            qlane = self._queue_lanes[queue][kind]
            qlane.write_bytes += nbytes
            qlane.write_ios += ios
            qlane.write_latency_s += latency_s
            qlane.write_transfer_s += transfer_s
            self._queue_busy[queue] += latency_s + transfer_s

    def note_read_batch(
        self,
        kind: TrafficKind,
        nbytes: int,
        ios: int,
        latency_s: "np.ndarray",
        transfer_s: "np.ndarray",
        queue: int = 0,
    ) -> "np.ndarray":
        """Apply one delta for a batch of read charges on a single lane.

        Equivalent to calling :meth:`note_read` once per element of
        ``latency_s``/``transfer_s`` (``nbytes`` and ``ios`` are the *batch
        totals*, which are exact integer sums) — every float field lands on
        the bit-identical value thanks to seeded sequential accumulation.
        Returns the per-charge post-I/O busy-time values, so callers that
        attribute latency per operation can reconstruct the busy rows the
        scalar path would have observed.
        """
        lane = self.lanes[kind]
        lane.read_bytes += nbytes
        lane.read_ios += ios
        lane.read_latency_s = float(
            _accumulate_seeded(lane.read_latency_s, latency_s)[-1]
        )
        lane.read_transfer_s = float(
            _accumulate_seeded(lane.read_transfer_s, transfer_s)[-1]
        )
        busy = _accumulate_seeded(self._busy_s, latency_s + transfer_s)
        self._busy_s = float(busy[-1])
        if self._queue_lanes is not None:
            qlane = self._queue_lanes[queue][kind]
            qlane.read_bytes += nbytes
            qlane.read_ios += ios
            qlane.read_latency_s = float(
                _accumulate_seeded(qlane.read_latency_s, latency_s)[-1]
            )
            qlane.read_transfer_s = float(
                _accumulate_seeded(qlane.read_transfer_s, transfer_s)[-1]
            )
            self._queue_busy[queue] = float(
                _accumulate_seeded(self._queue_busy[queue], latency_s + transfer_s)[-1]
            )
        return busy

    def note_write_batch(
        self,
        kind: TrafficKind,
        nbytes: int,
        ios: int,
        latency_s: "np.ndarray",
        transfer_s: "np.ndarray",
        queue: int = 0,
    ) -> "np.ndarray":
        """Write-side twin of :meth:`note_read_batch`."""
        lane = self.lanes[kind]
        lane.write_bytes += nbytes
        lane.write_ios += ios
        lane.write_latency_s = float(
            _accumulate_seeded(lane.write_latency_s, latency_s)[-1]
        )
        lane.write_transfer_s = float(
            _accumulate_seeded(lane.write_transfer_s, transfer_s)[-1]
        )
        busy = _accumulate_seeded(self._busy_s, latency_s + transfer_s)
        self._busy_s = float(busy[-1])
        if self._queue_lanes is not None:
            qlane = self._queue_lanes[queue][kind]
            qlane.write_bytes += nbytes
            qlane.write_ios += ios
            qlane.write_latency_s = float(
                _accumulate_seeded(qlane.write_latency_s, latency_s)[-1]
            )
            qlane.write_transfer_s = float(
                _accumulate_seeded(qlane.write_transfer_s, transfer_s)[-1]
            )
            self._queue_busy[queue] = float(
                _accumulate_seeded(self._queue_busy[queue], latency_s + transfer_s)[-1]
            )
        return busy

    def merge(self, other: "TrafficStats") -> None:
        """Fold another ledger into this one, lane-wise.

        This is the exact reducer for sharded runs: every field is a plain
        sum, so merging K shard ledgers (in any grouping — the operation is
        associative and commutative up to float association, and exact for
        the integer byte/IO fields) equals the ledger a single unsharded
        run over the same I/Os would hold.  ``other`` is not modified.

        Queue ledgers merge pairwise under the same contract; merging
        ledgers with different queue counts is a shape error and raises.
        """
        if self.queue_count != other.queue_count:
            raise ValueError(
                f"cannot merge ledgers with different queue counts "
                f"({self.queue_count} vs {other.queue_count})"
            )
        for kind, src in other.lanes.items():
            lane = self.lanes[kind]
            lane.read_bytes += src.read_bytes
            lane.write_bytes += src.write_bytes
            lane.read_ios += src.read_ios
            lane.write_ios += src.write_ios
            lane.read_latency_s += src.read_latency_s
            lane.read_transfer_s += src.read_transfer_s
            lane.write_latency_s += src.write_latency_s
            lane.write_transfer_s += src.write_transfer_s
        self._busy_s += other._busy_s
        if self._queue_lanes is not None:
            for q in range(self.queue_count):
                mine, theirs = self._queue_lanes[q], other._queue_lanes[q]
                for kind, src in theirs.items():
                    lane = mine[kind]
                    lane.read_bytes += src.read_bytes
                    lane.write_bytes += src.write_bytes
                    lane.read_ios += src.read_ios
                    lane.write_ios += src.write_ios
                    lane.read_latency_s += src.read_latency_s
                    lane.read_transfer_s += src.read_transfer_s
                    lane.write_latency_s += src.write_latency_s
                    lane.write_transfer_s += src.write_transfer_s
                self._queue_busy[q] += other._queue_busy[q]

    # ----------------------------------------------------------- aggregates

    def _select(self, kind: TrafficKind | None) -> list[_Lane]:
        if kind is not None:
            return [self.lanes[kind]]
        return list(self.lanes.values())

    def read_bytes(self, kind: TrafficKind | None = None) -> int:
        return sum(l.read_bytes for l in self._select(kind))

    def write_bytes(self, kind: TrafficKind | None = None) -> int:
        return sum(l.write_bytes for l in self._select(kind))

    def read_ios(self, kind: TrafficKind | None = None) -> int:
        return sum(l.read_ios for l in self._select(kind))

    def write_ios(self, kind: TrafficKind | None = None) -> int:
        return sum(l.write_ios for l in self._select(kind))

    def latency_seconds(self, kind: TrafficKind | None = None) -> float:
        return sum(l.read_latency_s + l.write_latency_s for l in self._select(kind))

    def transfer_seconds(self, kind: TrafficKind | None = None) -> float:
        return sum(l.read_transfer_s + l.write_transfer_s for l in self._select(kind))

    def busy_seconds(self, kind: TrafficKind | None = None) -> float:
        """Total device time consumed (latency + transfer), optionally per lane."""
        if kind is None:
            return self._busy_s
        return self.latency_seconds(kind) + self.transfer_seconds(kind)

    def background_busy_seconds(self) -> float:
        """Busy time from flush + compaction + migration + GC."""
        return sum(self.busy_seconds(k) for k in BACKGROUND_KINDS)

    def background_bytes(self) -> int:
        return sum(
            self.read_bytes(k) + self.write_bytes(k) for k in BACKGROUND_KINDS
        )

    def total_bytes(self) -> int:
        return self.read_bytes() + self.write_bytes()

    def queue_busy_seconds(self) -> List[float]:
        """Per-queue busy totals; ``[busy_seconds()]`` at ``queue_count=1``."""
        if self._queue_busy is None:
            return [self._busy_s]
        return list(self._queue_busy)

    @staticmethod
    def _lane_dict(lanes: Dict[TrafficKind, _Lane]) -> Dict[str, Dict[str, float]]:
        return {
            kind.value: {
                "read_bytes": lane.read_bytes,
                "write_bytes": lane.write_bytes,
                "read_ios": lane.read_ios,
                "write_ios": lane.write_ios,
                "read_latency_s": lane.read_latency_s,
                "read_transfer_s": lane.read_transfer_s,
                "write_latency_s": lane.write_latency_s,
                "write_transfer_s": lane.write_transfer_s,
            }
            for kind, lane in lanes.items()
            if not (
                kind in _OMIT_IDLE_KINDS
                and lane.read_ios == 0
                and lane.write_ios == 0
                and lane.read_bytes == 0
                and lane.write_bytes == 0
            )
        }

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A plain-dict copy, for diffing run phases."""
        return self._lane_dict(self.lanes)

    def queue_snapshot(self) -> List[Dict[str, Dict[str, float]]]:
        """Per-queue plain-dict copies; ``[snapshot()]`` at ``queue_count=1``."""
        if self._queue_lanes is None:
            return [self.snapshot()]
        return [self._lane_dict(lanes) for lanes in self._queue_lanes]

    def reset(self) -> None:
        self._busy_s = 0.0
        for lane in self.lanes.values():
            lane.read_bytes = lane.write_bytes = 0
            lane.read_ios = lane.write_ios = 0
            lane.read_latency_s = lane.read_transfer_s = 0.0
            lane.write_latency_s = lane.write_transfer_s = 0.0
        if self._queue_lanes is not None:
            for lanes in self._queue_lanes:
                for lane in lanes.values():
                    lane.read_bytes = lane.write_bytes = 0
                    lane.read_ios = lane.write_ios = 0
                    lane.read_latency_s = lane.read_transfer_s = 0.0
                    lane.write_latency_s = lane.write_transfer_s = 0.0
            self._queue_busy = [0.0] * self.queue_count

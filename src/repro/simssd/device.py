"""The simulated SSD device.

A :class:`SimDevice` owns a page allocator and a traffic ledger.  It does not
store data itself — :class:`repro.simssd.fs.SimFilesystem` layers named files
with page payloads on top — but every page read/write/trim flows through the
device so that capacity and service-time accounting is exact.
"""

from __future__ import annotations

from repro.common.errors import CapacityError
from repro.simssd.profiles import DeviceProfile
from repro.simssd.traffic import TrafficKind, TrafficStats


class SimDevice:
    """A page-granularity simulated SSD.

    Parameters
    ----------
    profile:
        The cost model and geometry for this device.
    """

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile
        self.traffic = TrafficStats()
        self._allocated_pages = 0

    # -------------------------------------------------------------- space

    @property
    def page_size(self) -> int:
        return self.profile.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def allocated_pages(self) -> int:
        return self._allocated_pages

    @property
    def used_bytes(self) -> int:
        return self._allocated_pages * self.page_size

    @property
    def free_pages(self) -> int:
        return self.profile.num_pages - self._allocated_pages

    @property
    def fill_fraction(self) -> float:
        return self._allocated_pages / self.profile.num_pages

    def allocate(self, num_pages: int) -> None:
        """Reserve pages.  Raises :class:`CapacityError` when the device is full."""
        if num_pages < 0:
            raise ValueError(f"num_pages must be non-negative, got {num_pages}")
        if self._allocated_pages + num_pages > self.profile.num_pages:
            raise CapacityError(
                f"device {self.profile.name!r} full: "
                f"{self._allocated_pages}+{num_pages} > {self.profile.num_pages} pages"
            )
        self._allocated_pages += num_pages

    def trim(self, num_pages: int) -> None:
        """Release pages back to the free pool."""
        if num_pages < 0 or num_pages > self._allocated_pages:
            raise ValueError(
                f"cannot trim {num_pages} pages, {self._allocated_pages} allocated"
            )
        self._allocated_pages -= num_pages

    # ---------------------------------------------------------------- I/O

    def read_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``num_pages`` pages; returns the service time."""
        if num_pages <= 0:
            return 0.0
        ios = 1 if sequential else num_pages
        latency = ios * self.profile.read_latency_s
        transfer = num_pages * self.page_size / self.profile.read_bandwidth
        self.traffic.note_read(kind, num_pages * self.page_size, ios, latency, transfer)
        return latency + transfer

    def write_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``num_pages`` pages; returns the service time."""
        if num_pages <= 0:
            return 0.0
        ios = 1 if sequential else num_pages
        latency = ios * self.profile.write_latency_s
        transfer = num_pages * self.page_size / self.profile.write_bandwidth
        self.traffic.note_write(kind, num_pages * self.page_size, ios, latency, transfer)
        return latency + transfer

    def write_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        return self.write_pages(pages, kind, sequential)

    def read_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        return self.read_pages(pages, kind, sequential)

    # ------------------------------------------------------------ metrics

    def busy_seconds(self) -> float:
        """Total service time this device has performed."""
        return self.traffic.busy_seconds()

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` this device spent serving I/O."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.busy_seconds() / elapsed_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimDevice({self.profile.name}, "
            f"{self.used_bytes / 2**20:.1f}/{self.capacity_bytes / 2**20:.1f} MiB)"
        )

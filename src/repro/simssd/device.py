"""The simulated SSD device.

A :class:`SimDevice` owns a page allocator and a traffic ledger.  It does not
store data itself — :class:`repro.simssd.fs.SimFilesystem` layers named files
with page payloads on top — but every page read/write/trim flows through the
device so that capacity and service-time accounting is exact.

A device may carry a :class:`repro.simssd.faults.FaultInjector`: every page
I/O then consults it.  Transient failures are retried under the device's
:class:`repro.simssd.faults.RetryPolicy` — each failed attempt is charged to
the traffic ledger exactly like a successful one (the bus moved the bytes),
plus the backoff delay — and only an exhausted policy surfaces a
:class:`repro.common.errors.TransientIOError`.  Injected power loss raises
:class:`repro.common.errors.PowerLossError` and freezes the device.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.common.errors import CapacityError, TransientIOError
from repro.simssd.faults import FaultInjector, RetryPolicy
from repro.simssd.profiles import DeviceProfile
from repro.simssd.traffic import TrafficKind, TrafficStats


class SimDevice:
    """A page-granularity simulated SSD.

    Parameters
    ----------
    profile:
        The cost model and geometry for this device.
    injector:
        Optional fault injector consulted on every page I/O.  May be shared
        by several devices to model whole-node power loss.
    retry_policy:
        Backoff policy for injected transient errors (defaults to a small
        exponential policy; irrelevant when no injector is attached).
    """

    def __init__(
        self,
        profile: DeviceProfile,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.profile = profile
        self.traffic = TrafficStats()
        self.injector = injector
        self.retry_policy = retry_policy or RetryPolicy()
        #: Extra I/O attempts issued because a transient fault was retried.
        self.retried_ios = 0
        self._allocated_pages = 0
        # Page-charge memo: request shapes repeat millions of times across a
        # run, so (num_pages, sequential) -> (ios, latency, transfer) is
        # looked up instead of recomputed per I/O.  Keyed on the packed int
        # ``num_pages << 1 | sequential`` (ints hash cheaper than tuples).
        # Bounded: distinct request shapes are few, but a runaway caller
        # must not leak.
        self._read_charges: dict[int, tuple[int, float, float]] = {}
        self._write_charges: dict[int, tuple[int, float, float]] = {}

    _CHARGE_MEMO_MAX = 4096

    def _charge_for(
        self, num_pages: int, sequential: bool, write: bool
    ) -> tuple[int, float, float]:
        memo = self._write_charges if write else self._read_charges
        entry = memo.get(num_pages << 1 | sequential)
        if entry is None:
            ios = 1 if sequential else num_pages
            if write:
                latency = ios * self.profile.write_latency_s
                transfer = num_pages * self.page_size / self.profile.write_bandwidth
            else:
                latency = ios * self.profile.read_latency_s
                transfer = num_pages * self.page_size / self.profile.read_bandwidth
            entry = (ios, latency, transfer)
            if len(memo) < self._CHARGE_MEMO_MAX:
                memo[num_pages << 1 | sequential] = entry
        return entry

    @property
    def powered_off(self) -> bool:
        """True after an injected power loss (until reboot / reopen)."""
        return self.injector is not None and self.injector.crashed

    def check_power(self) -> None:
        if self.injector is not None:
            self.injector.check_power()

    # -------------------------------------------------------------- space

    @property
    def page_size(self) -> int:
        return self.profile.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def allocated_pages(self) -> int:
        return self._allocated_pages

    @property
    def used_bytes(self) -> int:
        return self._allocated_pages * self.page_size

    @property
    def free_pages(self) -> int:
        return self.profile.num_pages - self._allocated_pages

    @property
    def fill_fraction(self) -> float:
        return self._allocated_pages / self.profile.num_pages

    def allocate(self, num_pages: int) -> None:
        """Reserve pages.  Raises :class:`CapacityError` when the device is full."""
        if num_pages < 0:
            raise ValueError(f"num_pages must be non-negative, got {num_pages}")
        if self._allocated_pages + num_pages > self.profile.num_pages:
            raise CapacityError(
                f"device {self.profile.name!r} full: "
                f"{self._allocated_pages}+{num_pages} > {self.profile.num_pages} pages"
            )
        self._allocated_pages += num_pages

    def trim(self, num_pages: int) -> None:
        """Release pages back to the free pool."""
        if num_pages < 0 or num_pages > self._allocated_pages:
            raise ValueError(
                f"cannot trim {num_pages} pages, {self._allocated_pages} allocated"
            )
        self._allocated_pages -= num_pages

    # ---------------------------------------------------------------- I/O

    def read_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``num_pages`` pages; returns the service time.

        Injected transient failures are retried under :attr:`retry_policy`;
        every attempt (failed or not) is charged to the ledger.  Raises
        :class:`TransientIOError` when retries are exhausted.
        """
        if num_pages <= 0:
            return 0.0
        ios, latency, transfer = self._charge_for(num_pages, sequential, write=False)
        nbytes = num_pages * self.page_size
        rec = obs.RECORDER
        service = 0.0
        attempt = 0
        while True:
            failed = self.injector.pull_read_fault() if self.injector else False
            self.traffic.note_read(kind, nbytes, ios, latency, transfer)
            service += latency + transfer
            if rec is not None:
                rec.io(
                    self.profile.name, kind.value, "read", nbytes, ios,
                    t=self.traffic.busy_seconds(),
                )
            if not failed:
                return service
            delay = self.retry_policy.backoff_s(attempt)
            if delay is None:
                raise TransientIOError(
                    f"read of {num_pages} page(s) failed after "
                    f"{attempt + 1} attempts on {self.profile.name!r}"
                )
            self.retried_ios += ios
            if rec is not None:
                rec.emit(
                    "retry", t=self.traffic.busy_seconds(),
                    device=self.profile.name, rw="read", lane=kind.value,
                    attempt=attempt, backoff_s=delay,
                )
            service += delay
            attempt += 1

    def write_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``num_pages`` pages; returns the service time.

        Transient failures retry like :meth:`read_pages`.  An injected
        crash point raises :class:`repro.common.errors.PowerLossError`
        (never retried): the caller decides how much of the in-flight
        payload tore onto media.
        """
        if num_pages <= 0:
            return 0.0
        ios, latency, transfer = self._charge_for(num_pages, sequential, write=True)
        nbytes = num_pages * self.page_size
        rec = obs.RECORDER
        service = 0.0
        attempt = 0
        while True:
            failed = self.injector.pull_write_fault() if self.injector else False
            self.traffic.note_write(kind, nbytes, ios, latency, transfer)
            service += latency + transfer
            if rec is not None:
                rec.io(
                    self.profile.name, kind.value, "write", nbytes, ios,
                    t=self.traffic.busy_seconds(),
                )
            if not failed:
                return service
            delay = self.retry_policy.backoff_s(attempt)
            if delay is None:
                raise TransientIOError(
                    f"write of {num_pages} page(s) failed after "
                    f"{attempt + 1} attempts on {self.profile.name!r}"
                )
            self.retried_ios += ios
            if rec is not None:
                rec.emit(
                    "retry", t=self.traffic.busy_seconds(),
                    device=self.profile.name, rw="write", lane=kind.value,
                    attempt=attempt, backoff_s=delay,
                )
            service += delay
            attempt += 1

    def write_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        return self.write_pages(pages, kind, sequential)

    def read_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        return self.read_pages(pages, kind, sequential)

    # ------------------------------------------------------------ metrics

    def busy_seconds(self) -> float:
        """Total service time this device has performed."""
        return self.traffic.busy_seconds()

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` this device spent serving I/O."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.busy_seconds() / elapsed_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimDevice({self.profile.name}, "
            f"{self.used_bytes / 2**20:.1f}/{self.capacity_bytes / 2**20:.1f} MiB)"
        )

"""The simulated SSD device.

A :class:`SimDevice` owns a page allocator and a traffic ledger.  It does not
store data itself — :class:`repro.simssd.fs.SimFilesystem` layers named files
with page payloads on top — but every page read/write/trim flows through the
device so that capacity and service-time accounting is exact.

A device may carry a :class:`repro.simssd.faults.FaultInjector`: every page
I/O then consults it.  Transient failures are retried under the device's
:class:`repro.simssd.faults.RetryPolicy` — each failed attempt is charged to
the traffic ledger exactly like a successful one (the bus moved the bytes),
plus the backoff delay — and only an exhausted policy surfaces a
:class:`repro.common.errors.TransientIOError`.  Injected power loss raises
:class:`repro.common.errors.PowerLossError` and freezes the device.

When the injector's plan schedules health windows
(:class:`repro.health.state.HealthWindow`), the device additionally
enforces them: during a ``BROWNOUT`` window every charge's latency and
transfer time is scaled by the window's multiplier (the slowdown is real
ledger time); during an ``OFFLINE`` window every I/O raises
:class:`repro.common.errors.DeviceOfflineError` *before* anything is
charged or any injector counter advances.  Health transitions observed by
the device are emitted as typed ``health`` obs events.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.common.errors import (
    DeviceOfflineError,
    OutOfSpaceError,
    RetryExhaustedError,
)
from repro.health.state import HealthState
from repro.simssd.faults import FaultInjector, RetryPolicy
from repro.simssd.profiles import DeviceProfile
from repro.simssd.queues import QueueConfig, default_routing
from repro.simssd.traffic import TrafficKind, TrafficStats

#: Charge tuple for a non-positive page count: the scalar paths return 0.0
#: without touching the ledger, so batch paths must contribute exactly
#: nothing for such entries too (``_charge_for`` would bill one sequential
#: command's latency for them).
_ZERO_CHARGE = (0, 0.0, 0.0)


class _HealthEpoch:
    """Reusable context manager pinning a device's health for one operation.

    Multi-I/O mutations (semi-table merges, zone demotions, checkpoint
    images) are not prepared to lose the device halfway through: a health
    window opening between two charged writes would tear their on-media
    state.  An epoch evaluates health exactly once, at operation entry —
    an OFFLINE window rejects the whole operation *before any mutation*,
    and an observed BROWNOUT multiplier is pinned for the operation's
    duration.  Outages therefore begin and end at operation boundaries,
    never inside one; window boundary crossings take effect at the next
    epoch (or un-pinned single I/O).  Epochs nest — only the outermost
    consults the injector.
    """

    __slots__ = ("_device",)

    def __init__(self, device: "SimDevice") -> None:
        self._device = device

    def __enter__(self) -> "SimDevice":
        dev = self._device
        if dev._epoch_depth == 0 and dev._health_guarded:
            dev._pinned_health = dev._observe_health("begin", "epoch")
        dev._epoch_depth += 1
        return dev

    def __exit__(self, exc_type, exc, tb) -> bool:
        dev = self._device
        dev._epoch_depth -= 1
        if dev._epoch_depth == 0:
            dev._pinned_health = None
        return False


class SimDevice:
    """A page-granularity simulated SSD.

    Parameters
    ----------
    profile:
        The cost model and geometry for this device.
    injector:
        Optional fault injector consulted on every page I/O.  May be shared
        by several devices to model whole-node power loss.
    retry_policy:
        Backoff policy for injected transient errors (defaults to a small
        exponential policy; irrelevant when no injector is attached).
    queues:
        Optional :class:`repro.simssd.queues.QueueConfig`.  The default
        single-queue config reproduces the historical one-timeline model
        bit for bit; ``queue_count > 1`` tracks per-queue ledgers, routes
        foreground and background lanes onto disjoint queues, and lets
        :meth:`begin_background_job` spread background jobs across the
        least-busy eligible queues.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        queues: Optional[QueueConfig] = None,
    ) -> None:
        self.profile = profile
        #: Plain attribute (the profile is immutable): ``page_size`` sits on
        #: every I/O charge, where a property lookup is measurable.
        self.page_size = profile.page_size
        self.queues = queues or QueueConfig()
        self.queue_count = self.queues.queue_count
        self.queue_depth = self.queues.queue_depth
        self.traffic = TrafficStats(queue_count=self.queue_count)
        #: True when this device tracks more than one submission queue —
        #: the hot charge paths pay one attribute test for the feature.
        self._multi_queue = self.queue_count > 1
        #: Static eligible-queue sets per lane and the per-lane *current*
        #: queue (mutated by :meth:`begin_background_job`).
        self._lane_routes = default_routing(self.queue_count)
        self._lane_queue = {k: routes[0] for k, routes in self._lane_routes.items()}
        self._queue_mults = tuple(
            self.queues.multiplier(q) for q in range(self.queue_count)
        )
        self.injector = injector
        #: True when the plan schedules *queue-targeted* health windows —
        #: those are resolved per-I/O on top of device-wide health.
        self._queue_guarded = injector is not None and any(
            w.queue is not None for w in injector.plan.health_windows
        )
        self.retry_policy = retry_policy or RetryPolicy()
        #: Extra I/O attempts issued because a transient fault was retried.
        self.retried_ios = 0
        #: I/Os rejected because the device was in an OFFLINE window.
        self.offline_rejections = 0
        #: I/Os served (and surcharged) inside BROWNOUT windows.
        self.brownout_ios = 0
        #: Simulated seconds of admission-control stall charged to this
        #: device's ledger via :meth:`charge_stall`.
        self.stall_seconds = 0.0
        self._last_health = HealthState.HEALTHY
        #: True when health windows can apply to this device at all —
        #: precomputed so the hot I/O paths pay one attribute test when the
        #: feature is unused.
        self._health_guarded = (
            injector is not None and bool(injector.plan.health_windows)
        )
        #: With no injector there are no faults, retries, crashes, or health
        #: windows: a charge is exactly one ledger note plus one addition.
        #: The I/O paths collapse to that (identical float math) when this
        #: is set and no obs recorder wants per-I/O events.
        self._fastpath = injector is None
        #: ``(state, multiplier)`` pinned by an open health epoch, else None.
        self._pinned_health: Optional[tuple[HealthState, float]] = None
        self._epoch_depth = 0
        #: Context manager bracketing one multi-I/O mutation: ``with
        #: dev.health_epoch: ...`` — offline rejects atomically at entry.
        self.health_epoch = _HealthEpoch(self)
        self._allocated_pages = 0
        # Page-charge memo: request shapes repeat millions of times across a
        # run, so (num_pages, sequential) -> (ios, latency, transfer) is
        # looked up instead of recomputed per I/O.  Keyed on the packed int
        # ``num_pages << 1 | sequential`` (ints hash cheaper than tuples).
        # Bounded: distinct request shapes are few, but a runaway caller
        # must not leak.
        self._read_charges: dict[int, tuple[int, float, float]] = {}
        self._write_charges: dict[int, tuple[int, float, float]] = {}

    _CHARGE_MEMO_MAX = 4096

    def _charge_for(
        self, num_pages: int, sequential: bool, write: bool
    ) -> tuple[int, float, float]:
        memo = self._write_charges if write else self._read_charges
        entry = memo.get(num_pages << 1 | sequential)
        if entry is None:
            ios = 1 if sequential else num_pages
            if write:
                latency = ios * self.profile.write_latency_s
                transfer = num_pages * self.page_size / self.profile.write_bandwidth
            else:
                latency = ios * self.profile.read_latency_s
                transfer = num_pages * self.page_size / self.profile.read_bandwidth
            entry = (ios, latency, transfer)
            if len(memo) < self._CHARGE_MEMO_MAX:
                memo[num_pages << 1 | sequential] = entry
        return entry

    @property
    def powered_off(self) -> bool:
        """True after an injected power loss (until reboot / reopen)."""
        return self.injector is not None and self.injector.crashed

    def check_power(self) -> None:
        if self.injector is not None:
            self.injector.check_power()

    # ------------------------------------------------------------- health

    def health(self) -> HealthState:
        """Health the next I/O would see.  Pure peek: no events, no RNG."""
        if not self._health_guarded:
            return HealthState.HEALTHY
        return self.injector.health_of(self.profile.name)[0]

    def _consult_health(self, rw: str, lane: str, queue: int = 0) -> float:
        """Health multiplier for one I/O; honours an open epoch's pin.

        Queue-targeted windows compose on top of device-wide health: a
        queue brownout multiplies into the device multiplier, and a
        queue-OFFLINE rejects the I/O (charging nothing) exactly like a
        device-wide outage — but only for I/O routed to that queue.
        Queue windows are never pinned by a health epoch: they model
        per-queue service degradation, not whole-device loss, so they are
        resolved fresh at every charge.
        """
        pinned = self._pinned_health
        if pinned is not None:
            mult = pinned[1]
        else:
            mult = self._observe_health(rw, lane)[1]
        if self._queue_guarded:
            qstate, qmult = self.injector.queue_health_of(self.profile.name, queue)
            if qstate is HealthState.OFFLINE:
                self.offline_rejections += 1
                raise DeviceOfflineError(
                    f"device {self.profile.name!r} queue {queue} offline: "
                    f"{rw} rejected at global I/O "
                    f"#{self.injector.total_ios + 1} ({lane})"
                )
            mult *= qmult
        return mult

    # -------------------------------------------------------------- queues

    def queue_of(self, kind: TrafficKind) -> int:
        """The submission queue lane ``kind`` currently charges to."""
        return self._lane_queue[kind]

    def begin_background_job(self, kind: TrafficKind) -> int:
        """Place the next background job for ``kind`` on a queue.

        Picks the least-busy queue among the lane's eligible set (ties
        break to the lowest index, so placement is deterministic) and
        routes the lane's subsequent charges there until the next job
        begins.  On a single-queue device — or for the dedicated
        foreground lanes — this is a no-op returning the lane's fixed
        queue, so engines can call it unconditionally.
        """
        routes = self._lane_routes[kind]
        if len(routes) == 1:
            return routes[0]
        busy = self.traffic._queue_busy
        queue = min(routes, key=busy.__getitem__)
        self._lane_queue[kind] = queue
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "queue_route", t=self.traffic.busy_seconds(),
                device=self.profile.name, lane=kind.value, queue=queue,
            )
        return queue

    def _observe_health(self, rw: str, lane: str) -> tuple[HealthState, float]:
        """Enforce the current health window; returns ``(state, multiplier)``.

        Raises :class:`DeviceOfflineError` (charging nothing) when the
        device is OFFLINE.  Emits a ``health`` obs event whenever the state
        observed here differs from the last one observed, so traces show
        the transition at the I/O that first saw it.
        """
        state, mult = self.injector.health_of(self.profile.name)
        if state is not self._last_health:
            rec = obs.RECORDER
            if rec is not None:
                rec.emit(
                    "health", t=self.traffic.busy_seconds(),
                    device=self.profile.name, state=state.value,
                    prev=self._last_health.value,
                    io=self.injector.total_ios + 1,
                )
            self._last_health = state
        if state is HealthState.OFFLINE:
            self.offline_rejections += 1
            raise DeviceOfflineError(
                f"device {self.profile.name!r} offline: {rw} rejected at "
                f"global I/O #{self.injector.total_ios + 1} ({lane})"
            )
        return state, mult

    def charge_stall(
        self, seconds: float, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> float:
        """Charge admission-control stall time to the ledger (no bytes move).

        The delay lands in the lane's write-latency bucket so
        ``busy_seconds`` — and therefore throughput figures — reflect the
        backpressure, exactly like retry backoff reflects transient faults.
        Returns ``seconds`` for convenient service-time accumulation.
        """
        if seconds <= 0:
            return 0.0
        queue = self._lane_queue[kind] if self._multi_queue else 0
        self.traffic.note_write(kind, 0, 0, seconds, 0.0, queue=queue)
        self.stall_seconds += seconds
        return seconds

    # -------------------------------------------------------------- space

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def allocated_pages(self) -> int:
        return self._allocated_pages

    @property
    def used_bytes(self) -> int:
        return self._allocated_pages * self.page_size

    @property
    def free_pages(self) -> int:
        return self.profile.num_pages - self._allocated_pages

    @property
    def fill_fraction(self) -> float:
        return self._allocated_pages / self.profile.num_pages

    def allocate(self, num_pages: int) -> None:
        """Reserve pages.  Raises :class:`OutOfSpaceError` when the device is full."""
        if num_pages < 0:
            raise ValueError(f"num_pages must be non-negative, got {num_pages}")
        if self._allocated_pages + num_pages > self.profile.num_pages:
            raise OutOfSpaceError(
                f"device {self.profile.name!r} out of space: requested "
                f"{num_pages} page(s), {self.free_pages} of "
                f"{self.profile.num_pages} free"
            )
        self._allocated_pages += num_pages

    def trim(self, num_pages: int) -> None:
        """Release pages back to the free pool.

        Over-trimming clamps at zero instead of underflowing: freeing paths
        that race a degraded rebuild (which already released everything)
        would otherwise corrupt the allocator on an innocent double-free.
        """
        if num_pages < 0:
            raise ValueError(f"cannot trim a negative page count ({num_pages})")
        self._allocated_pages = max(0, self._allocated_pages - num_pages)

    # ---------------------------------------------------------------- I/O

    def read_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``num_pages`` pages; returns the service time.

        Injected transient failures are retried under :attr:`retry_policy`;
        every attempt (failed or not) is charged to the ledger.  Raises
        :class:`TransientIOError` when retries are exhausted.
        """
        if num_pages <= 0:
            return 0.0
        ios, latency, transfer = self._charge_for(num_pages, sequential, write=False)
        if self._fastpath and obs.RECORDER is None:
            if self._multi_queue:
                queue = self._lane_queue[kind]
                qmult = self._queue_mults[queue]
                if qmult != 1.0:
                    latency *= qmult
                    transfer *= qmult
                self.traffic.note_read(
                    kind, num_pages * self.page_size, ios, latency, transfer,
                    queue=queue,
                )
                return latency + transfer
            # Inlined ``traffic.note_read`` (identical field updates in the
            # same order): this is the single hottest call site in the
            # simulator, and the method dispatch is measurable.
            traffic = self.traffic
            lane = traffic.lanes[kind]
            lane.read_bytes += num_pages * self.page_size
            lane.read_ios += ios
            lane.read_latency_s += latency
            lane.read_transfer_s += transfer
            traffic._busy_s += latency + transfer
            return latency + transfer
        queue = 0
        if self._multi_queue:
            queue = self._lane_queue[kind]
            qmult = self._queue_mults[queue]
            if qmult != 1.0:
                latency *= qmult
                transfer *= qmult
        if self._health_guarded:
            mult = self._consult_health("read", kind.value, queue)
            if mult != 1.0:
                latency *= mult
                transfer *= mult
                self.brownout_ios += ios
        nbytes = num_pages * self.page_size
        rec = obs.RECORDER
        service = 0.0
        backoff_total = 0.0
        attempt = 0
        while True:
            failed = self.injector.pull_read_fault() if self.injector else False
            self.traffic.note_read(kind, nbytes, ios, latency, transfer, queue=queue)
            service += latency + transfer
            if rec is not None:
                rec.io(
                    self.profile.name, kind.value, "read", nbytes, ios,
                    t=self.traffic.busy_seconds(),
                )
            if not failed:
                return service
            delay = self.retry_policy.backoff_s(attempt)
            if delay is None:
                raise RetryExhaustedError(
                    f"read of {num_pages} page(s) failed after "
                    f"{attempt + 1} attempts on {self.profile.name!r} "
                    f"({backoff_total:.6f}s of backoff charged)",
                    attempts=attempt + 1,
                    total_backoff_s=backoff_total,
                )
            self.retried_ios += ios
            if rec is not None:
                rec.emit(
                    "retry_backoff", t=self.traffic.busy_seconds(),
                    device=self.profile.name, rw="read", lane=kind.value,
                    attempt=attempt, backoff_s=delay,
                )
            service += delay
            backoff_total += delay
            attempt += 1

    def write_pages(
        self, num_pages: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``num_pages`` pages; returns the service time.

        Transient failures retry like :meth:`read_pages`.  An injected
        crash point raises :class:`repro.common.errors.PowerLossError`
        (never retried): the caller decides how much of the in-flight
        payload tore onto media.
        """
        if num_pages <= 0:
            return 0.0
        ios, latency, transfer = self._charge_for(num_pages, sequential, write=True)
        if self._fastpath and obs.RECORDER is None:
            if self._multi_queue:
                queue = self._lane_queue[kind]
                qmult = self._queue_mults[queue]
                if qmult != 1.0:
                    latency *= qmult
                    transfer *= qmult
                self.traffic.note_write(
                    kind, num_pages * self.page_size, ios, latency, transfer,
                    queue=queue,
                )
                return latency + transfer
            # Inlined ``traffic.note_write``; see read_pages.
            traffic = self.traffic
            lane = traffic.lanes[kind]
            lane.write_bytes += num_pages * self.page_size
            lane.write_ios += ios
            lane.write_latency_s += latency
            lane.write_transfer_s += transfer
            traffic._busy_s += latency + transfer
            return latency + transfer
        queue = 0
        if self._multi_queue:
            queue = self._lane_queue[kind]
            qmult = self._queue_mults[queue]
            if qmult != 1.0:
                latency *= qmult
                transfer *= qmult
        if self._health_guarded:
            mult = self._consult_health("write", kind.value, queue)
            if mult != 1.0:
                latency *= mult
                transfer *= mult
                self.brownout_ios += ios
        nbytes = num_pages * self.page_size
        rec = obs.RECORDER
        service = 0.0
        backoff_total = 0.0
        attempt = 0
        while True:
            failed = self.injector.pull_write_fault() if self.injector else False
            self.traffic.note_write(kind, nbytes, ios, latency, transfer, queue=queue)
            service += latency + transfer
            if rec is not None:
                rec.io(
                    self.profile.name, kind.value, "write", nbytes, ios,
                    t=self.traffic.busy_seconds(),
                )
            if not failed:
                return service
            delay = self.retry_policy.backoff_s(attempt)
            if delay is None:
                raise RetryExhaustedError(
                    f"write of {num_pages} page(s) failed after "
                    f"{attempt + 1} attempts on {self.profile.name!r} "
                    f"({backoff_total:.6f}s of backoff charged)",
                    attempts=attempt + 1,
                    total_backoff_s=backoff_total,
                )
            self.retried_ios += ios
            if rec is not None:
                rec.emit(
                    "retry_backoff", t=self.traffic.busy_seconds(),
                    device=self.profile.name, rw="write", lane=kind.value,
                    attempt=attempt, backoff_s=delay,
                )
            service += delay
            backoff_total += delay
            attempt += 1

    def write_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = True
    ) -> float:
        """Charge a write of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        if pages <= 0:
            return 0.0
        if self._fastpath and obs.RECORDER is None and not self._multi_queue:
            # Fully inlined fastpath (memo probe + ledger note): byte-granular
            # charges are the WAL/flush hot loop and pay for zero call depth.
            entry = self._write_charges.get(pages << 1 | sequential)
            if entry is None:
                entry = self._charge_for(pages, sequential, write=True)
            ios, latency, transfer = entry
            traffic = self.traffic
            lane = traffic.lanes[kind]
            lane.write_bytes += pages * self.page_size
            lane.write_ios += ios
            lane.write_latency_s += latency
            lane.write_transfer_s += transfer
            traffic._busy_s += latency + transfer
            return latency + transfer
        return self.write_pages(pages, kind, sequential)

    def read_bytes_io(
        self, nbytes: int, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Charge a read of ``nbytes`` rounded up to whole pages."""
        pages = -(-nbytes // self.page_size)
        if pages <= 0:
            return 0.0
        if self._fastpath and obs.RECORDER is None and not self._multi_queue:
            entry = self._read_charges.get(pages << 1 | sequential)
            if entry is None:
                entry = self._charge_for(pages, sequential, write=False)
            ios, latency, transfer = entry
            traffic = self.traffic
            lane = traffic.lanes[kind]
            lane.read_bytes += pages * self.page_size
            lane.read_ios += ios
            lane.read_latency_s += latency
            lane.read_transfer_s += transfer
            traffic._busy_s += latency + transfer
            return latency + transfer
        return self.read_pages(pages, kind, sequential)

    # --------------------------------------------------------- batch I/O

    def write_pages_batch(
        self,
        page_counts: "list[int]",
        kind: TrafficKind,
        sequential: bool = True,
        busy_out: "Optional[list]" = None,
    ) -> "np.ndarray":
        """Charge a batch of writes (``page_counts[i]`` pages each) at once.

        Bit-identical to charging each element through :meth:`write_pages`
        in order: the per-charge latency/transfer values come from the same
        memo, lane float fields advance by seeded sequential accumulation
        (see :meth:`TrafficStats.note_write_batch`), and integer byte/IO
        fields by exact sums.  Returns the per-charge service times.  When
        ``busy_out`` is given it receives the device busy-seconds value
        *after* each charge — what a per-charge caller would read from
        ``traffic._busy_s`` between writes — so latency attribution can
        reconstruct per-op rows from one grouped charge.

        Only legal on the unguarded fastpath — with an injector attached
        (faults, crash points, health windows) each charge can diverge, so
        the batch degrades to the per-charge loop.  Non-positive page
        counts charge nothing (service 0.0) on both paths, exactly like
        :meth:`write_pages`; their ``busy_out`` rows repeat the running
        busy value so per-op attribution stays aligned.
        """
        n = len(page_counts)
        if n == 0:
            return np.empty(0)
        if not (self._fastpath and obs.RECORDER is None):
            traffic = self.traffic
            services = []
            for p in page_counts:
                services.append(self.write_pages(p, kind, sequential))
                if busy_out is not None:
                    busy_out.append(traffic._busy_s)
            return np.array(services)
        charge_for = self._charge_for
        charges = [
            charge_for(p, sequential, write=True) if p > 0 else _ZERO_CHARGE
            for p in page_counts
        ]
        latency = np.array([c[1] for c in charges])
        transfer = np.array([c[2] for c in charges])
        queue = self._lane_queue[kind] if self._multi_queue else 0
        if self._multi_queue:
            qmult = self._queue_mults[queue]
            if qmult != 1.0:
                latency = latency * qmult
                transfer = transfer * qmult
        busy = self.traffic.note_write_batch(
            kind,
            sum(p for p in page_counts if p > 0) * self.page_size,
            sum(c[0] for c in charges),
            latency,
            transfer,
            queue=queue,
        )
        if busy_out is not None:
            busy_out.extend(busy.tolist())
        return latency + transfer

    def read_pages_batch(
        self,
        page_counts: "list[int]",
        kind: TrafficKind,
        sequential: bool = False,
        busy_out: "Optional[list]" = None,
    ) -> "np.ndarray":
        """Read-side twin of :meth:`write_pages_batch`."""
        n = len(page_counts)
        if n == 0:
            return np.empty(0)
        if not (self._fastpath and obs.RECORDER is None):
            traffic = self.traffic
            services = []
            for p in page_counts:
                services.append(self.read_pages(p, kind, sequential))
                if busy_out is not None:
                    busy_out.append(traffic._busy_s)
            return np.array(services)
        charge_for = self._charge_for
        charges = [
            charge_for(p, sequential, write=False) if p > 0 else _ZERO_CHARGE
            for p in page_counts
        ]
        latency = np.array([c[1] for c in charges])
        transfer = np.array([c[2] for c in charges])
        queue = self._lane_queue[kind] if self._multi_queue else 0
        if self._multi_queue:
            qmult = self._queue_mults[queue]
            if qmult != 1.0:
                latency = latency * qmult
                transfer = transfer * qmult
        busy = self.traffic.note_read_batch(
            kind,
            sum(p for p in page_counts if p > 0) * self.page_size,
            sum(c[0] for c in charges),
            latency,
            transfer,
            queue=queue,
        )
        if busy_out is not None:
            busy_out.extend(busy.tolist())
        return latency + transfer

    # ------------------------------------------------------------ metrics

    def busy_seconds(self) -> float:
        """Total service time this device has performed."""
        return self.traffic.busy_seconds()

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of the device's service capacity used over ``elapsed_s``.

        A device with ``queue_count`` queues can perform up to
        ``queue_count`` busy-seconds per wall-second (queues serve
        concurrently), so aggregate busy time is normalized by
        ``elapsed_s * queue_count``.  Unclamped: a value above 1.0 means
        the ledger charged more service time than the interval could
        physically hold — an accounting bug worth surfacing, not hiding
        (the historical ``min(1.0, ...)`` clamp swallowed it).  At
        ``queue_count=1`` this is plain ``busy / elapsed``.
        """
        if elapsed_s <= 0:
            return 0.0
        return self.busy_seconds() / (elapsed_s * self.queue_count)

    def queue_utilization(self, elapsed_s: float) -> "list[float]":
        """Per-queue busy fraction of ``elapsed_s`` (unclamped)."""
        if elapsed_s <= 0:
            return [0.0] * self.queue_count
        return [b / elapsed_s for b in self.traffic.queue_busy_seconds()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimDevice({self.profile.name}, "
            f"{self.used_bytes / 2**20:.1f}/{self.capacity_bytes / 2**20:.1f} MiB)"
        )

"""Simulated heterogeneous SSD storage.

This package replaces the paper's physical Samsung PM9A3 (NVMe) and Intel
D3-S4610 (SATA) devices with page-granularity simulated devices.  Every I/O
is charged a service time from a calibrated cost model and tagged with a
traffic category, so the harness can reproduce the paper's bandwidth-
utilization, background-traffic, and throughput results in *simulated time*
while remaining fast enough to run in pure Python.
"""

from repro.health.state import HealthState, HealthWindow
from repro.simssd.profiles import DeviceProfile, NVME_PROFILE, SATA_PROFILE
from repro.simssd.traffic import TrafficKind, TrafficStats
from repro.simssd.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.simssd.device import SimDevice
from repro.simssd.fs import SimFile, SimFilesystem

__all__ = [
    "DeviceProfile",
    "NVME_PROFILE",
    "SATA_PROFILE",
    "TrafficKind",
    "TrafficStats",
    "FaultInjector",
    "FaultPlan",
    "HealthState",
    "HealthWindow",
    "RetryPolicy",
    "SimDevice",
    "SimFile",
    "SimFilesystem",
]

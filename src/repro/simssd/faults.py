"""Deterministic, seeded fault injection for the simulated SSD stack.

Real heterogeneous deployments treat transient I/O errors, torn writes, and
media corruption as first-class events.  This module models them without
giving up reproducibility: every fault decision comes from one seeded RNG,
so a given :class:`FaultPlan` produces the identical fault sequence on every
run — which is what lets the crash-consistency harness replay a failure and
what keeps CI green or red deterministically.

Fault classes
-------------

* **Transient I/O errors** — an individual read or write I/O fails but the
  device is fine.  :class:`repro.simssd.device.SimDevice` retries these under
  a :class:`RetryPolicy`, charging every failed attempt (plus backoff time)
  to the traffic ledger; only when retries are exhausted does
  :class:`repro.common.errors.TransientIOError` reach the engine.
* **Bit-flip corruption** — a write persists with one flipped bit.  The
  corruption is *on media*: reads return the corrupt bytes and the engines'
  checksums are what must catch it.
* **Crash points / torn writes** — power is lost after the Nth write I/O.
  The in-flight write persists only a seeded prefix of its bytes (a torn
  page write); all subsequent I/O raises
  :class:`repro.common.errors.PowerLossError` until the filesystem is
  frozen into a post-crash image
  (:meth:`repro.simssd.fs.SimFilesystem.post_crash_image`) or the injector
  is :meth:`rebooted <FaultInjector.reboot>`.

One injector may be shared by several devices (whole-node power loss): the
I/O counters then advance across all of them and a crash stops every device
at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.common.errors import PowerLossError
from repro.health.state import (
    HealthState,
    HealthWindow,
    resolve_health,
    resolve_queue_health,
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, fully determined by its fields.

    Parameters
    ----------
    seed:
        Seed for every probabilistic decision (error draws, torn fraction,
        bit positions).
    read_error_rate / write_error_rate:
        Per-I/O probability of a transient failure.
    fail_read_ios / fail_write_ios:
        Explicit 1-based I/O ordinals that fail transiently (in addition to
        the rates) — handy for targeting one exact I/O in a test.
    max_transient_faults:
        Optional cap on the total number of injected transient failures.
    bitflip_rate:
        Per-write probability that one bit of the persisted payload flips.
    latent_bitflip_rate:
        Per-write probability of *latent* corruption: the payload lands on
        media with flipped bit(s) but the write reports success and no
        reader is warned — only checksums (a tripping reader or a scrub
        pass) can discover it.  Drawn from an RNG stream independent of
        the write-time ``bitflip_rate`` stream, so enabling latent faults
        never perturbs existing fault schedules.
    latent_burst_bits:
        Number of distinct bits flipped per latent corruption event
        (>= 1); models burst/multi-bit media errors.
    crash_after_write_io:
        Power loss fires on the Nth write I/O (1-based); that write is torn.
        ``None`` disables crashing.
    torn_write:
        When True (default) the crashing write persists a seeded prefix of
        its bytes; when False it persists fully before power dies (a clean
        barrier, useful to isolate torn-tail handling from plain loss).
    health_windows:
        Scheduled outage/brownout windows
        (:class:`repro.health.state.HealthWindow`), keyed on the injector's
        *global* I/O ordinal — sustained service degradation, as opposed to
        the one-shot faults above.  Devices consult :meth:`FaultInjector.
        health_of` before charging each I/O.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    fail_read_ios: frozenset[int] = field(default_factory=frozenset)
    fail_write_ios: frozenset[int] = field(default_factory=frozenset)
    max_transient_faults: Optional[int] = None
    bitflip_rate: float = 0.0
    latent_bitflip_rate: float = 0.0
    latent_burst_bits: int = 1
    crash_after_write_io: Optional[int] = None
    torn_write: bool = True
    health_windows: tuple[HealthWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "bitflip_rate",
            "latent_bitflip_rate",
        ):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.latent_burst_bits < 1:
            raise ValueError(
                f"latent_burst_bits must be >= 1, got {self.latent_burst_bits}"
            )
        if self.crash_after_write_io is not None and self.crash_after_write_io < 1:
            raise ValueError("crash_after_write_io is 1-based and must be >= 1")
        if not isinstance(self.health_windows, tuple):
            # Accept any iterable for convenience but store a hashable tuple
            # (the plan is frozen and often used as a value object).
            object.__setattr__(self, "health_windows", tuple(self.health_windows))


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    Devices consult the injector on every page I/O; files consult it when
    persisting payload bytes.  All counters are public so tests and the
    harness can assert exactly what was injected.
    """

    #: XOR'd into the seed of the latent-corruption RNG stream, keeping it
    #: independent of the main stream (same seed, different sequence).
    _LATENT_SEED_SALT = 0x5C12_AB1E

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self._rng = random.Random(self.plan.seed)
        # Latent corruption draws from its own stream so existing plans'
        # fault sequences (and therefore every digest) are unchanged when
        # latent faults are off — and write-time flips are unchanged when
        # latent faults are *on*.
        self._latent_rng = (
            random.Random(self.plan.seed ^ self._LATENT_SEED_SALT)
            if self.plan.latent_bitflip_rate > 0.0
            else None
        )
        #: Total read / write I/O calls observed (1-based ordinals).
        self.read_ios = 0
        self.write_ios = 0
        #: Faults actually injected.
        self.transient_read_faults = 0
        self.transient_write_faults = 0
        self.bitflips = 0
        self.latent_bitflips = 0
        #: True once the crash point fired; cleared only by :meth:`reboot`.
        self.crashed = False
        self._crash_fired = False

    # ------------------------------------------------------------- helpers

    @property
    def transient_faults(self) -> int:
        return self.transient_read_faults + self.transient_write_faults

    @property
    def total_ios(self) -> int:
        """Global I/O ordinal (reads + writes across all sharing devices).

        This is the clock that :attr:`FaultPlan.health_windows` are keyed
        on: traffic served by *any* device sharing this injector advances
        it, so an offline device's window ends exactly when the surviving
        tier has moved the scheduled amount of work.
        """
        return self.read_ios + self.write_ios

    def health_of(self, device_name: str) -> tuple[HealthState, float]:
        """Peek the health the *next* I/O on ``device_name`` would see.

        Pure read: consumes no RNG, advances no counter, so engines can
        consult it to decide failover before attempting an I/O.  Returns
        ``(state, latency_multiplier)``.
        """
        if not self.plan.health_windows:
            return HealthState.HEALTHY, 1.0
        return resolve_health(
            self.plan.health_windows, device_name, self.total_ios + 1
        )

    def queue_health_of(
        self, device_name: str, queue: int
    ) -> tuple[HealthState, float]:
        """Peek the health of one submission queue of ``device_name``.

        Pure read, like :meth:`health_of`.  Only queue-targeted windows
        (``HealthWindow.queue == queue``) contribute; device-wide windows
        are the charge site's responsibility and compose multiplicatively
        with the value returned here.
        """
        if not self.plan.health_windows:
            return HealthState.HEALTHY, 1.0
        return resolve_queue_health(
            self.plan.health_windows, device_name, queue, self.total_ios + 1
        )

    def _budget_left(self) -> bool:
        cap = self.plan.max_transient_faults
        return cap is None or self.transient_faults < cap

    def check_power(self) -> None:
        """Raise :class:`PowerLossError` if the node already lost power."""
        if self.crashed:
            raise PowerLossError("device lost power", torn_fraction=0.0)

    def reboot(self) -> None:
        """Restore power after a crash (media state is whatever survived).

        The crash point is considered consumed: the plan will not crash
        again, but rates keep applying.
        """
        self.crashed = False

    # ------------------------------------------------------------ pulls

    def pull_read_fault(self) -> bool:
        """Account one read I/O; True means this attempt fails transiently."""
        self.check_power()
        self.read_ios += 1
        fail = self.read_ios in self.plan.fail_read_ios
        if not fail and self.plan.read_error_rate > 0.0:
            fail = self._rng.random() < self.plan.read_error_rate
        if fail and self._budget_left():
            self.transient_read_faults += 1
            rec = obs.RECORDER
            if rec is not None:
                # The injector has no clock, so fault events carry t=None.
                rec.emit("fault", rw="read", io=self.read_ios)
            return True
        return False

    def pull_write_fault(self) -> bool:
        """Account one write I/O; may raise :class:`PowerLossError`.

        Returns True when this attempt fails transiently.  When the plan's
        crash point is reached, the injector marks itself crashed and raises
        ``PowerLossError`` carrying the torn fraction for the in-flight
        write.
        """
        self.check_power()
        self.write_ios += 1
        crash_at = self.plan.crash_after_write_io
        if crash_at is not None and not self._crash_fired and self.write_ios >= crash_at:
            self.crashed = True
            self._crash_fired = True
            torn = self._rng.random() if self.plan.torn_write else 1.0
            rec = obs.RECORDER
            if rec is not None:
                rec.emit(
                    "crash", io=self.write_ios, torn_fraction=torn,
                    torn=self.plan.torn_write,
                )
            raise PowerLossError(
                f"power loss at write I/O #{self.write_ios}", torn_fraction=torn
            )
        fail = self.write_ios in self.plan.fail_write_ios
        if not fail and self.plan.write_error_rate > 0.0:
            fail = self._rng.random() < self.plan.write_error_rate
        if fail and self._budget_left():
            self.transient_write_faults += 1
            rec = obs.RECORDER
            if rec is not None:
                rec.emit("fault", rw="write", io=self.write_ios)
            return True
        return False

    # ------------------------------------------------------------ payloads

    def corrupt_payload(self, data: bytes) -> bytes:
        """Return ``data``, possibly with seeded bit(s) flipped (on media).

        Write-time flips (``bitflip_rate``) draw from the main RNG stream
        exactly as they always have; latent flips
        (``latent_bitflip_rate``) draw from the independent latent stream
        afterwards, so the two fault classes compose without perturbing
        each other's schedules.
        """
        if data and self.plan.bitflip_rate > 0.0:
            if self._rng.random() < self.plan.bitflip_rate:
                self.bitflips += 1
                pos = self._rng.randrange(len(data))
                bit = 1 << self._rng.randrange(8)
                rec = obs.RECORDER
                if rec is not None:
                    rec.emit("bitflip", pos=pos, nbytes=len(data))
                out = bytearray(data)
                out[pos] ^= bit
                data = bytes(out)
        if data and self._latent_rng is not None:
            lrng = self._latent_rng
            if lrng.random() < self.plan.latent_bitflip_rate:
                self.latent_bitflips += 1
                out = bytearray(data)
                nbits = self.plan.latent_burst_bits
                flipped: set[tuple[int, int]] = set()
                while len(flipped) < min(nbits, len(data) * 8):
                    pos = lrng.randrange(len(data))
                    bit = lrng.randrange(8)
                    if (pos, bit) in flipped:
                        continue
                    flipped.add((pos, bit))
                    out[pos] ^= 1 << bit
                rec = obs.RECORDER
                if rec is not None:
                    rec.emit(
                        "latent_bitflip", bits=len(flipped), nbytes=len(data)
                    )
                data = bytes(out)
        return data

    def torn_prefix_len(self, nbytes: int, torn_fraction: float) -> int:
        """How many of ``nbytes`` persisted for a torn write."""
        if nbytes <= 0:
            return 0
        return min(nbytes, int(nbytes * torn_fraction))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(reads={self.read_ios}, writes={self.write_ios}, "
            f"transient={self.transient_faults}, bitflips={self.bitflips}, "
            f"crashed={self.crashed})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-backoff for transient I/O errors.

    Attempt ``k`` (0-based) that fails is retried after
    ``backoff_base_s * multiplier**k`` seconds of simulated wall time, up to
    ``max_retries`` retries; every attempt's bytes and I/Os are charged to
    the traffic ledger as real traffic, so absorbed faults remain visible.
    """

    max_retries: int = 4
    backoff_base_s: float = 1e-4
    multiplier: float = 2.0

    def backoff_s(self, attempt: int) -> Optional[float]:
        """Backoff before retrying after failed attempt ``attempt`` (0-based).

        Returns ``None`` when the policy is exhausted and the error must
        surface as :class:`repro.common.errors.TransientIOError`.
        """
        if attempt >= self.max_retries:
            return None
        return self.backoff_base_s * (self.multiplier**attempt)

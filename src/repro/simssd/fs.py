"""A minimal extent-allocating filesystem over a :class:`SimDevice`.

Files store real bytes (engines read back exactly what they wrote), while
page allocation and every read/write charges the owning device, so space and
traffic accounting match what a real filesystem would issue.

Fault semantics (when the device carries a
:class:`repro.simssd.faults.FaultInjector`):

* a write that fails transiently beyond the retry policy raises
  :class:`~repro.common.errors.TransientIOError` *before* any byte is
  persisted (the failed attempts are still charged);
* a write in flight at an injected crash point is **torn**: only a seeded
  prefix of its payload reaches media, then
  :class:`~repro.common.errors.PowerLossError` propagates and every further
  operation fails until :meth:`SimFilesystem.post_crash_image` freezes the
  surviving bytes into a fresh, powered-on filesystem;
* a successful write may persist with one flipped bit (media corruption) —
  readers get the corrupt bytes and engine checksums must catch them.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro import obs
from repro.common.errors import ClosedError, OutOfSpaceError, PowerLossError, ReproError
from repro.simssd.device import SimDevice
from repro.simssd.faults import FaultInjector, RetryPolicy
from repro.simssd.traffic import TrafficKind


class SimFile:
    """An append-mostly byte file with page-accurate I/O accounting.

    Appends extend the file; :meth:`write_at` rewrites bytes inside the
    existing extent (used for in-place page updates in NVMe zone slots).
    """

    def __init__(self, name: str, device: SimDevice) -> None:
        self.name = name
        self.device = device
        self._data = bytearray()
        self._allocated_pages = 0
        self._deleted = False

    # ------------------------------------------------------------- state

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def allocated_pages(self) -> int:
        return self._allocated_pages

    def _check_open(self) -> None:
        if self._deleted:
            raise ClosedError(f"file {self.name!r} has been deleted")
        self.device.check_power()

    def _ensure_pages(self, new_size: int) -> None:
        ps = self.device.page_size
        need = -(-new_size // ps)
        if need > self._allocated_pages:
            self.device.allocate(need - self._allocated_pages)
            self._allocated_pages = need

    def _persist(self, data: bytes) -> bytes:
        inj = self.device.injector
        return inj.corrupt_payload(data) if inj is not None else data

    # --------------------------------------------------------------- I/O

    def append(
        self, data: bytes, kind: TrafficKind, sequential: bool = True
    ) -> tuple[int, float]:
        """Append ``data``; returns ``(offset, service_time)``."""
        self._check_open()
        if not data:
            return len(self._data), 0.0
        offset = len(self._data)
        self._ensure_pages(offset + len(data))
        pages = self._page_span(offset, len(data))
        try:
            service = self.device.write_pages(pages, kind, sequential)
        except PowerLossError as e:
            keep = self.device.injector.torn_prefix_len(len(data), e.torn_fraction)
            self._data.extend(data[:keep])
            raise
        self._data.extend(self._persist(data))
        return offset, service

    def append_many(
        self, payloads: "list[bytes]", kind: TrafficKind, sequential: bool = True
    ) -> tuple[list[int], "np.ndarray"]:
        """Append a batch of payloads with one grouped device charge.

        Returns ``(offsets, services)`` — exactly what per-payload
        :meth:`append` calls in the same order would produce: offsets and
        page spans are computed against the same running file size, and the
        grouped charge (:meth:`SimDevice.write_pages_batch`) advances every
        ledger field to the bit-identical value.  Page *allocation* happens
        up front for the whole batch; it only moves integer counters, so
        hoisting it past the charges is invisible to the ledger.

        With a fault injector attached (torn writes, corruption, health
        windows) each append can diverge individually, so the batch
        degrades to the per-payload loop.
        """
        self._check_open()
        dev = self.device
        if not payloads:
            return [], np.empty(0)
        if not (dev._fastpath and obs.RECORDER is None):
            offsets, services = [], []
            for data in payloads:
                offset, service = self.append(data, kind, sequential)
                offsets.append(offset)
                services.append(service)
            return offsets, np.array(services)
        offsets: list[int] = []
        spans: list[int] = []
        size = len(self._data)
        try:
            for data in payloads:
                offsets.append(size)
                if not data:
                    spans.append(0)
                    continue
                self._ensure_pages(size + len(data))
                spans.append(self._page_span(size, len(data)))
                size += len(data)
        except OutOfSpaceError:
            # Nothing was charged or persisted yet, and partial allocations
            # replay as no-ops, so the per-payload loop reproduces the
            # scalar failure state exactly (earlier payloads land, the
            # failing one raises at the same point).
            offsets, services = [], []
            for data in payloads:
                offset, service = self.append(data, kind, sequential)
                offsets.append(offset)
                services.append(service)
            return offsets, np.array(services)
        charged = [s for s in spans if s > 0]
        charged_services = dev.write_pages_batch(charged, kind, sequential)
        if len(charged) == len(spans):
            services = charged_services
        else:
            services = np.zeros(len(spans))
            services[np.array(spans) > 0] = charged_services
        data_buf = self._data
        for data in payloads:
            data_buf.extend(data)
        return offsets, services

    def write_at(
        self, offset: int, data: bytes, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Overwrite bytes inside the existing extent; returns service time."""
        self._check_open()
        if offset < 0 or offset + len(data) > len(self._data):
            raise ReproError(
                f"write_at outside extent: [{offset}, {offset + len(data)}) "
                f"in file of size {len(self._data)}"
            )
        if not data:
            return 0.0
        pages = self._page_span(offset, len(data))
        try:
            service = self.device.write_pages(pages, kind, sequential)
        except PowerLossError as e:
            keep = self.device.injector.torn_prefix_len(len(data), e.torn_fraction)
            self._data[offset : offset + keep] = data[:keep]
            raise
        self._data[offset : offset + len(data)] = self._persist(data)
        return service

    def read(
        self, offset: int, length: int, kind: TrafficKind, sequential: bool = False
    ) -> tuple[bytes, float]:
        """Read ``length`` bytes at ``offset``; returns ``(data, service_time)``."""
        self._check_open()
        if offset < 0 or offset + length > len(self._data):
            raise ReproError(
                f"read outside extent: [{offset}, {offset + length}) "
                f"in file of size {len(self._data)}"
            )
        if length == 0:
            return b"", 0.0
        pages = self._page_span(offset, length)
        service = self.device.read_pages(pages, kind, sequential)
        return bytes(self._data[offset : offset + length]), service

    def truncate(self, new_size: int) -> None:
        """Drop bytes past ``new_size`` and release now-unused whole pages.

        A metadata operation (no data I/O is charged), used by WAL recovery
        to cut a torn tail before reusing the log.
        """
        self._check_open()
        if new_size < 0 or new_size > len(self._data):
            raise ReproError(
                f"truncate to {new_size} outside [0, {len(self._data)}]"
            )
        del self._data[new_size:]
        ps = self.device.page_size
        need = -(-new_size // ps)
        if need < self._allocated_pages:
            self.device.trim(self._allocated_pages - need)
            self._allocated_pages = need

    def _page_span(self, offset: int, length: int) -> int:
        ps = self.device.page_size
        first = offset // ps
        last = (offset + length - 1) // ps
        return last - first + 1

    def delete(self) -> None:
        """Release all pages back to the device."""
        if self._deleted:
            return
        self.device.trim(self._allocated_pages)
        self._allocated_pages = 0
        self._data = bytearray()
        self._deleted = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimFile({self.name!r}, {self.size}B, {self._allocated_pages}p)"


class SimFilesystem:
    """Named files over one device."""

    def __init__(self, device: SimDevice) -> None:
        self.device = device
        self._files: Dict[str, SimFile] = {}
        self._seq = 0

    def create(self, name: str | None = None) -> SimFile:
        """Create a new empty file.  Auto-names when ``name`` is None."""
        if name is None:
            name = f"f{self._seq:08d}"
            self._seq += 1
        if name in self._files:
            raise ReproError(f"file {name!r} already exists")
        f = SimFile(name, self.device)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        f = self._files.get(name)
        if f is None:
            raise ReproError(f"no such file: {name!r}")
        return f

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise ReproError(f"no such file: {name!r}")
        f.delete()

    def files(self) -> Iterator[SimFile]:
        return iter(list(self._files.values()))

    def post_crash_image(
        self,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "SimFilesystem":
        """Freeze the current media state into a fresh, powered-on filesystem.

        Returns a new :class:`SimFilesystem` over a new :class:`SimDevice`
        (same profile) holding byte-identical copies of every file —
        including any torn tail the crash left behind.  Restoring the image
        charges no I/O (it *is* the media); the new device starts with a
        clean traffic ledger and the given (or no) injector.
        """
        device = SimDevice(
            self.device.profile,
            injector=injector,
            retry_policy=retry_policy or self.device.retry_policy,
        )
        image = SimFilesystem(device)
        image._seq = self._seq
        for name, f in self._files.items():
            nf = image.create(name)
            if f._data:
                nf._ensure_pages(len(f._data))
                nf._data = bytearray(f._data)
        return image

    @property
    def used_bytes(self) -> int:
        return sum(f.allocated_pages for f in self._files.values()) * self.device.page_size

    def __len__(self) -> int:
        return len(self._files)

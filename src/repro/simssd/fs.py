"""A minimal extent-allocating filesystem over a :class:`SimDevice`.

Files store real bytes (engines read back exactly what they wrote), while
page allocation and every read/write charges the owning device, so space and
traffic accounting match what a real filesystem would issue.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.common.errors import ClosedError, ReproError
from repro.simssd.device import SimDevice
from repro.simssd.traffic import TrafficKind


class SimFile:
    """An append-mostly byte file with page-accurate I/O accounting.

    Appends extend the file; :meth:`write_at` rewrites bytes inside the
    existing extent (used for in-place page updates in NVMe zone slots).
    """

    def __init__(self, name: str, device: SimDevice) -> None:
        self.name = name
        self.device = device
        self._data = bytearray()
        self._allocated_pages = 0
        self._deleted = False

    # ------------------------------------------------------------- state

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def allocated_pages(self) -> int:
        return self._allocated_pages

    def _check_open(self) -> None:
        if self._deleted:
            raise ClosedError(f"file {self.name!r} has been deleted")

    def _ensure_pages(self, new_size: int) -> None:
        ps = self.device.page_size
        need = -(-new_size // ps)
        if need > self._allocated_pages:
            self.device.allocate(need - self._allocated_pages)
            self._allocated_pages = need

    # --------------------------------------------------------------- I/O

    def append(
        self, data: bytes, kind: TrafficKind, sequential: bool = True
    ) -> tuple[int, float]:
        """Append ``data``; returns ``(offset, service_time)``."""
        self._check_open()
        if not data:
            return len(self._data), 0.0
        offset = len(self._data)
        self._ensure_pages(offset + len(data))
        self._data.extend(data)
        pages = self._page_span(offset, len(data))
        service = self.device.write_pages(pages, kind, sequential)
        return offset, service

    def write_at(
        self, offset: int, data: bytes, kind: TrafficKind, sequential: bool = False
    ) -> float:
        """Overwrite bytes inside the existing extent; returns service time."""
        self._check_open()
        if offset < 0 or offset + len(data) > len(self._data):
            raise ReproError(
                f"write_at outside extent: [{offset}, {offset + len(data)}) "
                f"in file of size {len(self._data)}"
            )
        if not data:
            return 0.0
        self._data[offset : offset + len(data)] = data
        pages = self._page_span(offset, len(data))
        return self.device.write_pages(pages, kind, sequential)

    def read(
        self, offset: int, length: int, kind: TrafficKind, sequential: bool = False
    ) -> tuple[bytes, float]:
        """Read ``length`` bytes at ``offset``; returns ``(data, service_time)``."""
        self._check_open()
        if offset < 0 or offset + length > len(self._data):
            raise ReproError(
                f"read outside extent: [{offset}, {offset + length}) "
                f"in file of size {len(self._data)}"
            )
        if length == 0:
            return b"", 0.0
        pages = self._page_span(offset, length)
        service = self.device.read_pages(pages, kind, sequential)
        return bytes(self._data[offset : offset + length]), service

    def _page_span(self, offset: int, length: int) -> int:
        ps = self.device.page_size
        first = offset // ps
        last = (offset + length - 1) // ps
        return last - first + 1

    def delete(self) -> None:
        """Release all pages back to the device."""
        if self._deleted:
            return
        self.device.trim(self._allocated_pages)
        self._allocated_pages = 0
        self._data = bytearray()
        self._deleted = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimFile({self.name!r}, {self.size}B, {self._allocated_pages}p)"


class SimFilesystem:
    """Named files over one device."""

    def __init__(self, device: SimDevice) -> None:
        self.device = device
        self._files: Dict[str, SimFile] = {}
        self._seq = 0

    def create(self, name: str | None = None) -> SimFile:
        """Create a new empty file.  Auto-names when ``name`` is None."""
        if name is None:
            name = f"f{self._seq:08d}"
            self._seq += 1
        if name in self._files:
            raise ReproError(f"file {name!r} already exists")
        f = SimFile(name, self.device)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        f = self._files.get(name)
        if f is None:
            raise ReproError(f"no such file: {name!r}")
        return f

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise ReproError(f"no such file: {name!r}")
        f.delete()

    def files(self) -> Iterator[SimFile]:
        return iter(list(self._files.values()))

    @property
    def used_bytes(self) -> int:
        return sum(f.allocated_pages for f in self._files.values()) * self.device.page_size

    def __len__(self) -> int:
        return len(self._files)

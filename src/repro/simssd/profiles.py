"""Device cost-model profiles.

The defaults are calibrated to the devices in the paper's testbed (§4.1):

* **NVMe** — Samsung PM9A3 960 GB: ~6.5 GB/s sequential read, ~3.5 GB/s
  sequential write, sub-100 µs random-read latency, excellent random I/O.
* **SATA** — Intel D3-S4610 960 GB: ~560/510 MB/s sequential read/write,
  random I/O dominated by per-command latency.

Capacities default to a scaled-down 1/1024 of the physical devices so that
scaled datasets exercise the same fill fractions, watermarks, and migration
pressure as the paper's 100 GB loads on 960 GB devices.  Benchmarks override
capacity explicitly per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """Cost model for one simulated SSD.

    Service time for a request of ``n`` pages:

    * sequential — one command setup plus streaming:
      ``latency + n * page_size / bandwidth``
    * random — a command per page:
      ``n * (latency + page_size / bandwidth)``
    """

    name: str
    capacity_bytes: int
    page_size: int
    read_latency_s: float
    write_latency_s: float
    read_bandwidth: float   # bytes / second, sustained sequential
    write_bandwidth: float  # bytes / second, sustained sequential

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.page_size <= 0:
            raise ValueError("capacity and page size must be positive")
        if self.capacity_bytes % self.page_size != 0:
            raise ValueError("capacity must be a whole number of pages")
        if min(self.read_latency_s, self.write_latency_s) < 0:
            raise ValueError("latencies must be non-negative")
        if min(self.read_bandwidth, self.write_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def num_pages(self) -> int:
        return self.capacity_bytes // self.page_size

    def read_service_time(self, num_pages: int, sequential: bool) -> float:
        xfer = num_pages * self.page_size / self.read_bandwidth
        if sequential:
            return self.read_latency_s + xfer
        return num_pages * (self.read_latency_s + self.page_size / self.read_bandwidth)

    def write_service_time(self, num_pages: int, sequential: bool) -> float:
        xfer = num_pages * self.page_size / self.write_bandwidth
        if sequential:
            return self.write_latency_s + xfer
        return num_pages * (self.write_latency_s + self.page_size / self.write_bandwidth)

    def with_capacity(self, capacity_bytes: int) -> "DeviceProfile":
        """A copy of this profile with a different capacity (page-aligned up)."""
        pages = max(1, -(-capacity_bytes // self.page_size))
        return replace(self, capacity_bytes=pages * self.page_size)


#: Samsung PM9A3-like performance tier (capacity scaled 1/1024).
NVME_PROFILE = DeviceProfile(
    name="nvme",
    capacity_bytes=960 * MiB,
    page_size=4 * KiB,
    read_latency_s=80e-6,
    write_latency_s=20e-6,
    read_bandwidth=6.5 * GiB,
    write_bandwidth=3.5 * GiB,
)

#: Intel D3-S4610-like capacity tier (capacity scaled 1/1024).
SATA_PROFILE = DeviceProfile(
    name="sata",
    capacity_bytes=960 * MiB,
    page_size=4 * KiB,
    read_latency_s=200e-6,
    write_latency_s=60e-6,
    read_bandwidth=560 * MiB,
    write_bandwidth=510 * MiB,
)

"""Multi-queue submission model for the simulated SSD.

Real NVMe devices expose many hardware submission queues; commands on
different queues proceed concurrently (sharing the media's bandwidth),
which is why placement papers (Multi-Queue SSD I/O Modeling, Keigo — see
PAPERS.md) argue that *queue concurrency*, not just bandwidth, should
drive background-job placement.  :class:`QueueConfig` is the knob object:
it turns a :class:`repro.simssd.device.SimDevice` from the classic single
service timeline (``queue_count=1``, the default, byte-identical to the
historical model) into a device with ``queue_count`` independently
tracked queues of depth ``queue_depth``.

Lane routing
------------

With more than one queue the device statically partitions its traffic
lanes:

* ``FOREGROUND`` and ``WAL`` — the latency-critical lanes — own queue 0
  exclusively;
* every background lane (``FLUSH``, ``COMPACTION``, ``MIGRATION``,
  ``GC``) shares the remaining queues ``1..queue_count-1``.

Which background queue a particular job lands on is decided at job start
by :meth:`repro.simssd.device.SimDevice.begin_background_job`, which
picks the least-busy eligible queue (deterministic tie-break: lowest
index).  That is the Keigo-style concurrency-aware placement primitive:
two compaction jobs started back to back land on *different* queues and
overlap, instead of serializing behind each other — and neither ever
shares a queue with foreground reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.simssd.traffic import TrafficKind

#: Lanes that own the dedicated foreground queue (queue 0) on a
#: multi-queue device.
FOREGROUND_QUEUE_KINDS = (TrafficKind.FOREGROUND, TrafficKind.WAL)


@dataclass(frozen=True)
class QueueConfig:
    """Queue geometry and per-queue latency curves for one device.

    Parameters
    ----------
    queue_count:
        Number of submission queues.  ``1`` (default) reproduces the
        historical single-timeline model bit for bit.
    queue_depth:
        Commands a single queue can keep in flight.  Caps the effective
        concurrency a queue contributes to the run-time model: a queue
        never hides more latency than ``min(threads, queue_depth)``
        overlapping commands can.
    latency_multipliers:
        Optional per-queue service-time scale factors (one per queue,
        each > 0) modelling asymmetric queue latency curves — e.g. a
        device whose high-index queues are served by slower firmware
        arbitration slots.  Empty (default) means every queue runs the
        profile's base curve (multiplier exactly 1.0, charges
        bit-identical to the unscaled model).
    """

    queue_count: int = 1
    queue_depth: int = 32
    latency_multipliers: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.queue_count < 1:
            raise ValueError(f"queue_count must be >= 1, got {self.queue_count}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if not isinstance(self.latency_multipliers, tuple):
            object.__setattr__(
                self, "latency_multipliers", tuple(self.latency_multipliers)
            )
        if self.latency_multipliers and len(self.latency_multipliers) != self.queue_count:
            raise ValueError(
                f"need one latency multiplier per queue ({self.queue_count}), "
                f"got {len(self.latency_multipliers)}"
            )
        for m in self.latency_multipliers:
            if m <= 0.0:
                raise ValueError(f"latency multipliers must be > 0, got {m}")

    def multiplier(self, queue: int) -> float:
        """Service-time scale factor for ``queue`` (1.0 when unset)."""
        if not self.latency_multipliers:
            return 1.0
        return self.latency_multipliers[queue]


def default_routing(queue_count: int) -> Dict[TrafficKind, Tuple[int, ...]]:
    """Eligible queue set per traffic lane.

    Single-queue devices route every lane to queue 0.  Multi-queue
    devices isolate foreground (queue 0) from background (queues 1+);
    background lanes are eligible for *all* background queues and the
    device picks per job.
    """
    if queue_count == 1:
        return {kind: (0,) for kind in TrafficKind}
    background = tuple(range(1, queue_count))
    return {
        kind: (0,) if kind in FOREGROUND_QUEUE_KINDS else background
        for kind in TrafficKind
    }

"""CLI for the chaos soak harness.

Examples
--------
Run the full soak matrix (outages, brownouts, composed restart)::

    PYTHONPATH=src python -m repro.chaos

The CI smoke configuration (one NVMe outage + one capacity brownout)::

    PYTHONPATH=src python -m repro.chaos --smoke

Fan scenarios across worker processes (reports are identical at every
worker count — CI asserts the digest matches the serial run)::

    PYTHONPATH=src python -m repro.chaos --workers 2 --digest

The sharded-cluster matrix (node outage, rolling brownouts, outage during
rebalance, graceful drain, strict quorums) instead of the single-node
tier matrix::

    PYTHONPATH=src python -m repro.chaos --cluster

Exit status is non-zero when any scenario's integrity oracle fails.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro import obs
from repro.chaos.cluster import (
    default_cluster_scenarios,
    run_cluster_soak,
    scrub_cluster_scenarios,
    smoke_cluster_scenarios,
)
from repro.chaos.harness import (
    default_scenarios,
    run_soak,
    scrub_scenarios,
    smoke_scenarios,
)
from repro.parallel import host_metadata


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos",
        description="Seeded chaos soak: tier outages/brownouts over long "
        "mixed workloads, checked by an acked-write integrity oracle.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ops", type=int, default=900, help="ops per scenario (default 900)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the short CI scenario set instead of the full matrix",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="run the sharded-cluster scenario matrix (quorum writes, node "
        "failover, hinted handoff, rebalance) instead of the single-node "
        "tier matrix",
    )
    parser.add_argument(
        "--scrub",
        action="store_true",
        help="run only the latent-corruption scenarios (background scrub, "
        "repair ladder, cluster anti-entropy) — the scrub CI smoke set",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the scenario fan-out (1 = serial "
        "in-process, 0 = one per core; reports are identical at any count)",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print 'DIGEST <sha256>' over all scenario summaries, for "
        "serial/parallel equivalence checks",
    )
    parser.add_argument(
        "--timing-out", metavar="FILE", default=None,
        help="write per-scenario timings + host metadata as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record an obs trace (health/failover/stall events included) "
        "and export it as JSONL; tracing never changes the verdicts",
    )
    args = parser.parse_args(argv)

    if args.cluster:
        # Cluster ops fan out to RF replicas each, so the default op count
        # is scaled down to keep run time comparable to the tier matrix.
        ops = args.ops if args.ops != 900 else 400
        if args.scrub:
            scenarios = scrub_cluster_scenarios(num_ops=ops)
        elif args.smoke:
            scenarios = smoke_cluster_scenarios(num_ops=min(ops, 300))
        else:
            scenarios = default_cluster_scenarios(num_ops=ops)
        run = run_cluster_soak
    else:
        if args.scrub:
            scenarios = scrub_scenarios(num_ops=args.ops)
        elif args.smoke:
            scenarios = smoke_scenarios(num_ops=min(args.ops, 500))
        else:
            scenarios = default_scenarios(num_ops=args.ops)
        run = run_soak
    recorder = obs.install() if args.trace_out else None
    report = run(scenarios, seed=args.seed, workers=args.workers)
    summary = report.summary()
    print(summary)
    print(f"scenarios exercised: {len(report.results)}")
    if recorder is not None:
        obs.uninstall()
        recorder.export_jsonl(args.trace_out)
        print(
            f"trace: {recorder.total_events} events "
            f"({recorder.dropped} dropped) -> {args.trace_out}"
        )
    if args.digest:
        digest = hashlib.sha256(summary.encode()).hexdigest()
        print(f"DIGEST {digest}")
    if args.timing_out:
        doc = {
            "host": host_metadata(workers=args.workers),
            "scenarios": [
                {
                    "name": r.scenario,
                    "engine": getattr(r, "engine", "cluster"),
                    "seconds": round(s, 6),
                    "ok": r.passed,
                }
                for r, s in zip(report.results, report.scenario_seconds)
            ],
        }
        with open(args.timing_out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())

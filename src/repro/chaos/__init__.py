"""Chaos soak harness: degraded-mode operation under scheduled tier faults.

Composes :class:`~repro.health.state.HealthWindow` schedules (outages and
brownouts), admission-control backpressure, and planned restarts over long
mixed workloads, and checks an integrity oracle: every acknowledged write
stays readable with its latest value across failover and recovery.

Run it with ``python -m repro.chaos`` (see ``--help``).
"""

from repro.chaos.cluster import (
    ClusterScenario,
    ClusterSoakReport,
    ClusterSoakResult,
    NodeWindowSpec,
    default_cluster_scenarios,
    run_cluster_scenario,
    run_cluster_soak,
    smoke_cluster_scenarios,
)
from repro.chaos.harness import (
    ChaosScenario,
    SoakReport,
    SoakResult,
    WindowSpec,
    default_scenarios,
    run_scenario,
    run_soak,
    smoke_scenarios,
)

__all__ = [
    "ChaosScenario",
    "ClusterScenario",
    "ClusterSoakReport",
    "ClusterSoakResult",
    "NodeWindowSpec",
    "SoakReport",
    "SoakResult",
    "WindowSpec",
    "default_cluster_scenarios",
    "default_scenarios",
    "run_cluster_scenario",
    "run_cluster_soak",
    "run_scenario",
    "run_soak",
    "smoke_cluster_scenarios",
    "smoke_scenarios",
]

"""Chaos soak: long mixed workloads under scheduled tier outages/brownouts.

Each scenario drives a deterministic YCSB-style op stream (uniform mixed
puts/gets/deletes) against an engine whose two devices share one
:class:`FaultInjector`, with health windows (OFFLINE / BROWNOUT) scheduled
at fractions of the workload's I/O span (learned from a fault-free probe
run).  An optional planned restart (checkpoint + recover) composes crash
recovery into the same soak.

The **integrity oracle** tracks every *acknowledged* write (an op that
returned without raising) in an expected-state dict and verifies, at the
end of the soak, that every acked write is readable with its latest value:
no lost writes, no stale reads, no resurrections — across failover,
backpressure, and recovery.  :class:`DeviceOfflineError` during an op is
*unavailability*, never loss: the op is not acked and must not have
mutated anything (the health-epoch contract), which the oracle checks by
never updating the expected state for rejected ops.

Everything is seeded; scenarios are independent, so fanning them across
worker processes via :mod:`repro.parallel` yields byte-identical reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import CorruptionError, DeviceOfflineError
from repro.common.keys import KeyRange, encode_key
from repro.core.config import HyperDBConfig
from repro.core.hyperdb import HyperDB
from repro.baselines.prismdb import PrismDBStore
from repro.health.admission import AdmissionConfig
from repro.health.state import HealthState, HealthWindow
from repro.nvme.config import NVMeConfig
from repro.parallel import Job, run_jobs
from repro.parallel.pool import unwrap_all
from repro.scrub import ScrubConfig
from repro.simssd.device import SimDevice
from repro.simssd.faults import FaultInjector, FaultPlan
from repro.simssd.profiles import DeviceProfile
from repro.simssd.queues import QueueConfig

KiB = 1024
MiB = 1024 * KiB

#: Small devices so a thousand operations produce migrations, compactions,
#: and watermark pressure — i.e. health windows land inside real background
#: activity, not idle stretches.
_NVME_PROFILE = DeviceProfile(
    name="nvme",
    capacity_bytes=1 * MiB,
    page_size=4096,
    read_latency_s=8e-5,
    write_latency_s=2e-5,
    read_bandwidth=6.5e9,
    write_bandwidth=3.5e9,
)
_SATA_PROFILE = DeviceProfile(
    name="sata",
    capacity_bytes=64 * MiB,
    page_size=4096,
    read_latency_s=2e-4,
    write_latency_s=6e-5,
    read_bandwidth=5.6e8,
    write_bandwidth=5.1e8,
)

#: Op-stream key universe (ints fed to ``encode_key``); pump keys used to
#: age a still-open window past its end live above this range.
_KEY_UNIVERSE = 2_000
_PUMP_KEY_BASE = 40_000
_KEY_SPACE = KeyRange(encode_key(0), encode_key(50_000))


# ---------------------------------------------------------------- scenarios


@dataclass(frozen=True)
class WindowSpec:
    """A health window positioned at fractions of the probe's I/O span."""

    device: str
    state: HealthState
    start_frac: float
    end_frac: float
    latency_multiplier: float = 1.0
    #: Target a single submission queue instead of the whole device
    #: (requires the scenario to run with ``queue_count > 1``).
    queue: Optional[int] = None


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded soak: an engine, an op stream, and scheduled windows."""

    name: str
    engine: str  # "hyperdb" | "prismdb"
    num_ops: int
    windows: tuple[WindowSpec, ...]
    #: Op-stream fraction at which to checkpoint + recover (HyperDB only).
    restart_frac: Optional[float] = None
    #: Enable admission-control backpressure for this scenario.
    admission: bool = False
    #: Submission queues per device (1 = classic single-timeline model).
    queue_count: int = 1
    #: Per-write probability of *latent* media corruption (flips stick on
    #: the medium and surface at read time as checksum failures).
    latent_rate: float = 0.0
    #: Distinct bits flipped per latent corruption event.
    latent_burst: int = 1
    #: Client ops between background scrub passes (0 = scrub disabled).
    scrub_interval: int = 0


def default_scenarios(num_ops: int = 900) -> list[ChaosScenario]:
    """The full soak matrix: outages, brownouts, and a composed scenario."""
    return [
        ChaosScenario(
            name="hyperdb-nvme-outage",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("nvme", HealthState.OFFLINE, 0.30, 0.45),
            ),
        ),
        ChaosScenario(
            name="hyperdb-sata-outage",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("sata", HealthState.OFFLINE, 0.35, 0.50),
            ),
            admission=True,
        ),
        ChaosScenario(
            name="hyperdb-brownout",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("nvme", HealthState.BROWNOUT, 0.20, 0.40, 4.0),
                WindowSpec("sata", HealthState.BROWNOUT, 0.50, 0.70, 8.0),
            ),
        ),
        ChaosScenario(
            name="hyperdb-combo-restart",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("nvme", HealthState.BROWNOUT, 0.15, 0.30, 4.0),
                WindowSpec("sata", HealthState.OFFLINE, 0.40, 0.55),
            ),
            restart_frac=0.85,
            admission=True,
        ),
        ChaosScenario(
            # A brownout pinned to one *background* queue of a 4-queue SATA
            # device: migration/compaction traffic routed there is
            # surcharged while queue 0 (foreground) and the other
            # background queues stay at full speed.  The oracle checks the
            # same no-loss invariants; _check_window_effects asserts the
            # queue window actually surcharged I/O.
            name="hyperdb-queue-brownout",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec(
                    "sata", HealthState.BROWNOUT, 0.15, 0.75, 8.0, queue=1
                ),
            ),
            queue_count=4,
        ),
        *scrub_scenarios(num_ops),
        ChaosScenario(
            name="prismdb-nvme-outage",
            engine="prismdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("nvme", HealthState.OFFLINE, 0.30, 0.45),
            ),
        ),
        ChaosScenario(
            name="prismdb-sata-outage",
            engine="prismdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("sata", HealthState.OFFLINE, 0.35, 0.50),
            ),
        ),
    ]


def scrub_scenarios(num_ops: int = 900) -> list[ChaosScenario]:
    """Latent-corruption soaks: bitflips stick on the media and the
    scrubber + repair ladder must turn every one into *detected* (and
    where a redundant copy exists, *healed*) corruption — the oracle
    rejects any silent loss not explained by a flagged suspect key."""
    return [
        ChaosScenario(
            name="hyperdb-latent-scrub",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(),
            latent_rate=0.01,
            latent_burst=3,
            scrub_interval=150,
        ),
        ChaosScenario(
            # Latent flips composed with a capacity outage: scrub passes
            # that land inside the window pause and drain via catch-up,
            # exactly like migration.
            name="hyperdb-latent-outage-scrub",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("sata", HealthState.OFFLINE, 0.35, 0.50),
            ),
            latent_rate=0.003,
            scrub_interval=150,
        ),
    ]


def smoke_scenarios(num_ops: int = 500) -> list[ChaosScenario]:
    """The CI configuration: one NVMe outage + one capacity brownout."""
    return [
        ChaosScenario(
            name="hyperdb-nvme-outage",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("nvme", HealthState.OFFLINE, 0.30, 0.45),
            ),
        ),
        ChaosScenario(
            name="hyperdb-sata-brownout",
            engine="hyperdb",
            num_ops=num_ops,
            windows=(
                WindowSpec("sata", HealthState.BROWNOUT, 0.35, 0.60, 6.0),
            ),
        ),
    ]


# --------------------------------------------------------------- op streams


def _ops_stream(seed: int, n: int) -> list[tuple[str, bytes, Optional[bytes]]]:
    """Deterministic YCSB-A-style mix: ~45% put, ~45% get, ~10% delete.

    Values embed the op index so the oracle distinguishes every version.
    """
    rng = random.Random(seed)
    ops: list[tuple[str, bytes, Optional[bytes]]] = []
    for i in range(n):
        key = encode_key(rng.randrange(_KEY_UNIVERSE))
        r = rng.random()
        if r < 0.45:
            pad = bytes(rng.randrange(256) for _ in range(rng.randrange(600, 1800)))
            ops.append(("put", key, b"v%06d." % i + pad))
        elif r < 0.90:
            ops.append(("get", key, None))
        else:
            ops.append(("del", key, None))
    return ops


# ---------------------------------------------------------------- reporting


@dataclass
class SoakResult:
    """Outcome of one chaos scenario."""

    scenario: str
    engine: str
    ops_issued: int = 0
    writes_acked: int = 0
    reads_ok: int = 0
    unavailable_reads: int = 0
    unavailable_writes: int = 0
    failover_writes: int = 0
    failover_reads: int = 0
    offline_rejections: dict[str, int] = field(default_factory=dict)
    brownout_ios: dict[str, int] = field(default_factory=dict)
    stall_seconds: float = 0.0
    paused_migrations: int = 0
    requeued_objects: int = 0
    catch_up_drains: int = 0
    restarts: int = 0
    pump_ops: int = 0
    lost_writes: int = 0
    stale_reads: int = 0
    resurrections: int = 0
    keys_verified: int = 0
    violations: list[str] = field(default_factory=list)
    #: Latent-corruption accounting (zero unless the scenario injects
    #: latent bitflips / arms the scrubber; the summary line is appended
    #: only then, keeping fault-free reports byte-identical).
    scrub_enabled: bool = False
    latent_flips: int = 0
    corrupt_detected: int = 0
    excused_losses: int = 0
    scrub_passes: int = 0
    scrub_detected: int = 0
    scrub_repaired: int = 0
    scrub_unrecoverable: int = 0
    scrub_paused: int = 0

    @property
    def passed(self) -> bool:
        return (
            not self.violations
            and self.lost_writes == 0
            and self.stale_reads == 0
            and self.resurrections == 0
            and self.keys_verified > 0
        )

    def summary(self) -> str:
        status = "ok " if self.passed else "FAIL"
        reject = ",".join(
            f"{d}={n}" for d, n in sorted(self.offline_rejections.items()) if n
        ) or "none"
        brown = ",".join(
            f"{d}={n}" for d, n in sorted(self.brownout_ios.items()) if n
        ) or "none"
        lines = [
            f"[{self.scenario}] {status} {self.engine}: "
            f"{self.ops_issued} ops ({self.writes_acked} writes acked, "
            f"{self.reads_ok} reads ok, {self.unavailable_reads}r/"
            f"{self.unavailable_writes}w unavailable), "
            f"{self.keys_verified} keys verified "
            f"(lost={self.lost_writes} stale={self.stale_reads} "
            f"resurrected={self.resurrections})",
            f"  degraded: failover_writes={self.failover_writes} "
            f"failover_reads={self.failover_reads} "
            f"offline_rejections[{reject}] brownout_ios[{brown}] "
            f"stall_s={self.stall_seconds:.6f}",
            f"  recovery: paused={self.paused_migrations} "
            f"requeued={self.requeued_objects} "
            f"catchup_drains={self.catch_up_drains} "
            f"restarts={self.restarts} pump_ops={self.pump_ops}",
        ]
        if self.scrub_enabled:
            lines.append(
                f"  scrub: passes={self.scrub_passes} "
                f"detected={self.scrub_detected} "
                f"repaired={self.scrub_repaired} "
                f"unrecoverable={self.scrub_unrecoverable} "
                f"paused={self.scrub_paused} "
                f"latent_flips={self.latent_flips} "
                f"corrupt_detected={self.corrupt_detected} "
                f"excused={self.excused_losses}"
            )
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


@dataclass
class SoakReport:
    """All scenarios of one chaos run."""

    results: list[SoakResult] = field(default_factory=list)
    #: Per-scenario wall-clock seconds, parallel to ``results``.
    scenario_seconds: list[float] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)

    def summary(self) -> str:
        return "\n".join(r.summary() for r in self.results)


# ------------------------------------------------------------------ engines


def _hyperdb_config(admission: bool, scrub_interval: int = 0) -> HyperDBConfig:
    # Low watermarks keep migration running throughout the soak, so the
    # capacity tier carries real traffic for the windows to bite on.
    return HyperDBConfig(
        key_space=_KEY_SPACE,
        nvme=NVMeConfig(
            num_partitions=2,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
            high_watermark=0.22,
            low_watermark=0.12,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
        admission=AdmissionConfig() if admission else None,
        scrub=ScrubConfig(interval_ops=scrub_interval) if scrub_interval else None,
    )


def _build_engine(scenario: ChaosScenario, injector: FaultInjector):
    queues = (
        QueueConfig(queue_count=scenario.queue_count)
        if scenario.queue_count > 1
        else None
    )
    nvme = SimDevice(_NVME_PROFILE, injector=injector, queues=queues)
    sata = SimDevice(_SATA_PROFILE, injector=injector, queues=queues)
    if scenario.engine == "hyperdb":
        return HyperDB(
            nvme, sata,
            _hyperdb_config(scenario.admission, scenario.scrub_interval),
        )
    if scenario.engine == "prismdb":
        return PrismDBStore(
            nvme,
            sata,
            nvme_config=NVMeConfig(high_watermark=0.22, low_watermark=0.12),
        )
    raise ValueError(f"unknown chaos engine {scenario.engine!r}")


def _resolve_windows(
    scenario: ChaosScenario, io_span: int
) -> tuple[HealthWindow, ...]:
    windows = []
    for spec in scenario.windows:
        start = max(1, int(io_span * spec.start_frac))
        end = max(start + 1, int(io_span * spec.end_frac))
        windows.append(
            HealthWindow(
                device=spec.device,
                state=spec.state,
                start_io=start,
                end_io=end,
                latency_multiplier=spec.latency_multiplier,
                queue=spec.queue,
            )
        )
    return tuple(windows)


# --------------------------------------------------------------------- soak


def run_scenario(scenario: ChaosScenario, seed: int = 0) -> SoakResult:
    """Probe the I/O span, schedule the windows, soak, verify."""
    result = SoakResult(scenario=scenario.name, engine=scenario.engine)
    # hash() is salted per-process; derive the stream seed arithmetically so
    # serial and multi-worker runs see the same ops.
    ops = _ops_stream(
        seed * 1_000_003 + sum(scenario.name.encode()), scenario.num_ops
    )

    # Probe run: same ops, no faults, to learn the global I/O span.
    probe = FaultInjector(FaultPlan(seed=seed))
    _drive(_build_engine(scenario, probe), ops, scenario, None)
    io_span = probe.total_ios
    if io_span == 0:
        result.violations.append("probe run issued no I/O")
        return result

    windows = _resolve_windows(scenario, io_span)
    injector = FaultInjector(
        FaultPlan(
            seed=seed,
            health_windows=windows,
            latent_bitflip_rate=scenario.latent_rate,
            latent_burst_bits=scenario.latent_burst,
        )
    )
    engine = _build_engine(scenario, injector)
    expected = _drive(engine, ops, scenario, result)

    _pump_until_healthy(engine, scenario, result, expected)
    _drain_recovery(engine, scenario, result)
    _collect_degraded_stats(engine, scenario, result)
    result.latent_flips = injector.latent_bitflips
    _verify(engine, expected, result, scenario)
    _check_window_effects(engine, scenario, result)
    _check_scrub_effects(engine, scenario, result)
    return result


def _drive(engine, ops, scenario, result):
    """Run the op stream; returns the oracle's expected state.

    ``result is None`` marks the probe run (no bookkeeping, no restart).
    """
    expected: dict[bytes, Optional[bytes]] = {}
    restart_at = (
        int(len(ops) * scenario.restart_frac)
        if result is not None
        and scenario.restart_frac is not None
        and scenario.engine == "hyperdb"
        else None
    )
    # Drive through the store's batch API: consecutive same-type ops go
    # down in one call (``capture_errors`` turns per-op rejections into
    # result slots), with batch boundaries at op-type changes and at the
    # scheduled restart.  Oracle bookkeeping is identical to the per-op
    # loop — slots come back in op order.
    n = len(ops)
    i = 0
    while i < n:
        if restart_at is not None and i == restart_at:
            try:
                engine.checkpoint()
                engine.recover()
                result.restarts += 1
            except DeviceOfflineError:
                # The restart landed inside a window: skip it (a planned
                # restart would not be attempted on a down tier).
                pass
        op = ops[i][0]
        j = i + 1
        while j < n and ops[j][0] == op and j != restart_at:
            j += 1
        batch = ops[i:j]
        keys = [k for _, k, _ in batch]
        if op == "put":
            vals = [v for _, _, v in batch]
            slots = engine.put_many(keys, vals, capture_errors=True)
        elif op == "del":
            slots = engine.delete_many(keys, capture_errors=True)
        else:
            slots = engine.get_many(keys, capture_errors=True)
        for (op_, key, val), slot in zip(batch, slots):
            if isinstance(slot, DeviceOfflineError):
                # Unavailability, not loss: the op was rejected atomically
                # and is not acked, so the expected state does not change.
                if result is not None:
                    if op_ == "get":
                        result.unavailable_reads += 1
                    else:
                        result.unavailable_writes += 1
                continue
            if isinstance(slot, CorruptionError):
                # A *detected* corrupt read: the store reported the
                # checksum failure instead of returning wrong bytes.
                # Never silent — only possible under latent injection.
                if result is not None:
                    result.corrupt_detected += 1
                continue
            if op_ == "get":
                got, _ = slot
                if result is not None:
                    want = expected.get(key)
                    if got == want:
                        result.reads_ok += 1
                    elif _is_suspect(engine, scenario, key):
                        # The store flagged this key's newest copy as a
                        # corruption casualty: the mismatch is *detected*
                        # loss awaiting anti-entropy, not silent.
                        result.excused_losses += 1
                    elif want is None:
                        result.resurrections += 1
                    elif got is None:
                        result.lost_writes += 1
                    else:
                        result.stale_reads += 1
                continue
            # The write returned: it is acked and must survive.
            expected[key] = val if op_ == "put" else None
            if result is not None:
                result.writes_acked += 1
        if (
            result is not None
            and scenario.scrub_interval
            and getattr(engine, "scrubber", None) is not None
        ):
            engine.scrubber.maybe_run(len(batch))
        i = j
    if result is not None:
        result.ops_issued = len(ops)
    return expected


def _pump_until_healthy(engine, scenario, result, expected, limit: int = 4000):
    """Age still-open windows past their end with pump writes.

    A window scheduled near the end of the span may still be open when the
    op stream runs out (the global I/O clock only advances with traffic).
    Pump puts go to dedicated keys, are tracked by the oracle like any
    acked write, and advance the clock via whichever tier is up.
    """
    devices = engine.devices()
    i = 0
    while any(
        d.health() is not HealthState.HEALTHY for d in devices.values()
    ):
        if i >= limit:
            result.violations.append(
                "devices never returned to HEALTHY within the pump budget"
            )
            return
        key = encode_key(_PUMP_KEY_BASE + (i % 500))
        val = b"pump%06d" % i
        try:
            engine.put(key, val)
            expected[key] = val
            result.writes_acked += 1
        except DeviceOfflineError:
            result.unavailable_writes += 1
        result.pump_ops += 1
        i += 1


def _drain_recovery(engine, scenario, result):
    """Run the post-recovery catch-up explicitly (idempotent)."""
    if scenario.engine == "hyperdb":
        engine.migration.run_catch_up()
        if engine.migration.has_catch_up:
            result.violations.append("catch-up queue not empty after recovery")
    else:
        if engine._catch_up_pending:
            engine._run_catch_up()
        if engine._catch_up_pending:
            result.violations.append("catch-up still pending after recovery")


def _collect_degraded_stats(engine, scenario, result):
    for name, dev in engine.devices().items():
        result.offline_rejections[name] = dev.offline_rejections
        result.brownout_ios[name] = dev.brownout_ios
        result.stall_seconds += dev.stall_seconds
    if scenario.engine == "hyperdb":
        result.failover_writes = engine.stats.counter("failover_writes").value
        result.failover_reads = engine.stats.counter("failover_reads").value
        ms = engine.migration.stats
        result.paused_migrations = ms.paused_jobs
        result.requeued_objects = ms.requeued_objects
        result.catch_up_drains = ms.catch_up_drains
        if engine.scrubber is not None:
            st = engine.scrubber.stats
            result.scrub_enabled = True
            result.scrub_passes = st.passes
            result.scrub_detected = st.detected
            result.scrub_repaired = st.repaired
            result.scrub_unrecoverable = st.unrecoverable
            result.scrub_paused = st.paused_passes
    else:
        result.failover_writes = engine.failover_writes
        result.paused_migrations = engine.paused_demotions
        result.requeued_objects = engine.requeued_objects
        result.catch_up_drains = engine.catch_up_drains


def _is_suspect(engine, scenario, key) -> bool:
    """Was this key flagged by the store as a corruption casualty?

    Only consulted under latent injection: a read mismatch on a suspect
    key is *detected* loss (the single-node store has no healthy copy
    left, and says so — anti-entropy would heal it from a replica), while
    a mismatch on a non-suspect key is silent corruption and fails."""
    if scenario.latent_rate <= 0.0:
        return False
    return key in getattr(engine, "suspect_keys", ())


def _verify(engine, expected, result, scenario):
    """The integrity oracle: every acked write readable with latest value."""
    for key in sorted(expected):
        want = expected[key]
        try:
            got, _ = engine.get(key)
        except DeviceOfflineError:
            result.violations.append(
                f"read rejected after recovery for key {key!r}"
            )
            continue
        except CorruptionError:
            if scenario.latent_rate > 0.0:
                result.keys_verified += 1
                result.corrupt_detected += 1
            else:
                result.violations.append(
                    f"corruption reported without latent injection "
                    f"for key {key!r}"
                )
            continue
        result.keys_verified += 1
        if got == want:
            continue
        if _is_suspect(engine, scenario, key):
            result.excused_losses += 1
        elif want is None:
            result.resurrections += 1
        elif got is None:
            result.lost_writes += 1
        else:
            result.stale_reads += 1


def _check_window_effects(engine, scenario, result):
    """The scheduled windows must have actually bitten."""
    devices = engine.devices()
    for spec in scenario.windows:
        dev = devices[spec.device]
        if spec.state is HealthState.OFFLINE:
            # The engines peek at device health and route around an offline
            # tier, so the success signal is *either* a device-level
            # rejection (a background path hit the tier via its health
            # epoch) *or* engine-level degraded-mode activity.
            degraded = (
                dev.offline_rejections > 0
                or result.failover_writes > 0
                or result.failover_reads > 0
                or result.paused_migrations > 0
                or result.unavailable_reads > 0
                or result.unavailable_writes > 0
            )
            if not degraded:
                result.violations.append(
                    f"outage window on {spec.device!r} had no effect"
                )
        elif spec.state is HealthState.BROWNOUT:
            if dev.brownout_ios == 0:
                result.violations.append(
                    f"brownout window on {spec.device!r} surcharged no I/O"
                )
    # An NVMe outage must have been served from the capacity tier.
    nvme_offline = any(
        s.device == "nvme" and s.state is HealthState.OFFLINE
        for s in scenario.windows
    )
    if nvme_offline and result.failover_writes == 0:
        result.violations.append("NVMe outage produced no failover writes")
    # Ledger sanity: busy time decomposes into latency + transfer exactly.
    for name, dev in devices.items():
        t = dev.traffic
        if abs(t.busy_seconds() - (t.latency_seconds() + t.transfer_seconds())) > 1e-6:
            result.violations.append(f"ledger of {name!r} lost time")


def _check_scrub_effects(engine, scenario, result):
    """Latent injection must have bitten and scrub must have run."""
    if scenario.scrub_interval > 0 and result.scrub_passes == 0:
        result.violations.append("scrubber was armed but never completed a pass")
    if scenario.latent_rate > 0.0:
        if result.latent_flips == 0:
            result.violations.append("latent injection produced no bitflips")
        handled = (
            result.scrub_detected
            + result.corrupt_detected
            + result.excused_losses
        )
        if scenario.engine == "hyperdb":
            # Detections by foreground fall-through and by the tolerant
            # maintenance paths count too — any one of these means the
            # flips surfaced as *detected*, never silent.
            handled += (
                engine.stats.counter("nvme_corrupt_reads").value
                + engine.stats.counter("nvme_corrupt_maintenance").value
                + engine.stats.counter("semi_corrupt_blocks").value
            )
        if handled == 0:
            result.violations.append(
                "latent bitflips were injected but never detected"
            )


def measure_soak_throughput(num_ops: int = 600, seed: int = 0) -> dict:
    """Simulated ops/s healthy vs one-tier-degraded (the perf-bench hook).

    Drives the same op stream twice — once fault-free, once with an NVMe
    outage window — and compares simulated service throughput (ops per
    simulated busy second).  Deterministic for a given ``(num_ops, seed)``.
    """
    sc = ChaosScenario(
        name="hyperdb-nvme-outage",
        engine="hyperdb",
        num_ops=num_ops,
        windows=(WindowSpec("nvme", HealthState.OFFLINE, 0.30, 0.45),),
    )
    ops = _ops_stream(seed * 1_000_003 + sum(sc.name.encode()), num_ops)
    probe = FaultInjector(FaultPlan(seed=seed))
    healthy = _build_engine(sc, probe)
    _drive(healthy, ops, sc, None)
    healthy_busy = sum(d.busy_seconds() for d in healthy.devices().values())

    windows = _resolve_windows(sc, probe.total_ios)
    inj = FaultInjector(FaultPlan(seed=seed, health_windows=windows))
    engine = _build_engine(sc, inj)
    result = SoakResult(scenario=sc.name, engine=sc.engine)
    _drive(engine, ops, sc, result)
    _collect_degraded_stats(engine, sc, result)
    degraded_busy = sum(d.busy_seconds() for d in engine.devices().values())

    healthy_rate = num_ops / healthy_busy if healthy_busy > 0 else 0.0
    degraded_rate = num_ops / degraded_busy if degraded_busy > 0 else 0.0
    return {
        "soak_ops": num_ops,
        "sim_ops_per_s_healthy": round(healthy_rate, 3),
        "sim_ops_per_s_degraded": round(degraded_rate, 3),
        "degraded_over_healthy": round(degraded_rate / healthy_rate, 3)
        if healthy_rate > 0
        else 0.0,
        "failover_writes": result.failover_writes,
        "failover_reads": result.failover_reads,
        "unavailable_ops": result.unavailable_reads + result.unavailable_writes,
    }


# ------------------------------------------------------------------- fan-out


def run_soak(
    scenarios: Optional[list[ChaosScenario]] = None,
    seed: int = 0,
    workers: int = 1,
) -> SoakReport:
    """Run every scenario; identical report at any worker count."""
    if scenarios is None:
        scenarios = default_scenarios()
    jobs = [
        Job(run_scenario, args=(sc, seed), label=f"chaos:{sc.name}")
        for sc in scenarios
    ]
    outcomes = run_jobs(jobs, workers=workers)
    report = SoakReport()
    report.scenario_seconds = [o.seconds for o in outcomes]
    report.results = list(unwrap_all(outcomes))
    return report

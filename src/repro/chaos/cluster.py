"""Cluster chaos: node outages, rolling brownouts, outage during rebalance.

Lifts the single-node soak's discipline to cluster granularity.  Each
scenario drives a deterministic mixed op stream through a
:class:`repro.cluster.HyperDBCluster` whose node health windows are keyed
on the cluster op clock (fractions of the op stream — no probe run
needed), optionally joins or drains a node mid-stream, pumps writes until
every node is healthy again, force-drains hinted handoff, and then runs
the **cluster-wide integrity oracle**:

* every *quorum-acked* write reads back under ``read_full`` with exactly
  its latest acked value — or a provably *newer* value from a concurrent
  sub-quorum write (counted ``indeterminate``, standard leaderless
  semantics), never an older one and never nothing;
* a sub-quorum rejection (:class:`repro.common.errors.QuorumError`) is
  unavailability, never loss: the op was not acked, so the oracle's
  expected state does not advance (partially landed values enter a
  per-key *maybe* set, since newest-wins resolution may surface them);
* after verification every surviving replica of every acked key holds an
  identical envelope (read repair + hint replay converged the cluster).

Scenarios are independent and fully seeded, so fanning them across
worker processes via :mod:`repro.parallel` yields byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.harness import _ops_stream
from repro.cluster import ClusterConfig, HyperDBCluster
from repro.common.errors import CorruptionError, QuorumError
from repro.common.keys import encode_key
from repro.health.state import HealthState, HealthWindow
from repro.parallel import Job, run_jobs
from repro.parallel.pool import unwrap_all
from repro.scrub import ScrubConfig
from repro.simssd.faults import FaultInjector, FaultPlan

_PUMP_KEY_BASE = 40_000


# ---------------------------------------------------------------- scenarios


@dataclass(frozen=True)
class NodeWindowSpec:
    """A node health window positioned at fractions of the op stream."""

    node: str
    state: HealthState
    start_frac: float
    end_frac: float
    latency_multiplier: float = 1.0


@dataclass(frozen=True)
class ClusterScenario:
    """One seeded cluster soak: topology, quorums, windows, membership."""

    name: str
    num_ops: int
    num_nodes: int = 3
    replication_factor: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    windows: tuple[NodeWindowSpec, ...] = ()
    #: Node to join mid-stream (triggers a live rebalance), and when.
    join_node: Optional[str] = None
    join_frac: float = 0.0
    #: Node to gracefully drain mid-stream, and when.
    leave_node: Optional[str] = None
    leave_frac: float = 0.0
    #: Per-write probability of latent media corruption on every node's
    #: devices (surfaces at read time as checksum failures).
    latent_rate: float = 0.0
    #: Distinct bits flipped per latent corruption event.
    latent_burst: int = 1
    #: Client ops between node-local scrub passes (0 = scrub disabled).
    scrub_interval: int = 0
    #: Client ops between cluster anti-entropy passes (0 = disabled).
    anti_entropy_every: int = 0

    def config(self) -> ClusterConfig:
        return ClusterConfig(
            num_nodes=self.num_nodes,
            replication_factor=self.replication_factor,
            read_quorum=self.read_quorum,
            write_quorum=self.write_quorum,
        )


def default_cluster_scenarios(num_ops: int = 400) -> list[ClusterScenario]:
    """The cluster matrix: outage, rolling brownouts, outage-in-rebalance,
    and a graceful drain."""
    return [
        ClusterScenario(
            name="cluster-node-outage",
            num_ops=num_ops,
            windows=(
                NodeWindowSpec("node-1", HealthState.OFFLINE, 0.30, 0.55),
            ),
        ),
        ClusterScenario(
            name="cluster-rolling-brownouts",
            num_ops=num_ops,
            windows=(
                NodeWindowSpec("node-0", HealthState.BROWNOUT, 0.10, 0.35, 4.0),
                NodeWindowSpec("node-1", HealthState.BROWNOUT, 0.30, 0.55, 6.0),
                NodeWindowSpec("node-2", HealthState.BROWNOUT, 0.50, 0.75, 4.0),
            ),
        ),
        ClusterScenario(
            name="cluster-outage-during-rebalance",
            num_ops=num_ops,
            join_node="node-3",
            join_frac=0.40,
            windows=(
                NodeWindowSpec("node-1", HealthState.OFFLINE, 0.45, 0.70),
            ),
        ),
        ClusterScenario(
            name="cluster-node-drain",
            num_ops=num_ops,
            num_nodes=4,
            leave_node="node-3",
            leave_frac=0.50,
        ),
        # W=RF: any node outage makes writes sub-quorum — the path where
        # rejections must surface as unavailability (and partially landed
        # values as indeterminate reads), never as loss.
        ClusterScenario(
            name="cluster-strict-quorum-outage",
            num_ops=num_ops,
            read_quorum=1,
            write_quorum=3,
            windows=(
                NodeWindowSpec("node-2", HealthState.OFFLINE, 0.35, 0.60),
            ),
        ),
        *scrub_cluster_scenarios(num_ops),
    ]


def scrub_cluster_scenarios(num_ops: int = 400) -> list[ClusterScenario]:
    """Latent-corruption cluster soaks: with RF >= 2 and the scrub +
    anti-entropy loop running, every quorum-acked write must survive
    *exactly* — corrupt replicas are re-replicated from healthy ones, so
    the oracle tolerates no loss at all, silent or detected."""
    return [
        ClusterScenario(
            name="cluster-latent-scrub",
            num_ops=num_ops,
            replication_factor=2,
            read_quorum=1,
            write_quorum=2,
            latent_rate=0.008,
            latent_burst=2,
            scrub_interval=120,
            anti_entropy_every=100,
        ),
        ClusterScenario(
            # Latent flips composed with a node outage: the offline node
            # skips its scrub passes and is repaired late, after healthy
            # replicas carried the keys through the window.
            name="cluster-latent-outage",
            num_ops=num_ops,
            windows=(
                NodeWindowSpec("node-1", HealthState.OFFLINE, 0.30, 0.55),
            ),
            latent_rate=0.015,
            latent_burst=2,
            scrub_interval=120,
            anti_entropy_every=120,
        ),
    ]


def smoke_cluster_scenarios(num_ops: int = 300) -> list[ClusterScenario]:
    """CI configuration: one outage + one outage-during-rebalance."""
    full = {s.name: s for s in default_cluster_scenarios(num_ops)}
    return [
        full["cluster-node-outage"],
        full["cluster-outage-during-rebalance"],
    ]


def _resolve_node_windows(
    scenario: ClusterScenario,
) -> tuple[HealthWindow, ...]:
    """Node windows over 1-based cluster op ordinals (no probe needed:
    the cluster clock ticks exactly once per client op)."""
    out = []
    for spec in scenario.windows:
        start = max(1, int(scenario.num_ops * spec.start_frac))
        end = max(start + 1, int(scenario.num_ops * spec.end_frac))
        out.append(
            HealthWindow(
                device=spec.node,
                state=spec.state,
                start_io=start,
                end_io=end,
                latency_multiplier=spec.latency_multiplier,
            )
        )
    return tuple(out)


# ---------------------------------------------------------------- reporting


@dataclass
class ClusterSoakResult:
    """Outcome of one cluster chaos scenario."""

    scenario: str
    ops_issued: int = 0
    writes_acked: int = 0
    reads_ok: int = 0
    indeterminate_reads: int = 0
    unavailable_writes: int = 0
    unavailable_reads: int = 0
    partial_writes: int = 0
    hints_stored: int = 0
    hints_replayed: int = 0
    hints_obsolete: int = 0
    read_repairs: int = 0
    rebalanced_keys: int = 0
    rebalance_jobs: int = 0
    offline_rejections: dict[str, int] = field(default_factory=dict)
    brownout_ops: dict[str, int] = field(default_factory=dict)
    pump_ops: int = 0
    lost_writes: int = 0
    stale_reads: int = 0
    resurrections: int = 0
    divergent_replicas: int = 0
    keys_verified: int = 0
    violations: list[str] = field(default_factory=list)
    #: Latent-corruption accounting (all zero — and the summary line
    #: absent — unless the scenario injects latent bitflips).
    scrub_enabled: bool = False
    latent_flips: int = 0
    corrupt_replica_reads: int = 0
    corrupt_replica_repairs: int = 0
    scrub_detected: int = 0
    scrub_repaired: int = 0
    scrub_unrecoverable: int = 0
    anti_entropy_passes: int = 0
    anti_entropy_suspects: int = 0
    anti_entropy_repairs: int = 0
    #: Cluster-level rollup: total replica heals from every mechanism
    #: (local scrub ladder, corrupt-replica read repair, anti-entropy),
    #: and suspect keys still awaiting a quorum at the end of the run.
    scrub_healed: int = 0
    scrub_unhealed: int = 0

    @property
    def passed(self) -> bool:
        return (
            not self.violations
            and self.lost_writes == 0
            and self.stale_reads == 0
            and self.resurrections == 0
            and self.divergent_replicas == 0
            and self.keys_verified > 0
        )

    def summary(self) -> str:
        status = "ok " if self.passed else "FAIL"
        reject = ",".join(
            f"{n}={c}" for n, c in sorted(self.offline_rejections.items()) if c
        ) or "none"
        brown = ",".join(
            f"{n}={c}" for n, c in sorted(self.brownout_ops.items()) if c
        ) or "none"
        lines = [
            f"[{self.scenario}] {status} {self.ops_issued} ops "
            f"({self.writes_acked} writes acked, {self.reads_ok} reads ok, "
            f"{self.indeterminate_reads} indeterminate, "
            f"{self.unavailable_reads}r/{self.unavailable_writes}w unavailable, "
            f"{self.partial_writes} partial), {self.keys_verified} keys verified "
            f"(lost={self.lost_writes} stale={self.stale_reads} "
            f"resurrected={self.resurrections} divergent={self.divergent_replicas})",
            f"  replication: hints stored={self.hints_stored} "
            f"replayed={self.hints_replayed} obsolete={self.hints_obsolete} "
            f"read_repairs={self.read_repairs} "
            f"rebalanced={self.rebalanced_keys} over {self.rebalance_jobs} job(s)",
            f"  nodes: offline_rejections[{reject}] brownout_ops[{brown}] "
            f"pump_ops={self.pump_ops}",
        ]
        if self.scrub_enabled:
            lines.append(
                f"  scrub: latent_flips={self.latent_flips} "
                f"detected={self.scrub_detected} "
                f"repaired={self.scrub_repaired} "
                f"unrecoverable={self.scrub_unrecoverable} "
                f"corrupt_reads={self.corrupt_replica_reads} "
                f"corrupt_repairs={self.corrupt_replica_repairs} "
                f"anti_entropy={self.anti_entropy_passes}p/"
                f"{self.anti_entropy_suspects}s/{self.anti_entropy_repairs}r "
                f"healed={self.scrub_healed} unhealed={self.scrub_unhealed}"
            )
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


@dataclass
class ClusterSoakReport:
    """All cluster scenarios of one chaos run."""

    results: list[ClusterSoakResult] = field(default_factory=list)
    scenario_seconds: list[float] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)

    def summary(self) -> str:
        return "\n".join(r.summary() for r in self.results)


# --------------------------------------------------------------- the oracle


_MISSING = object()


class _Oracle:
    """Expected state per key: last acked value + unacked *maybe* values.

    ``expected[key]`` is the latest quorum-acked payload (``None`` for an
    acked delete).  ``maybe[key]`` holds payloads of writes that failed
    their quorum but landed on >= 1 replica *after* the last ack — a read
    returning one of those is legal (the write may yet win newest-wins
    resolution) but counted separately; acking a new write clears them.
    """

    def __init__(self) -> None:
        self.expected: dict[bytes, Optional[bytes]] = {}
        self.maybe: dict[bytes, set] = {}

    def acked(self, key: bytes, value: Optional[bytes]) -> None:
        self.expected[key] = value
        self.maybe.pop(key, None)

    def partial(self, key: bytes, value: Optional[bytes]) -> None:
        self.maybe.setdefault(key, set()).add(value)

    def classify(self, key: bytes, got: Optional[bytes], result, final: bool):
        """Score one observed read against the expectation for ``key``."""
        want = self.expected.get(key)
        if got == want:
            if final:
                result.keys_verified += 1
            else:
                result.reads_ok += 1
            return
        if got in self.maybe.get(key, ()):
            result.indeterminate_reads += 1
            if final:
                result.keys_verified += 1
            return
        if final:
            result.keys_verified += 1
        if want is None:
            result.resurrections += 1
        elif got is None:
            result.lost_writes += 1
        else:
            result.stale_reads += 1


# --------------------------------------------------------------------- soak


def run_cluster_scenario(
    scenario: ClusterScenario, seed: int = 0
) -> ClusterSoakResult:
    """Drive, pump to health, drain handoff, verify, audit replicas."""
    result = ClusterSoakResult(scenario=scenario.name)
    ops = _ops_stream(
        seed * 1_000_003 + sum(scenario.name.encode()), scenario.num_ops
    )
    injectors: dict[str, FaultInjector] = {}
    if scenario.latent_rate > 0.0:
        names = [f"node-{i}" for i in range(scenario.num_nodes)]
        if scenario.join_node is not None:
            names.append(scenario.join_node)
        # Each node gets its own plan seed: replica traffic is nearly
        # symmetric, so a shared latent RNG stream would fire on the same
        # ordinal write at every node and corrupt all copies of one key
        # at once — decorrelated streams model independent media faults.
        injectors = {
            name: FaultInjector(
                FaultPlan(
                    seed=seed * 1_000_003 + sum(name.encode()),
                    latent_bitflip_rate=scenario.latent_rate,
                    latent_burst_bits=scenario.latent_burst,
                )
            )
            for name in names
        }
    cluster = HyperDBCluster(
        scenario.config(),
        windows=_resolve_node_windows(scenario),
        seed=seed,
        scrub=(
            ScrubConfig(interval_ops=scenario.scrub_interval)
            if scenario.scrub_interval
            else None
        ),
        injectors=injectors,
    )
    oracle = _Oracle()

    join_at = (
        int(scenario.num_ops * scenario.join_frac)
        if scenario.join_node is not None
        else None
    )
    leave_at = (
        int(scenario.num_ops * scenario.leave_frac)
        if scenario.leave_node is not None
        else None
    )

    for i, (op, key, val) in enumerate(ops):
        if join_at is not None and i == join_at:
            cluster.add_node(scenario.join_node)
        if leave_at is not None and i == leave_at:
            cluster.remove_node(scenario.leave_node)
        if (
            scenario.anti_entropy_every
            and i > 0
            and i % scenario.anti_entropy_every == 0
        ):
            cluster.anti_entropy()
        if op == "get":
            try:
                got, _ = cluster.get(key)
            except QuorumError:
                result.unavailable_reads += 1
                continue
            oracle.classify(key, got, result, final=False)
            continue
        value = val if op == "put" else None
        try:
            if op == "put":
                cluster.put(key, val)
            else:
                cluster.delete(key)
        except QuorumError as exc:
            result.unavailable_writes += 1
            if exc.acks >= 1:
                result.partial_writes += 1
                oracle.partial(key, value)
            continue
        oracle.acked(key, value)
        result.writes_acked += 1
    result.ops_issued = len(ops)

    _pump_until_healthy(cluster, result, oracle)
    cluster.drain_hints()
    if cluster.pending_hints:
        result.violations.append(
            f"{cluster.pending_hints} hint(s) still pending after drain"
        )
    if scenario.anti_entropy_every:
        # Final convergence pass with every node healthy again: whatever
        # corruption the soak left behind must be healed from replicas
        # before the oracle demands exact read-back of every acked write.
        cluster.anti_entropy()

    _verify(cluster, oracle, result)
    _audit_replicas(cluster, oracle, result, scenario)
    _collect(cluster, result, scenario)
    result.latent_flips = sum(i.latent_bitflips for i in injectors.values())
    _check_window_effects(cluster, scenario, result)
    _check_scrub_effects(cluster, scenario, result)
    return result


def _pump_until_healthy(cluster, result, oracle, limit: int = 4000) -> None:
    """Age still-open node windows past their end with pump writes.

    The cluster clock only advances with traffic, so a window still open
    when the stream ends needs pump ops — tracked by the oracle exactly
    like client writes."""
    i = 0
    while not cluster.all_healthy():
        if i >= limit:
            result.violations.append(
                "nodes never returned to HEALTHY within the pump budget"
            )
            return
        key = encode_key(_PUMP_KEY_BASE + (i % 500))
        val = b"pump%06d" % i
        try:
            cluster.put(key, val)
            oracle.acked(key, val)
            result.writes_acked += 1
        except QuorumError as exc:
            result.unavailable_writes += 1
            if exc.acks >= 1:
                oracle.partial(key, val)
        result.pump_ops += 1
        i += 1


def _verify(cluster, oracle, result) -> None:
    """Every acked write must read back (R=RF) with its latest value."""
    for key in sorted(oracle.expected):
        try:
            got, _ = cluster.read_full(key)
        except QuorumError:
            result.violations.append(
                f"full read rejected after recovery for key {key!r}"
            )
            continue
        oracle.classify(key, got, result, final=True)


def _audit_replicas(cluster, oracle, result, scenario) -> None:
    """Post-repair convergence: all replicas of a key hold one envelope.

    :meth:`read_full` repaired every stale replica during verification, so
    any divergence left here is a real handoff/repair bug.  Under latent
    injection a *repair write itself* can corrupt on the medium; such a
    copy fails its checksum here (detected, not silent) and one more
    ``read_full`` heals it from the surviving replicas before the
    convergence check."""
    for key in sorted(oracle.expected):
        replicas = cluster.ring.replicas_for(
            key, cluster.config.replication_factor
        )
        seen = set()
        for name in replicas:
            try:
                env, _ = cluster.nodes[name].get_envelope(key)
            except CorruptionError:
                if scenario.latent_rate <= 0.0:
                    raise
                cluster.stats.counter("corrupt_replica_reads").add()
                cluster.read_full(key)
                env, _ = cluster.nodes[name].get_envelope(key)
            seen.add(None if env is None else (env[0], env[1], env[2]))
        if len(seen) > 1:
            result.divergent_replicas += 1
            result.violations.append(
                f"replicas of {key!r} diverge across {sorted(replicas)}"
            )


def _collect(cluster, result, scenario) -> None:
    counters = cluster.counters()
    result.hints_stored = counters["hints_stored"]
    result.hints_replayed = counters["hints_replayed"]
    result.hints_obsolete = counters["hints_obsolete"]
    result.read_repairs = counters["read_repairs"]
    result.rebalanced_keys = counters["rebalanced_keys"]
    result.rebalance_jobs = len(cluster.rebalance_jobs)
    result.offline_rejections = dict(sorted(cluster.offline_rejections.items()))
    result.brownout_ops = dict(sorted(cluster.brownout_ops.items()))
    if scenario.latent_rate > 0.0 or scenario.scrub_interval:
        result.scrub_enabled = True
        counter = cluster.stats.counter
        result.corrupt_replica_reads = counter("corrupt_replica_reads").value
        result.corrupt_replica_repairs = counter("corrupt_replica_repairs").value
        result.anti_entropy_passes = counter("anti_entropy_passes").value
        result.anti_entropy_suspects = counter("anti_entropy_suspects").value
        result.anti_entropy_repairs = counter("anti_entropy_repairs").value
        for name in sorted(cluster.nodes):
            scrubber = cluster.nodes[name].db.scrubber
            if scrubber is not None:
                result.scrub_detected += scrubber.stats.detected
                result.scrub_repaired += scrubber.stats.repaired
                result.scrub_unrecoverable += scrubber.stats.unrecoverable
        result.scrub_healed = (
            result.scrub_repaired
            + result.corrupt_replica_repairs
            + result.anti_entropy_repairs
        )
        result.scrub_unhealed = len(cluster.unhealed_suspects) + sum(
            len(cluster.nodes[n].db.suspect_keys) for n in sorted(cluster.nodes)
        )


def _check_window_effects(cluster, scenario, result) -> None:
    """Each scheduled degradation (and membership change) must have bitten."""
    for spec in scenario.windows:
        if spec.state is HealthState.OFFLINE:
            bit = (
                result.offline_rejections.get(spec.node, 0) > 0
                or result.hints_stored > 0
                or result.unavailable_writes > 0
                or result.unavailable_reads > 0
            )
            if not bit:
                result.violations.append(
                    f"outage window on {spec.node!r} had no effect"
                )
        elif spec.state is HealthState.BROWNOUT:
            if result.brownout_ops.get(spec.node, 0) == 0:
                result.violations.append(
                    f"brownout window on {spec.node!r} surcharged no ops"
                )
    if scenario.join_node is not None or scenario.leave_node is not None:
        moved = result.rebalanced_keys + sum(
            j.hinted for j in cluster.rebalance_jobs
        )
        if moved == 0:
            result.violations.append("membership change moved no keys")
    # An outage overlapping quorum writes must have exercised handoff.
    outage = any(
        s.state is HealthState.OFFLINE for s in scenario.windows
    )
    if outage and result.hints_stored == 0 and result.unavailable_writes == 0:
        result.violations.append("node outage produced no hints or rejections")


def _check_scrub_effects(cluster, scenario, result) -> None:
    """Latent injection must have bitten, and the heal loop must have run."""
    if scenario.anti_entropy_every and result.anti_entropy_passes == 0:
        result.violations.append("anti-entropy never ran")
    if scenario.latent_rate > 0.0:
        if result.latent_flips == 0:
            result.violations.append("latent injection produced no bitflips")
        handled = (
            result.scrub_detected
            + result.corrupt_replica_reads
            + result.anti_entropy_suspects
        )
        for node in cluster.nodes.values():
            stats = node.db.stats
            handled += (
                stats.counter("nvme_corrupt_reads").value
                + stats.counter("nvme_corrupt_maintenance").value
                + stats.counter("semi_corrupt_blocks").value
            )
        if handled == 0:
            result.violations.append(
                "latent bitflips were injected but never detected"
            )
        if scenario.anti_entropy_every and result.scrub_unhealed > 0:
            # The run ends with every node healthy and a final anti-entropy
            # pass, so any suspect key left unhealed means the heal loop
            # dropped it rather than deferring it.
            result.violations.append(
                f"{result.scrub_unhealed} suspect key(s) left unhealed "
                f"after the final anti-entropy pass"
            )


# ------------------------------------------------------------------ fan-out


def run_cluster_soak(
    scenarios: Optional[list[ClusterScenario]] = None,
    seed: int = 0,
    workers: int = 1,
) -> ClusterSoakReport:
    """Run every cluster scenario; identical report at any worker count."""
    if scenarios is None:
        scenarios = default_cluster_scenarios()
    jobs = [
        Job(run_cluster_scenario, args=(sc, seed), label=f"cluster:{sc.name}")
        for sc in scenarios
    ]
    outcomes = run_jobs(jobs, workers=workers)
    report = ClusterSoakReport()
    report.scenario_seconds = [o.seconds for o in outcomes]
    report.results = list(unwrap_all(outcomes))
    return report


# ------------------------------------------------------------------- perf


def measure_cluster_throughput(num_ops: int = 400, seed: int = 0) -> dict:
    """Simulated quorum-write ops/s, healthy vs one-node-degraded.

    Drives the same op stream through two identical clusters — one
    fault-free, one with a single-node outage window — and compares
    simulated service throughput.  Deterministic for ``(num_ops, seed)``;
    the ``repro.perf`` ``cluster_soak`` bench records the ratio.
    """
    base = ClusterScenario(name="cluster-node-outage", num_ops=num_ops)
    ops = _ops_stream(seed * 1_000_003 + sum(base.name.encode()), num_ops)

    def drive(windows):
        cluster = HyperDBCluster(base.config(), windows=windows, seed=seed)
        acked = unavailable = 0
        # Batched dispatch: consecutive same-type ops go through the
        # router's batch API with per-op error capture; quorum outcomes
        # and counters are identical to the per-op loop.
        n = len(ops)
        i = 0
        while i < n:
            op = ops[i][0]
            j = i + 1
            while j < n and ops[j][0] == op:
                j += 1
            batch = ops[i:j]
            keys = [k for _, k, _ in batch]
            if op == "put":
                vals = [v for _, _, v in batch]
                slots = cluster.put_many(keys, vals, capture_errors=True)
            elif op == "del":
                slots = cluster.delete_many(keys, capture_errors=True)
            else:
                slots = cluster.get_many(keys, capture_errors=True)
            for slot in slots:
                if isinstance(slot, QuorumError):
                    unavailable += 1
                elif op != "get":
                    acked += 1
            i = j
        return cluster, acked, unavailable

    healthy, h_acked, _ = drive(())
    degraded_scenario = ClusterScenario(
        name="cluster-node-outage",
        num_ops=num_ops,
        windows=(NodeWindowSpec("node-1", HealthState.OFFLINE, 0.30, 0.55),),
    )
    degraded, d_acked, d_unavail = drive(
        _resolve_node_windows(degraded_scenario)
    )
    h_busy = healthy.busy_seconds()
    d_busy = degraded.busy_seconds()
    h_rate = num_ops / h_busy if h_busy > 0 else 0.0
    d_rate = num_ops / d_busy if d_busy > 0 else 0.0
    return {
        "cluster_ops": num_ops,
        "quorum_writes_acked_healthy": h_acked,
        "quorum_writes_acked_degraded": d_acked,
        "unavailable_ops_degraded": d_unavail,
        "hints_stored": degraded.counters()["hints_stored"],
        "sim_ops_per_s_healthy": round(h_rate, 3),
        "sim_ops_per_s_degraded": round(d_rate, 3),
        "degraded_over_healthy": round(d_rate / h_rate, 3) if h_rate > 0 else 0.0,
    }

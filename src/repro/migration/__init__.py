"""Cross-tier migration (paper §3.5).

Demotion moves cold zones from NVMe to the capacity tier when a partition
crosses its high watermark, selected by a cost-benefit score (freed bytes per
read I/O).  Promotion moves hot objects read from SATA back up, staged
through an in-memory object cache and flushed asynchronously into the hot
zone with a *promotion* label.
"""

from repro.migration.scheduler import MigrationScheduler, MigrationStats
from repro.migration.promotion import PromotionManager

__all__ = ["MigrationScheduler", "MigrationStats", "PromotionManager"]

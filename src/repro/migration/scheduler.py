"""Watermark-driven zone demotion."""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.common.errors import DeviceOfflineError
from repro.health.state import HealthState
from repro.lsm.semi.engine import CapacityTier
from repro.nvme.partition import Partition
from repro.nvme.tier import PerformanceTier
from repro.simssd.traffic import TrafficKind


@dataclass
class MigrationStats:
    """What migration moved and what it cost."""

    demotion_jobs: int = 0
    demoted_objects: int = 0
    demoted_bytes: int = 0
    promoted_objects: int = 0
    promoted_bytes: int = 0
    #: Demotion jobs skipped or aborted because the capacity tier was
    #: OFFLINE; the partition was queued for catch-up instead.
    paused_jobs: int = 0
    #: Objects re-inserted into their partition after a collected zone's
    #: batch was rejected by an offline capacity tier.
    requeued_objects: int = 0
    #: Catch-up drains executed after the capacity tier recovered.
    catch_up_drains: int = 0


class MigrationScheduler:
    """Monitors NVMe capacity and demotes cold zones until the low watermark.

    Each partition has its own background migration job in the paper; the
    simulation runs them synchronously and lets the device time model account
    for the bandwidth they consume.

    Degraded mode: while the capacity device is in an OFFLINE health window
    no demotion runs — partitions above their watermark are queued, and the
    queue drains exactly once after recovery (:meth:`run_catch_up`).  A zone
    collected just before the window opened is put back whole, so demotion
    is always zone-atomic: fully migrated or fully resident.
    """

    def __init__(
        self,
        performance_tier: PerformanceTier,
        capacity_tier: CapacityTier,
        max_zones_per_job: int = 64,
    ) -> None:
        self.performance_tier = performance_tier
        self.capacity_tier = capacity_tier
        self.max_zones_per_job = max_zones_per_job
        self.stats = MigrationStats()
        #: Partition ids awaiting a catch-up demotion, in first-paused order.
        self._catch_up: list[int] = []

    # ------------------------------------------------------------- health

    def capacity_online(self) -> bool:
        """True unless the capacity device's next I/O would be rejected."""
        return self.capacity_tier.fs.device.health() is not HealthState.OFFLINE

    @property
    def catch_up_pending(self) -> tuple[int, ...]:
        """Partition ids queued for a post-recovery demotion pass."""
        return tuple(self._catch_up)

    @property
    def has_catch_up(self) -> bool:
        return bool(self._catch_up)

    def _pause(self, partition: Partition) -> None:
        self.stats.paused_jobs += 1
        if partition.partition_id not in self._catch_up:
            self._catch_up.append(partition.partition_id)
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "migration_paused",
                t=self.performance_tier.device.busy_seconds(),
                partition=partition.partition_id,
                fill=round(partition.fill_fraction, 6),
            )

    def run_catch_up(self) -> int:
        """Drain queued demotions once the capacity tier is back online.

        The queue is taken whole before demoting, so one recovery drains it
        exactly once — repeated calls are no-ops until another outage
        queues new work.  Returns the number of zones demoted.
        """
        if not self._catch_up or not self.capacity_online():
            return 0
        queued, self._catch_up = self._catch_up, []
        self.stats.catch_up_drains += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "migration_catchup",
                t=self.performance_tier.device.busy_seconds(),
                partitions=len(queued),
            )
        by_id = {p.partition_id: p for p in self.performance_tier.partitions}
        zones = 0
        for pid in queued:
            partition = by_id.get(pid)
            if partition is not None and partition.over_high_watermark():
                zones += self._demote_partition(partition)
        return zones

    # ----------------------------------------------------------- demotion

    def run_if_needed(self) -> int:
        """Demote from every partition above its high watermark.

        Returns the number of zones demoted.
        """
        zones = 0
        for partition in self.performance_tier.partitions:
            if partition.over_high_watermark():
                if not self.capacity_online():
                    self._pause(partition)
                    continue
                zones += self._demote_partition(partition)
        return zones

    def _demote_partition(self, partition: Partition) -> int:
        # One background migration job per partition invocation; a job may
        # demote many zones (up to max_zones_per_job) before it finishes.
        self.stats.demotion_jobs += 1
        zones = 0
        rec = obs.RECORDER
        device = self.performance_tier.device
        # Place this migration job on the least-busy background queue of
        # both tiers it moves data between (no-op on single-queue devices).
        device.begin_background_job(TrafficKind.MIGRATION)
        capacity_device = self.capacity_tier.fs.device
        if capacity_device is not device:
            capacity_device.begin_background_job(TrafficKind.MIGRATION)
        if rec is not None:
            rec.begin(
                "migration_job", t=device.busy_seconds(),
                fill=round(partition.fill_fraction, 6),
            )
        while (
            not partition.below_low_watermark() and zones < self.max_zones_per_job
        ):
            zone = partition.select_demotion_zone()
            if zone is None:
                break  # nothing left to demote (e.g. all data in the hot zone)
            try:
                batch, _ = partition.collect_zone(zone, TrafficKind.MIGRATION)
            except DeviceOfflineError:
                # The NVMe tier itself went offline at collection entry:
                # nothing was mutated (health epochs reject atomically).
                self._pause(partition)
                break
            if batch:
                try:
                    self.capacity_tier.ingest(batch, TrafficKind.MIGRATION)
                except DeviceOfflineError:
                    # Capacity went offline between collection and ingest
                    # (ingest rejects atomically at its epoch entry).  Put
                    # the zone's objects back so it stays fully resident,
                    # and queue this partition for post-recovery catch-up.
                    for r in batch:
                        partition.put(r, TrafficKind.MIGRATION)
                    self.stats.requeued_objects += len(batch)
                    self._pause(partition)
                    break
                self.stats.demoted_objects += len(batch)
                self.stats.demoted_bytes += sum(r.encoded_size for r in batch)
            if rec is not None:
                rec.emit(
                    "zone_demotion", t=device.busy_seconds(),
                    objects=len(batch),
                    bytes=sum(r.encoded_size for r in batch),
                )
            zones += 1
            if not batch and zone.object_count == 0 and partition.object_count() == 0:
                break
        if rec is not None:
            rec.end(
                "migration_job", t=device.busy_seconds(),
                zones=zones, fill=round(partition.fill_fraction, 6),
            )
        return zones

"""Watermark-driven zone demotion."""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.lsm.semi.engine import CapacityTier
from repro.nvme.partition import Partition
from repro.nvme.tier import PerformanceTier
from repro.simssd.traffic import TrafficKind


@dataclass
class MigrationStats:
    """What migration moved and what it cost."""

    demotion_jobs: int = 0
    demoted_objects: int = 0
    demoted_bytes: int = 0
    promoted_objects: int = 0
    promoted_bytes: int = 0


class MigrationScheduler:
    """Monitors NVMe capacity and demotes cold zones until the low watermark.

    Each partition has its own background migration job in the paper; the
    simulation runs them synchronously and lets the device time model account
    for the bandwidth they consume.
    """

    def __init__(
        self,
        performance_tier: PerformanceTier,
        capacity_tier: CapacityTier,
        max_zones_per_job: int = 64,
    ) -> None:
        self.performance_tier = performance_tier
        self.capacity_tier = capacity_tier
        self.max_zones_per_job = max_zones_per_job
        self.stats = MigrationStats()

    def run_if_needed(self) -> int:
        """Demote from every partition above its high watermark.

        Returns the number of zones demoted.
        """
        zones = 0
        for partition in self.performance_tier.partitions:
            if partition.over_high_watermark():
                zones += self._demote_partition(partition)
        return zones

    def _demote_partition(self, partition: Partition) -> int:
        # One background migration job per partition invocation; a job may
        # demote many zones (up to max_zones_per_job) before it finishes.
        self.stats.demotion_jobs += 1
        zones = 0
        rec = obs.RECORDER
        device = self.performance_tier.device
        if rec is not None:
            rec.begin(
                "migration_job", t=device.busy_seconds(),
                fill=round(partition.fill_fraction, 6),
            )
        while (
            not partition.below_low_watermark() and zones < self.max_zones_per_job
        ):
            zone = partition.select_demotion_zone()
            if zone is None:
                break  # nothing left to demote (e.g. all data in the hot zone)
            batch, _ = partition.collect_zone(zone, TrafficKind.MIGRATION)
            if batch:
                self.capacity_tier.ingest(batch, TrafficKind.MIGRATION)
                self.stats.demoted_objects += len(batch)
                self.stats.demoted_bytes += sum(r.encoded_size for r in batch)
            if rec is not None:
                rec.emit(
                    "zone_demotion", t=device.busy_seconds(),
                    objects=len(batch),
                    bytes=sum(r.encoded_size for r in batch),
                )
            zones += 1
            if not batch and zone.object_count == 0 and partition.object_count() == 0:
                break
        if rec is not None:
            rec.end(
                "migration_job", t=device.busy_seconds(),
                zones=zones, fill=round(partition.fill_fraction, 6),
            )
        return zones

"""Object promotion: SATA → object cache → hot zone (paper §3.5).

Hot objects read from the capacity tier first land in an in-memory object
cache; when evicted from it they are asynchronously flushed into their
partition's hot zone, marked with the *promotion* label so a later hot-zone
eviction can drop them without relocation (the SATA copy stays
authoritative).
"""

from __future__ import annotations

from repro import obs
from repro.common.cache import ObjectCache
from repro.common.records import Record
from repro.nvme.tier import PerformanceTier
from repro.simssd.traffic import TrafficKind


class PromotionManager:
    """Stages hot SATA reads for asynchronous promotion."""

    def __init__(
        self,
        performance_tier: PerformanceTier,
        cache_entries: int = 256,
        on_pressure=None,
    ) -> None:
        self.performance_tier = performance_tier
        self.cache = ObjectCache(cache_entries, on_evict=self._flush)
        #: Called when a promotion pushes a partition over its watermark —
        #: HyperDB wires this to the migration scheduler so promoted hot
        #: data displaces cold zones.
        self.on_pressure = on_pressure
        self.promotions = 0
        self.promoted_bytes = 0

    def _flush(self, key: bytes, rec: Record) -> None:
        partition = self.performance_tier.partition_for_key(key)
        service = partition.promote(rec, TrafficKind.MIGRATION)
        if service >= 0:
            self.promotions += 1
            self.promoted_bytes += rec.encoded_size
            trc = obs.RECORDER
            if trc is not None:
                trc.emit(
                    "promotion",
                    t=self.performance_tier.device.busy_seconds(),
                    bytes=rec.encoded_size,
                )
        if self.on_pressure is not None and partition.over_high_watermark():
            self.on_pressure()

    def stage(self, rec: Record) -> None:
        """Remember a hot object read from SATA for promotion."""
        self.cache.put(rec.key, rec)

    def lookup(self, key: bytes) -> Record | None:
        """Serve a read from the staging cache (newest promoted copy)."""
        return self.cache.get(key)

    def invalidate(self, key: bytes) -> None:
        """Drop a staged copy (the object was overwritten)."""
        self.cache.pop(key)

    def drain(self) -> None:
        """Flush everything staged (used at shutdown / phase boundaries)."""
        self.cache.drain()

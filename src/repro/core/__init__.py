"""HyperDB: the paper's full key-value store.

:class:`repro.core.hyperdb.HyperDB` assembles the zone-based NVMe tier, the
hotness tracker, cost-benefit migration, and the semi-SSTable capacity tier
behind a single put/get/delete/scan API.
"""

from repro.core.interface import KVStore
from repro.core.config import HyperDBConfig
from repro.core.hyperdb import HyperDB

__all__ = ["KVStore", "HyperDBConfig", "HyperDB"]

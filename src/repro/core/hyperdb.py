"""The HyperDB engine (paper §3).

Write path: objects land in the NVMe tier's zone slots (in-place for small
updates).  When a partition crosses its high watermark, the migration
scheduler demotes its coldest zones (cost-benefit) into the capacity tier's
L1, where semi-SSTables absorb them with block-granularity merges and
preemptive block compaction keeps deeper levels in shape.

Read path: NVMe (zones + hot zone) → promotion staging cache → capacity
tier.  Hot SATA reads are staged for asynchronous promotion into the hot
zone with a *promotion* label.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro import obs
from repro.common.cache import LRUCache
from repro.common.errors import CorruptionError, DeviceOfflineError, ReproError
from repro.common.records import Record
from repro.common.stats import StatsRegistry
from repro.core.config import HyperDBConfig
from repro.core.interface import KVStore
from repro.health import admission as admission_mod
from repro.health.admission import AdmissionController
from repro.health.state import HealthState
from repro.lsm.iterator import merge_records
from repro.lsm.semi.engine import CapacityTier
from repro.lsm.semi.levels import SemiLevelConfig
from repro.migration.promotion import PromotionManager
from repro.migration.scheduler import MigrationScheduler
from repro.nvme.tier import PerformanceTier
from repro.simssd.device import SimDevice
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind


class HyperDB(KVStore):
    """The paper's hybrid key-value store over two simulated devices."""

    name = "hyperdb"

    def __init__(
        self,
        nvme_device: SimDevice,
        sata_device: SimDevice,
        config: HyperDBConfig,
    ) -> None:
        self.config = config
        self.nvme_device = nvme_device
        self.sata_device = sata_device
        self.cache = LRUCache(config.dram_cache_bytes)
        self.stats = StatsRegistry()
        self._seqno = 0

        nvme_cfg = config.nvme
        if not config.enable_hot_zone:
            # Ablation: shrink the hot zone to (effectively) nothing.
            from dataclasses import replace

            nvme_cfg = replace(nvme_cfg, hot_zone_fraction=1e-9)
        self.performance_tier = PerformanceTier(
            nvme_device, config.key_space, nvme_cfg, cache=self.cache
        )
        #: Keys whose *newest* copy may have been lost to media corruption
        #: (a non-promoted resident dropped with no authoritative
        #: capacity-tier twin).  The cluster's anti-entropy pass drains
        #: this to re-replicate from healthy replicas; single-node callers
        #: can inspect it — the loss is recorded, never hidden.
        self.suspect_keys: list[bytes] = []
        for p in self.performance_tier.partitions:
            p.on_corrupt_slot = self._on_corrupt_slot_dropped

        sata_fs = SimFilesystem(sata_device)
        semi_cfg = SemiLevelConfig(
            key_space=config.key_space,
            num_levels=config.semi_num_levels,
            size_ratio=config.semi_size_ratio,
            bottom_segments=config.semi_bottom_segments,
            block_size=config.semi_block_size,
            level1_target_bytes=config.semi_level1_target_bytes,
        )
        depth = config.compaction_depth if config.enable_preemptive_compaction else 1
        self.capacity_tier = CapacityTier(
            sata_fs,
            semi_cfg,
            depth=depth,
            t_clean=config.t_clean,
            space_amp_limit=config.space_amp_limit,
            candidate_k=config.candidate_k,
            rng=np.random.default_rng(config.rng_seed),
            cache=self.cache,
        )
        self.capacity_tier.levels.on_corrupt_block = self._on_corrupt_semi_block
        self.migration = MigrationScheduler(self.performance_tier, self.capacity_tier)
        self.admission = (
            AdmissionController(config.admission)
            if config.admission is not None
            else None
        )
        self.promotion = PromotionManager(
            self.performance_tier,
            cache_entries=config.nvme.object_cache_entries,
            on_pressure=self.migration.run_if_needed,
        )
        #: Background integrity scrubber — None unless configured, so the
        #: write/read hot paths below never pay for it by default.
        self.scrubber = None
        if config.scrub is not None:
            from repro.scrub import Scrubber

            self.scrubber = Scrubber(self, config.scrub)

    # -------------------------------------------------------------- write

    def next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def put(self, key: bytes, value: bytes) -> float:
        """Insert or update: write to the NVMe tier, migrate if over watermark."""
        self.stats.counter("puts").add()
        return self._write_record(Record(key, value, self.next_seqno()))

    def delete(self, key: bytes) -> float:
        """Delete by writing a tombstone object into the NVMe tier; it
        shadows any SATA copy and migrates down like a normal object."""
        self.stats.counter("deletes").add()
        return self._write_record(Record.tombstone(key, self.next_seqno()))

    def _write_record(self, rec: Record) -> float:
        partition = self.performance_tier.partition_for_key(rec.key)
        if self.nvme_device.health() is HealthState.OFFLINE:
            return self._failover_write(partition, rec)
        service = 0.0
        if self.admission is not None:
            service += self._admission_gate(partition)
        service += partition.put(rec)
        self.promotion.invalidate(rec.key)
        if partition.over_high_watermark():
            self.migration.run_if_needed()
        if self.migration.has_catch_up and self.migration.capacity_online():
            self.migration.run_catch_up()
        if self.scrubber is not None and self.scrubber.has_catch_up:
            self.scrubber.run_catch_up()
        return service

    def _failover_write(self, partition, rec: Record) -> float:
        """NVMe OFFLINE: route the write to the capacity tier directly.

        The stale NVMe-resident copy (if any) is dropped from the in-memory
        index — no device I/O — so it cannot shadow the newer SATA version
        after recovery.  Promotions and migration stay paused; a SATA
        outage overlapping an NVMe outage leaves nowhere to write, so the
        ingest's :class:`DeviceOfflineError` propagates (the op is not
        acked).
        """
        service = self.capacity_tier.ingest([rec], TrafficKind.FOREGROUND)
        partition.drop_resident(rec.key)
        self.promotion.invalidate(rec.key)
        self.stats.counter("failover_writes").add()
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "failover", t=self.sata_device.busy_seconds(),
                op="write", tier="sata",
            )
        return service

    def _admission_gate(self, partition) -> float:
        """RocksDB-style write backpressure keyed on partition fill.

        SLOWDOWN charges a small deterministic stall; STOP first runs
        migration inline (the simulated analogue of waiting for background
        work) and charges the long stall.  Stall time lands on the NVMe
        ledger via :meth:`SimDevice.charge_stall`, so throughput figures
        reflect the backpressure.
        """
        verdict, trigger = self.admission.assess(fill=partition.fill_fraction)
        if verdict == admission_mod.OK:
            return 0.0
        if verdict == admission_mod.STOP and self.migration.capacity_online():
            self.migration.run_if_needed()
        delay = self.admission.stall_s(verdict)
        service = self.nvme_device.charge_stall(delay)
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "write_stall", t=self.nvme_device.busy_seconds(),
                engine=self.name, verdict=verdict, trigger=trigger,
                delay_s=delay, fill=round(partition.fill_fraction, 6),
            )
        return service

    # --------------------------------------------------------------- read

    def get(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Point lookup: NVMe, then the promotion staging cache, then SATA.

        While the NVMe device is OFFLINE, reads fall through to the
        capacity tier — *except* for keys whose only copy is a
        non-promoted NVMe resident, which raise
        :class:`DeviceOfflineError` (honest unavailability; serving the
        older SATA version would be a stale read).  Promoted residents are
        authoritative on SATA and fall through safely.
        """
        self.stats.counter("gets").add()
        if not self.config.key_space.contains(key):
            return None, 0.0  # nothing outside the key space was ever stored
        service = 0.0
        nvme_offline = self.nvme_device.health() is HealthState.OFFLINE
        if nvme_offline:
            partition = self.performance_tier.partition_for_key(key)
            loc = partition.resident_location(key)
            if loc is not None and not loc.promoted:
                self.stats.counter("failover_blocked_reads").add()
                raise DeviceOfflineError(
                    f"key resident only on offline device "
                    f"{self.nvme_device.profile.name!r}"
                )
            self.stats.counter("failover_reads").add()
        else:
            try:
                rec, service = self.performance_tier.get(key)
            except CorruptionError:
                rec, service = None, 0.0
                self._on_corrupt_resident(key)
            if rec is not None:
                self.stats.counter("nvme_hits").add()
                return (None if rec.is_tombstone else rec.value), service

        staged = self.promotion.lookup(key)
        if staged is not None:
            self.stats.counter("staging_hits").add()
            return (None if staged.is_tombstone else staged.value), service

        rec, s = self.capacity_tier.get(key)
        service += s
        if rec is None:
            return None, service
        self.stats.counter("sata_hits").add()
        if rec.is_tombstone:
            return None, service
        # Promote if the tracker considers this object hot (§3.5) — but not
        # while the fast tier is offline (nowhere to stage *to*).
        if not nvme_offline:
            partition = self.performance_tier.partition_for_key(key)
            if partition.tracker.is_hot(key):
                self.promotion.stage(rec)
                self.stats.counter("promotions_staged").add()
        return rec.value, service

    def _on_corrupt_resident(self, key: bytes) -> None:
        """A resident NVMe copy failed its checksum mid-read.

        The read falls through to the capacity tier (or, at cluster level,
        to another replica) instead of propagating the error to the client.
        The corrupt copy is dropped from the in-memory index so it cannot
        be served again; healing the object back into the fast tier is the
        scrubber's / read-repair's job.  When the lost copy was *not*
        promoted it was the newest version and the SATA copy (if any) is
        older — that degradation is counted explicitly rather than hidden.
        """
        partition = self.performance_tier.partition_for_key(key)
        loc = partition.resident_location(key)
        promoted = bool(loc is not None and loc.promoted)
        partition.drop_resident(key)
        self.stats.counter("nvme_corrupt_reads").add()
        if not promoted:
            self.stats.counter("corrupt_stale_fallbacks").add()
            self.suspect_keys.append(key)
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "read_corruption", t=self.nvme_device.busy_seconds(),
                tier="nvme", promoted=promoted,
            )

    def _on_corrupt_semi_block(self, table, block, superseded=frozenset()) -> None:
        """A background capacity-tier read (compaction victim scan, merge
        survivor read, ride-along extraction) hit a corrupt block — see
        :attr:`repro.lsm.semi.semisstable.SemiSSTable.on_corrupt_block`.

        Triage every record the block still holds against the NVMe tier so
        the block can be dropped without *silent* loss:

        * promoted resident — the NVMe copy is the same version; clearing
          its ``promoted`` flag makes it the single authoritative copy, and
          normal demotion re-writes the capacity twin later (repair with
          deferred I/O);
        * non-promoted resident — NVMe already holds a strictly newer
          version; the corrupt copy was superseded and loses nothing;
        * no resident — the newest copy is gone on this node: surfaced via
          ``suspect_keys`` for anti-entropy instead of hidden.
        """
        self.stats.counter("semi_corrupt_blocks").add()
        tier = self.performance_tier
        rescued = harmless = lost = 0
        keys = sorted(
            k for k, e in table._key_map.items() if e[0] == block.block_id
        )
        for key in keys:
            if key in superseded:
                continue
            partition = tier.partition_for_key(key)
            loc = partition.resident_location(key)
            if loc is None:
                self.suspect_keys.append(key)
                lost += 1
            elif loc.promoted:
                loc.promoted = False
                rescued += 1
            else:
                harmless += 1
        if rescued:
            self.stats.counter("semi_corrupt_rescued").add(rescued)
        if lost:
            self.stats.counter("semi_corrupt_lost").add(lost)
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "semi_block_corruption", t=self.sata_device.busy_seconds(),
                table=table.table_id, block=block.block_id,
                rescued=rescued, superseded=harmless, lost=lost,
            )

    def _on_corrupt_slot_dropped(self, key: bytes, promoted: bool) -> None:
        """A partition maintenance path (demotion collect, zone split,
        hot-zone compaction) dropped a corrupt slot — see
        :attr:`repro.nvme.partition.Partition.on_corrupt_slot`."""
        self.stats.counter("nvme_corrupt_maintenance").add()
        if not promoted:
            self.stats.counter("corrupt_stale_fallbacks").add()
            self.suspect_keys.append(key)
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "maintenance_corruption", t=self.nvme_device.busy_seconds(),
                tier="nvme", promoted=promoted,
            )

    # ------------------------------------------------------- batched ops
    #
    # The fused paths below replicate put/get exactly — same calls in the
    # same order, same float accumulation — minus per-op dispatch, health
    # peeks, and epoch entry, all of which are no-ops while the devices
    # are unguarded (no injector, or no health windows planned).  Guarded
    # devices fall back to the per-op loop so window boundaries still land
    # between ops; results are bit-identical either way.

    def put_many(self, keys, values, busy_out=None, capture_errors=False) -> list:
        nvme_tr = self.nvme_device.traffic
        sata_tr = self.sata_device.traffic
        if (
            self.nvme_device._health_guarded
            or self.sata_device._health_guarded
            or self.admission is not None
            or capture_errors
        ):
            out = []
            for key, value in zip(keys, values):
                try:
                    out.append(self.put(key, value))
                except DeviceOfflineError as exc:
                    if not capture_errors:
                        raise
                    out.append(exc)
                if busy_out is not None:
                    busy_out.append((nvme_tr._busy_s, sata_tr._busy_s))
            return out
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        if not keys:
            return []
        puts = self.stats.counter("puts")
        partition_for_key = self.performance_tier.partition_for_key
        invalidate = self.promotion.invalidate
        migration = self.migration
        busy_append = busy_out.append if busy_out is not None else None
        nvme_dev = self.nvme_device
        fg = TrafficKind.FOREGROUND
        out = []
        append = out.append
        # Deferred foreground charge group (columnar device charging): runs
        # of slot writes — in-place updates and fresh-slot appends, i.e.
        # nearly every put — splice their pages without charging and
        # accumulate (npages, out-slot) here, paid with one grouped
        # write_pages_batch delta.  Exactness contract: the group is
        # flushed before ANY other charge on either device (resized-slot
        # rewrites, zone splits, migration), so the ledger advances in
        # exactly the per-op charge order; services and busy rows are
        # backfilled from the batch's per-charge values, which come from
        # the same seeded sequential accumulation a scalar loop performs.
        pending_pages: list = []
        pending_slot: list = []
        pending_row: list = []

        def defer(npages: int) -> None:
            pending_pages.append(npages)
            pending_slot.append(len(out) - 1)
            if busy_append is not None:
                pending_row.append(len(busy_out))

        def flush() -> None:
            if not pending_pages:
                return
            if busy_append is None:
                services = nvme_dev.write_pages_batch(
                    pending_pages, fg, sequential=False
                ).tolist()
                for k, slot in enumerate(pending_slot):
                    out[slot] = services[k]
            else:
                busy_vals: list = []
                services = nvme_dev.write_pages_batch(
                    pending_pages, fg, sequential=False, busy_out=busy_vals
                ).tolist()
                # No SATA charge can have landed since the first deferred
                # op (it would have flushed this group first), so one
                # snapshot serves every backfilled row.
                sb = sata_tr._busy_s
                nrows = len(busy_out)
                for k, slot in enumerate(pending_slot):
                    out[slot] = services[k]
                    r = pending_row[k]
                    # The current op's row may not exist yet (flush from
                    # inside its own iteration); the loop below appends a
                    # live post-op snapshot for it instead.
                    if r < nrows:
                        busy_out[r] = (busy_vals[k], sb)
            pending_pages.clear()
            pending_slot.clear()
            pending_row.clear()

        for key, value in zip(keys, values):
            puts.value += 1
            self._seqno += 1
            partition = partition_for_key(key)
            partition._record_access(key)
            append(None)
            service = partition._put_locked_deferred(
                Record(key, value, self._seqno), fg, defer, flush
            )
            if service is not None:
                out[-1] = service
            invalidate(key)
            if partition.over_high_watermark():
                flush()
                migration.run_if_needed()
            if migration.has_catch_up and migration.capacity_online():
                flush()
                migration.run_catch_up()
            if busy_append is not None:
                if out[-1] is None:
                    busy_append(None)  # backfilled at flush
                else:
                    busy_append((nvme_tr._busy_s, sata_tr._busy_s))
        flush()
        return out

    def delete_many(self, keys, busy_out=None, capture_errors=False) -> list:
        nvme_tr = self.nvme_device.traffic
        sata_tr = self.sata_device.traffic
        if (
            self.nvme_device._health_guarded
            or self.sata_device._health_guarded
            or self.admission is not None
            or capture_errors
        ):
            out = []
            for key in keys:
                try:
                    out.append(self.delete(key))
                except DeviceOfflineError as exc:
                    if not capture_errors:
                        raise
                    out.append(exc)
                if busy_out is not None:
                    busy_out.append((nvme_tr._busy_s, sata_tr._busy_s))
            return out
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        if not keys:
            return []
        deletes = self.stats.counter("deletes")
        partition_for_key = self.performance_tier.partition_for_key
        invalidate = self.promotion.invalidate
        migration = self.migration
        busy_append = busy_out.append if busy_out is not None else None
        tombstone = Record.tombstone
        out = []
        append = out.append
        for key in keys:
            deletes.value += 1
            self._seqno += 1
            partition = partition_for_key(key)
            partition._record_access(key)
            service = partition._put_locked(
                tombstone(key, self._seqno), TrafficKind.FOREGROUND
            )
            invalidate(key)
            if partition.over_high_watermark():
                migration.run_if_needed()
            if migration.has_catch_up and migration.capacity_online():
                migration.run_catch_up()
            append(service)
            if busy_append is not None:
                busy_append((nvme_tr._busy_s, sata_tr._busy_s))
        return out

    def get_many(self, keys, busy_out=None, capture_errors=False) -> list:
        nvme_tr = self.nvme_device.traffic
        sata_tr = self.sata_device.traffic
        if (
            self.nvme_device._health_guarded
            or self.sata_device._health_guarded
            or capture_errors
        ):
            out = []
            for key in keys:
                try:
                    out.append(self.get(key))
                except (DeviceOfflineError, CorruptionError) as exc:
                    # A captured CorruptionError is a *detected* corrupt
                    # read (capacity-tier checksum failure with no healthy
                    # copy left) — the caller sees the detection instead of
                    # silently wrong bytes.
                    if not capture_errors:
                        raise
                    out.append(exc)
                if busy_out is not None:
                    busy_out.append((nvme_tr._busy_s, sata_tr._busy_s))
            return out
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        if not keys:
            return []
        gets = self.stats.counter("gets")
        # Hit counters are fetched lazily (get-or-create on first hit) so
        # the registry's contents and insertion order match the per-op
        # path exactly, then memoized in locals: the registry lookup per
        # increment is measurable at batch frequency.
        counter = self.stats.counter
        nvme_hits = staging_hits = sata_hits = promotions_staged = None
        contains = self.config.key_space.contains
        partition_for_key = self.performance_tier.partition_for_key
        promo_lookup = self.promotion.lookup
        promo_stage = self.promotion.stage
        capacity_get = self.capacity_tier.get
        busy_append = busy_out.append if busy_out is not None else None
        out = []
        append = out.append
        for key in keys:
            gets.value += 1
            if not contains(key):
                append((None, 0.0))
            else:
                partition = partition_for_key(key)
                try:
                    rec, service = partition.get(key)
                except CorruptionError:
                    rec, service = None, 0.0
                    self._on_corrupt_resident(key)
                if rec is not None:
                    if nvme_hits is None:
                        nvme_hits = counter("nvme_hits")
                    nvme_hits.value += 1
                    append((None if rec.is_tombstone else rec.value, service))
                else:
                    staged = promo_lookup(key)
                    if staged is not None:
                        if staging_hits is None:
                            staging_hits = counter("staging_hits")
                        staging_hits.value += 1
                        append(
                            (None if staged.is_tombstone else staged.value, service)
                        )
                    else:
                        rec, s = capacity_get(key)
                        service += s
                        if rec is None:
                            append((None, service))
                        elif rec.is_tombstone:
                            if sata_hits is None:
                                sata_hits = counter("sata_hits")
                            sata_hits.value += 1
                            append((None, service))
                        else:
                            if sata_hits is None:
                                sata_hits = counter("sata_hits")
                            sata_hits.value += 1
                            if partition.tracker.is_hot(key):
                                promo_stage(rec)
                                if promotions_staged is None:
                                    promotions_staged = counter(
                                        "promotions_staged"
                                    )
                                promotions_staged.value += 1
                            append((rec.value, service))
            if busy_append is not None:
                busy_append((nvme_tr._busy_s, sata_tr._busy_s))
        return out

    def scan(self, start: bytes, count: int) -> tuple[list[tuple[bytes, bytes]], float]:
        """Range scan, implemented as merged sequential point queries
        (§4.2: HyperDB's scan path; the layout difference between tiers
        precludes RocksDB-style prefetching)."""
        self.stats.counter("scans").add()
        busy_before = self.nvme_device.busy_seconds() + self.sata_device.busy_seconds()

        def nvme_stream() -> Iterator[Record]:
            tier = self.performance_tier
            idx = tier.partitions.index(tier.partition_for_key(start))
            pos = start
            for partition in tier.partitions[idx:]:
                for key in partition.keys_in_range(pos, None):
                    try:
                        rec, _ = partition.get(key)
                    except CorruptionError:
                        self._on_corrupt_resident(key)
                        continue
                    if rec is not None:
                        yield rec
                pos = partition.key_range.hi
                if pos is None:
                    break

        sata_records, _ = self.capacity_tier.scan(
            start, count * 2, prefetch=self.config.enable_scan_prefetch
        )

        out: list[tuple[bytes, bytes]] = []
        merged = merge_records(
            [nvme_stream(), iter(sata_records)], drop_tombstones=True
        )
        for rec in merged:
            out.append((rec.key, rec.value))
            if len(out) >= count:
                break
        service = (
            self.nvme_device.busy_seconds()
            + self.sata_device.busy_seconds()
            - busy_before
        )
        return out, service

    # ------------------------------------------------------------- admin

    def devices(self) -> dict[str, SimDevice]:
        return {"nvme": self.nvme_device, "sata": self.sata_device}

    def scrub(self) -> bool:
        """Run one background integrity-scrub pass (requires
        ``config.scrub``).  Returns False when the pass was paused by a
        device health window; it then runs as catch-up after recovery."""
        if self.scrubber is None:
            raise ReproError("scrub requires HyperDBConfig.scrub to be set")
        return self.scrubber.run_pass()

    def finalize(self) -> None:
        self.promotion.drain()

    def checkpoint(self) -> float:
        """Back up every partition's index to NVMe (§3.1); returns the
        service time.  Call before a planned shutdown; :meth:`recover`
        rebuilds the in-memory indexes from the backups."""
        self.finalize()
        service = sum(p.checkpoint() for p in self.performance_tier.partitions)
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "checkpoint", t=self.nvme_device.busy_seconds(),
                partitions=len(self.performance_tier.partitions),
                service_s=service,
            )
        return service

    def recover(self, strict: bool = False) -> float:
        """Rebuild all partitions' in-memory state from their checkpoints
        (simulates a restart where DRAM content was lost but media
        survived).  Returns the service time.

        A partition whose checkpoint is missing or fails its CRC cannot be
        rebuilt; by default it degrades to an empty partition (counted in
        the ``degraded_partitions`` stat) so the rest of the store still
        opens.  With ``strict=True`` the failure propagates instead
        (:class:`RecoveryError` / :class:`CorruptionError`)."""
        from repro.common.errors import CorruptionError, RecoveryError

        service = 0.0
        degraded = 0
        for p in self.performance_tier.partitions:
            try:
                service += p.recover()
            except (CorruptionError, RecoveryError):
                if strict:
                    raise
                p.reset_state()
                degraded += 1
                self.stats.counter("degraded_partitions").add()
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "recovery", t=self.nvme_device.busy_seconds(),
                partitions=len(self.performance_tier.partitions),
                degraded=degraded, service_s=service,
            )
        return service

    # ----------------------------------------------------------- metrics

    def nvme_fill_fraction(self) -> float:
        return self.performance_tier.fill_fraction()

    def space_usage(self) -> dict[str, int]:
        """Bytes in use per device (Fig. 11b's space-usage series)."""
        return {
            "nvme": self.nvme_device.used_bytes,
            "sata": self.sata_device.used_bytes,
        }

"""The store interface every engine (HyperDB and all baselines) implements.

Service times returned by each operation are *simulated seconds* of device
work on the operation's critical path; the workload runner combines them
with the concurrency model to produce latency and throughput figures.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.simssd.device import SimDevice


class KVStore(abc.ABC):
    """Abstract tiered key-value store."""

    #: Human-readable engine name used in benchmark tables.
    name: str = "kvstore"

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> float:
        """Insert or update.  Returns foreground service seconds."""

    @abc.abstractmethod
    def get(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Point lookup.  Returns ``(value_or_none, service_seconds)``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> float:
        """Delete a key.  Returns foreground service seconds."""

    @abc.abstractmethod
    def scan(self, start: bytes, count: int) -> tuple[list[tuple[bytes, bytes]], float]:
        """Range scan.  Returns ``(pairs, service_seconds)``."""

    @abc.abstractmethod
    def devices(self) -> dict[str, SimDevice]:
        """The simulated devices backing this store, keyed by tier name."""

    def finalize(self) -> None:
        """Flush asynchronous state (end-of-run barrier).  Optional."""

    # ------------------------------------------------------- conveniences

    def multi_put(self, pairs) -> float:
        """Bulk load helper; returns total service seconds."""
        total = 0.0
        for key, value in pairs:
            total += self.put(key, value)
        return total

"""The store interface every engine (HyperDB and all baselines) implements.

Service times returned by each operation are *simulated seconds* of device
work on the operation's critical path; the workload runner combines them
with the concurrency model to produce latency and throughput figures.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.common.errors import DeviceOfflineError
from repro.simssd.device import SimDevice


class KVStore(abc.ABC):
    """Abstract tiered key-value store."""

    #: Human-readable engine name used in benchmark tables.
    name: str = "kvstore"

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> float:
        """Insert or update.  Returns foreground service seconds."""

    @abc.abstractmethod
    def get(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Point lookup.  Returns ``(value_or_none, service_seconds)``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> float:
        """Delete a key.  Returns foreground service seconds."""

    @abc.abstractmethod
    def scan(self, start: bytes, count: int) -> tuple[list[tuple[bytes, bytes]], float]:
        """Range scan.  Returns ``(pairs, service_seconds)``."""

    @abc.abstractmethod
    def devices(self) -> dict[str, SimDevice]:
        """The simulated devices backing this store, keyed by tier name."""

    def finalize(self) -> None:
        """Flush asynchronous state (end-of-run barrier).  Optional."""

    # ------------------------------------------------------- batched ops
    #
    # Batched variants carry a whole slice of the workload through the
    # store in one call, eliminating per-op dispatch overhead on the
    # Python hot path.  Engines override them with fused loops; these
    # defaults preserve exact per-op semantics (same call order, same
    # float accumulation) so batched and per-op runs stay bit-identical.
    #
    # ``busy_out``, when given, receives one tuple per op of cumulative
    # per-device busy seconds *after* that op, in ``devices()`` order —
    # the runner differences consecutive rows to attribute latency.
    # ``capture_errors=True`` converts a ``DeviceOfflineError`` on an op
    # into that op's result slot instead of aborting the batch.

    def put_many(
        self, keys, values, busy_out=None, capture_errors=False
    ) -> list:
        """Batched :meth:`put`.  Returns per-op service seconds (or the
        captured exception in that op's slot)."""
        devs = list(self.devices().values()) if busy_out is not None else None
        out = []
        for key, value in zip(keys, values):
            try:
                out.append(self.put(key, value))
            except DeviceOfflineError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
            if devs is not None:
                busy_out.append(tuple(d.busy_seconds() for d in devs))
        return out

    def get_many(self, keys, busy_out=None, capture_errors=False) -> list:
        """Batched :meth:`get`.  Returns per-op ``(value_or_none,
        service_seconds)`` tuples (or the captured exception)."""
        devs = list(self.devices().values()) if busy_out is not None else None
        out = []
        for key in keys:
            try:
                out.append(self.get(key))
            except DeviceOfflineError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
            if devs is not None:
                busy_out.append(tuple(d.busy_seconds() for d in devs))
        return out

    def delete_many(self, keys, busy_out=None, capture_errors=False) -> list:
        """Batched :meth:`delete`.  Returns per-op service seconds (or the
        captured exception in that op's slot)."""
        devs = list(self.devices().values()) if busy_out is not None else None
        out = []
        for key in keys:
            try:
                out.append(self.delete(key))
            except DeviceOfflineError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
            if devs is not None:
                busy_out.append(tuple(d.busy_seconds() for d in devs))
        return out

    # ------------------------------------------------------- conveniences

    def multi_put(self, pairs) -> float:
        """Bulk load helper; returns total service seconds."""
        total = 0.0
        for key, value in pairs:
            total += self.put(key, value)
        return total

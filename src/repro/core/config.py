"""Top-level HyperDB configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigError
from repro.common.keys import KeyRange
from repro.health.admission import AdmissionConfig
from repro.nvme.config import NVMeConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.scrub import ScrubConfig

KiB = 1024
MiB = 1024 * KiB


@dataclass
class HyperDBConfig:
    """All tuning of a HyperDB instance.

    Defaults are scaled 1/1024 from the paper's testbed (§4.1): a 64 MB DRAM
    page LRU becomes 64 KiB, 64 MB SSTables become 64 KiB files, and the
    zone size equals the semi-SSTable file size (§3.6).
    """

    key_space: KeyRange
    nvme: NVMeConfig = field(default_factory=NVMeConfig)
    # Capacity-tier geometry.
    semi_num_levels: int = 3
    semi_size_ratio: int = 8
    semi_bottom_segments: int = 64
    semi_block_size: int = 4 * KiB
    semi_level1_target_bytes: int = 512 * KiB
    # Preemptive block compaction.
    compaction_depth: int = 2
    t_clean: float = 0.5
    space_amp_limit: float = 1.5
    candidate_k: int = 8
    # Shared DRAM page cache.
    dram_cache_bytes: int = 64 * KiB
    # Ablation switches (used by the ablation benches).
    enable_hot_zone: bool = True
    enable_preemptive_compaction: bool = True
    #: The paper's future-work scan optimization (§4.2): prefetch the blocks
    #: a scan will touch as coalesced sequential reads.  Off by default to
    #: match the published system.
    enable_scan_prefetch: bool = False
    #: Admission control (RocksDB-style write stalls keyed on partition
    #: fill).  ``None`` — the default — disables backpressure entirely, so
    #: existing benchmarks and digests are unchanged.
    admission: Optional[AdmissionConfig] = None
    #: Background integrity scrubbing (:mod:`repro.scrub`).  ``None`` — the
    #: default — builds no scrubber at all, so scrub-disabled digests stay
    #: byte-identical.  Pass a :class:`repro.scrub.ScrubConfig` to enable.
    scrub: Optional["ScrubConfig"] = None
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.key_space.hi is None:
            raise ConfigError("HyperDB requires a bounded key space")
        if self.dram_cache_bytes < 0:
            raise ConfigError("cache size must be non-negative")

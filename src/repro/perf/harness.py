"""Hot-path microbenchmarks and the ``BENCH_perf.json`` trajectory file.

Each bench does its setup untimed, then times one tight measured section
with :func:`time.perf_counter` and reports ``(ops, seconds)``.  Two scales
exist: ``full`` (the committed before/after numbers) and ``smoke`` (seconds
total — what CI runs per PR to accumulate the trajectory artifact).

The JSON file holds a list of runs, each labelled (``baseline`` /
``current`` / anything else) and stamped with the git revision, so speedups
are always computed against the most recent ``baseline`` run at the same
scale.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.parallel import (
    Job,
    host_metadata,
    merge_run_results,
    run_jobs,
    same_host_shape,
)
from repro.parallel.pool import unwrap_all

from repro.common.bloom import BloomFilter
from repro.common.cache import LRUCache
from repro.common.keys import encode_key
from repro.hotness.interval import interval_conditional_probabilities
from repro.lsm.lsmtree import LSMOptions, LSMTree
from repro.simssd import NVME_PROFILE, SimDevice
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind
from repro.ycsb import WorkloadRunner, YCSB_WORKLOADS
from repro.ycsb.trace import Trace

KiB = 1024
MiB = 1024 * KiB


@dataclass(frozen=True)
class PerfScale:
    """Iteration counts for every bench, at one of two sizes."""

    trace_ops: int
    dist_draws: int
    bloom_keys: int
    lru_ops: int
    device_ios: int
    lsm_records: int
    interval_accesses: int
    e2e_records: int
    e2e_operations: int
    mode: str = "full"
    #: Dispatch mode for the e2e benches: ``columnar`` (the default
    #: request pipeline: batch dispatch + vectorized attribution),
    #: ``batched`` (batch dispatch, per-op attribution), or ``per-op``.
    #: All three produce bit-identical results (see
    #: ``BenchResult.extra['digest']``); CI diffs them.
    e2e_mode: str = "columnar"
    #: parallel_e2e fan-out shape: independent YCSB cells per measurement.
    par_cells: int = 4
    par_records: int = 1_000
    par_operations: int = 1_000
    #: chaos_soak op-stream length (healthy + degraded passes).
    chaos_ops: int = 600
    #: cluster_soak op-stream length (healthy + one-node-outage passes).
    cluster_ops: int = 200
    #: queue_depth bench cell size (records == operations per cell).
    #: Must be large enough that 35% of the dataset overflows the NVMe
    #: capacity floor (512 KiB) — below ~4 k records the fast tier holds
    #: everything, migration never pressures the SATA device, and queue
    #: isolation has no background traffic to isolate.
    queue_cell_ops: int = 6_000

    @classmethod
    def full(cls) -> "PerfScale":
        return cls(
            trace_ops=50_000,
            dist_draws=200_000,
            bloom_keys=20_000,
            lru_ops=100_000,
            device_ios=50_000,
            lsm_records=8_000,
            interval_accesses=100_000,
            e2e_records=8_000,
            e2e_operations=8_000,
            mode="full",
            par_cells=4,
            par_records=2_000,
            par_operations=2_000,
            chaos_ops=900,
            cluster_ops=600,
            queue_cell_ops=6_000,
        )

    @classmethod
    def smoke(cls) -> "PerfScale":
        return cls(
            trace_ops=5_000,
            dist_draws=20_000,
            bloom_keys=2_000,
            lru_ops=10_000,
            device_ios=5_000,
            lsm_records=1_000,
            interval_accesses=10_000,
            e2e_records=1_200,
            e2e_operations=1_200,
            mode="smoke",
            par_cells=3,
            par_records=500,
            par_operations=500,
            chaos_ops=300,
            cluster_ops=240,
            queue_cell_ops=6_000,
        )


@dataclass(frozen=True)
class BenchResult:
    """One bench's measured section."""

    ops: int
    seconds: float
    #: Optional bench-specific facts (the parallel_e2e bench records its
    #: fan-out shape and measured speedup here).
    extra: Optional[dict] = None

    @property
    def kops_per_s(self) -> float:
        return self.ops / self.seconds / 1e3 if self.seconds > 0 else 0.0

    def to_json(self) -> dict:
        doc = {
            "ops": self.ops,
            "seconds": round(self.seconds, 6),
            "kops_per_s": round(self.kops_per_s, 3),
        }
        if self.extra:
            doc["extra"] = self.extra
        return doc


def _draw_many(gen, n: int) -> "np.ndarray":
    """Draw ``n`` keys, via the batch API when the generator has one.

    Returns the generator's numpy array as-is (no per-element boxing into
    a Python list); consumers that need Python ints convert lazily.
    """
    if hasattr(gen, "next_many"):
        return np.asarray(gen.next_many(n))
    return np.array([gen.next() for _ in range(n)])


# ------------------------------------------------------------------ benches


def bench_trace_gen(scale: PerfScale) -> BenchResult:
    """YCSB trace generation: zipfian mix (A) and latest-with-inserts (D)."""
    n = scale.trace_ops
    t0 = time.perf_counter()
    Trace.from_workload(YCSB_WORKLOADS["A"], n, record_count=max(1_000, n), seed=3)
    Trace.from_workload(YCSB_WORKLOADS["D"], n, record_count=max(1_000, n), seed=4)
    return BenchResult(2 * n, time.perf_counter() - t0)


def bench_distributions(scale: PerfScale) -> BenchResult:
    """Scrambled-zipfian request draws (the runner's default distribution)."""
    from repro.ycsb.distributions import ScrambledZipfianGenerator

    gen = ScrambledZipfianGenerator(1_000_000, np.random.default_rng(11))
    n = scale.dist_draws
    t0 = time.perf_counter()
    keys = _draw_many(gen, n)
    seconds = time.perf_counter() - t0
    assert len(keys) == n
    return BenchResult(n, seconds)


def bench_bloom(scale: PerfScale) -> BenchResult:
    """Filter build plus present/absent probes (SSTable point-lookup path)."""
    n = scale.bloom_keys
    present = [encode_key(i) for i in range(n)]
    absent = [encode_key(i) for i in range(n, 2 * n)]
    t0 = time.perf_counter()
    bf = BloomFilter.for_keys(present)
    hits = sum(1 for k in present if k in bf)
    sum(1 for k in absent if k in bf)
    seconds = time.perf_counter() - t0
    assert hits == n
    return BenchResult(3 * n, seconds)


def bench_lru_churn(scale: PerfScale) -> BenchResult:
    """Shared DRAM page-LRU get/put churn with evictions.

    The original workload swept a 512-key cycle against a 256-entry
    budget, which made *every* get a miss and *every* put an eviction:
    the measured number was 100% eviction micro-path, 0% the hit-refresh
    path that dominates a real block cache (hit rates in the e2e runs sit
    well above 50%).  That accounting skew made the bench swing ±30%
    across hosts on allocator-level details of the eviction loop while
    saying nothing about the workload the cache actually serves — the
    recorded 0.756x "regression" did not reproduce anywhere else.  The
    loop now keeps steady evictions (every 4th touch sweeps a cold
    cycle) but draws the rest from the resident set, so refresh, replace,
    and evict are all on the clock in cache-realistic proportion.  The
    extra dict records the realized mix; a regression test pins all three
    paths as exercised.
    """
    cache = LRUCache(64 * KiB)
    n = scale.lru_ops
    t0 = time.perf_counter()
    for i in range(n):
        if i & 3 == 3:
            key = 1024 + (i >> 2) % 512  # cold sweep -> steady evictions
        else:
            key = i % 256  # resident working set -> hit refresh + replace
        cache.get(key)
        cache.put(key, i, charge=256)
    seconds = time.perf_counter() - t0
    return BenchResult(
        2 * n,
        seconds,
        extra={
            "hit_rate": round(cache.hit_rate, 4),
            "evictions": cache.evictions,
        },
    )


def bench_device_charge(scale: PerfScale) -> BenchResult:
    """Raw SimDevice I/O charging (every simulated byte flows through this)."""
    dev = SimDevice(NVME_PROFILE)
    n = scale.device_ios
    t0 = time.perf_counter()
    for _ in range(n):
        dev.read_bytes_io(4 * KiB, TrafficKind.FOREGROUND)
        dev.write_bytes_io(16 * KiB, TrafficKind.COMPACTION, sequential=True)
    return BenchResult(2 * n, time.perf_counter() - t0)


def bench_lsm_get_put(scale: PerfScale) -> BenchResult:
    """LSMTree point writes then point reads through the block cache."""
    n = scale.lsm_records
    fs = SimFilesystem(SimDevice(NVME_PROFILE))
    tree = LSMTree(fs, LSMOptions(), cache=LRUCache(256 * KiB))
    rng = np.random.default_rng(21)
    put_ids = rng.permutation(n)
    get_ids = rng.permutation(n)
    value = b"v" * 64
    t0 = time.perf_counter()
    for kid in put_ids:
        tree.put(encode_key(int(kid)), value)
    found = 0
    for kid in get_ids:
        v, _ = tree.get(encode_key(int(kid)))
        if v is not None:
            found += 1
    seconds = time.perf_counter() - t0
    assert found == n
    return BenchResult(2 * n, seconds)


def bench_interval_analysis(scale: PerfScale) -> BenchResult:
    """Fig 6a access-interval conditional probabilities over a zipf trace."""
    from repro.ycsb.distributions import ScrambledZipfianGenerator

    gen = ScrambledZipfianGenerator(5_000, np.random.default_rng(31))
    seq = _draw_many(gen, scale.interval_accesses)
    t0 = time.perf_counter()
    for history in (1, 2):
        interval_conditional_probabilities(
            seq, threshold=max(2, len(seq) // 100), history=history
        )
    return BenchResult(2 * scale.interval_accesses, time.perf_counter() - t0)


def _run_digest(load_total: float, result) -> str:
    """A canonical sha256 over one e2e run's observable results.

    Floats go in as ``float.hex()`` (exact bits, no rounding), dicts in
    sorted key order, histograms as their raw sample buffers — so two
    runs digest equal iff their results are bit-identical.  This is the
    batching contract's enforcement hook: CI runs the e2e bench in both
    dispatch modes and diffs the digests.
    """
    import hashlib

    h = hashlib.sha256()
    h.update(float(load_total).hex().encode())
    h.update(str(result.operations).encode())
    h.update(float(result.elapsed_s).hex().encode())
    h.update(float(result.throughput_ops).hex().encode())
    for dev in sorted(result.traffic):
        for lane in sorted(result.traffic[dev]):
            for name in sorted(result.traffic[dev][lane]):
                v = float(result.traffic[dev][lane][name])
                h.update(f"{dev}/{lane}/{name}={v.hex()};".encode())
    for dev in sorted(result.utilization):
        h.update(f"u:{dev}={float(result.utilization[dev]).hex()};".encode())
    for dev in sorted(result.space_used):
        h.update(f"s:{dev}={int(result.space_used[dev])};".encode())
    for op in sorted(result.latency_by_op):
        h.update(op.encode())
        h.update(result.latency_by_op[op].samples().tobytes())
    return h.hexdigest()


def bench_ycsb_e2e(scale: PerfScale) -> BenchResult:
    """A small fig8-style run: load HyperDB, then YCSB-B.  The headline."""
    from repro.bench.context import BenchScale, build_store

    bscale = BenchScale(
        record_count=scale.e2e_records, operations=scale.e2e_operations
    )
    store = build_store("hyperdb", bscale)
    runner = WorkloadRunner(
        store,
        record_count=bscale.record_count,
        value_size=bscale.value_size,
        clients=bscale.clients,
        background_threads=bscale.background_threads,
        seed=bscale.seed,
        mode=scale.e2e_mode,
    )
    t0 = time.perf_counter()
    load_total = runner.load()
    result = runner.run(YCSB_WORKLOADS["B"], bscale.operations)
    seconds = time.perf_counter() - t0
    # Digested outside the timed section: the digest is a correctness
    # artifact, not part of the measured pipeline.
    return BenchResult(
        scale.e2e_records + scale.e2e_operations,
        seconds,
        extra={
            "e2e_mode": scale.e2e_mode,
            "digest": _run_digest(load_total, result),
        },
    )


def bench_chaos_soak(scale: PerfScale) -> BenchResult:
    """Degraded-mode soak: simulated ops/s healthy vs one-tier-degraded.

    The extra dict records both simulated throughputs and their ratio, so
    the trajectory shows what an NVMe outage window costs the foreground.
    """
    from repro.chaos.harness import measure_soak_throughput

    n = scale.chaos_ops
    t0 = time.perf_counter()
    stats = measure_soak_throughput(num_ops=n, seed=0)
    seconds = time.perf_counter() - t0
    return BenchResult(2 * n, seconds, extra=stats)


def bench_cluster_soak(scale: PerfScale) -> BenchResult:
    """Quorum-write throughput of the sharded cluster, healthy vs degraded.

    The extra dict records simulated quorum-write throughput with all
    nodes up and with one node in an outage window, plus their ratio —
    the trajectory shows what a node loss costs a replicated deployment.
    """
    from repro.chaos.cluster import measure_cluster_throughput

    n = scale.cluster_ops
    t0 = time.perf_counter()
    stats = measure_cluster_throughput(num_ops=n, seed=0)
    seconds = time.perf_counter() - t0
    return BenchResult(2 * n, seconds, extra=stats)


def bench_scrub_overhead(scale: PerfScale) -> BenchResult:
    """Foreground cost of the background integrity scrub.

    Loads one migration-active cell (NVMe holds 35% of the dataset, past
    the 512 KiB capacity floor) and drives the same deterministic
    put/get stream twice — scrub disabled, then scrub armed at a fixed
    cadence — charging every scrub read to the SCRUB background lane.
    The extra dict records both simulated device times and their ratio
    (``scrub_overhead``: what periodic full-device verification costs in
    device seconds), plus proof the scrub actually scanned and that a
    fault-free store scrubs clean (``detected == 0``).
    """
    from repro.bench.context import BenchScale, build_store
    from repro.common.keys import encode_key
    from repro.scrub import ScrubConfig

    n = scale.queue_cell_ops
    value = b"s" * 128

    def drive(interval: int):
        bscale = BenchScale(record_count=n, operations=n, nvme_ratio=0.35)
        store = build_store(
            "hyperdb",
            bscale,
            scrub=ScrubConfig(interval_ops=interval) if interval else None,
        )
        for i in range(n):
            store.put(encode_key(i), value)
            if interval:
                store.scrubber.maybe_run()
        for i in range(n):
            store.get(encode_key(i % n))
            if interval:
                store.scrubber.maybe_run()
        busy = sum(d.busy_seconds() for d in store.devices().values())
        return store, busy

    t0 = time.perf_counter()
    _, busy_off = drive(0)
    store_on, busy_on = drive(1000)
    seconds = time.perf_counter() - t0
    st = store_on.scrubber.stats
    return BenchResult(
        4 * n,
        seconds,
        extra={
            "cell_ops": n,
            "scrub_passes": st.passes,
            "zone_slots_scanned": st.zone_slots_scanned,
            "semi_blocks_scanned": st.semi_blocks_scanned,
            "detected": st.detected,
            "sim_busy_s_scrub_off": round(busy_off, 6),
            "sim_busy_s_scrub_on": round(busy_on, 6),
            "scrub_overhead": round(busy_on / busy_off, 4)
            if busy_off > 0
            else 0.0,
        },
    )


def _queue_depth_cell(
    queue_count: int, queue_depth: int, n: int, degraded: bool
) -> float:
    """Simulated YCSB-A kops/s for one (queue_count, queue_depth) shape.

    The shape is migration-heavy (NVMe holds 35% of the dataset, so
    demotions run constantly) and the degraded variant runs the whole
    stream inside an 8x capacity-tier brownout — the regime where
    foreground I/O on a single-queue device serializes behind inflated
    background charges, and where queue isolation should buy it back.
    """
    from repro.bench.context import BenchScale, hyperdb_config
    from repro.core import HyperDB
    from repro.health.state import HealthState, HealthWindow
    from repro.simssd.faults import FaultInjector, FaultPlan

    bscale = BenchScale(
        record_count=n,
        operations=n,
        nvme_ratio=0.35,
        queue_count=queue_count,
        queue_depth=queue_depth,
    )
    injector = None
    if degraded:
        injector = FaultInjector(
            FaultPlan(
                health_windows=(
                    HealthWindow("sata", HealthState.BROWNOUT, 1, 1 << 40, 8.0),
                )
            )
        )
    nvme, sata = bscale.devices(injector=injector)
    store = HyperDB(nvme, sata, hyperdb_config(bscale))
    runner = WorkloadRunner(
        store,
        record_count=bscale.record_count,
        value_size=bscale.value_size,
        clients=bscale.clients,
        background_threads=bscale.background_threads,
        seed=bscale.seed,
        mode="columnar",
    )
    runner.load()
    result = runner.run(YCSB_WORKLOADS["A"], bscale.operations)
    return result.throughput_ops / 1e3


def bench_queue_depth(scale: PerfScale) -> BenchResult:
    """Throughput vs queue count/depth, healthy and degraded (the figure).

    Sweeps the multi-queue device model: queue counts 1/2/4 at full depth
    show what foreground/background isolation buys, and shallow depths at
    4 queues show the concurrency cap biting.  All throughputs are
    *simulated* kops/s (deterministic — a property of the service model,
    not the host), recorded in the extra dict; ``isolation_gain_degraded``
    is the headline: degraded-mode foreground throughput at 4 queues over
    the single-queue model.
    """
    n = scale.queue_cell_ops
    shapes = [(1, 32), (2, 32), (4, 32), (4, 4), (4, 1)]
    t0 = time.perf_counter()
    sim_kops: Dict[str, Dict[str, float]] = {}
    for qc, qd in shapes:
        cell = {}
        for label, degraded in (("healthy", False), ("degraded", True)):
            cell[label] = round(_queue_depth_cell(qc, qd, n, degraded), 3)
        sim_kops[f"qc{qc}_qd{qd}"] = cell
    seconds = time.perf_counter() - t0
    baseline = sim_kops["qc1_qd32"]
    isolated = sim_kops["qc4_qd32"]
    return BenchResult(
        ops=2 * len(shapes) * 2 * n,  # load + run, per cell, both modes
        seconds=seconds,
        extra={
            "workload": "A",
            "nvme_ratio": 0.35,
            "brownout_multiplier": 8.0,
            "sim_kops": sim_kops,
            "isolation_gain_degraded": round(
                isolated["degraded"] / baseline["degraded"], 3
            )
            if baseline["degraded"] > 0
            else 0.0,
            "isolation_gain_healthy": round(
                isolated["healthy"] / baseline["healthy"], 3
            )
            if baseline["healthy"] > 0
            else 0.0,
        },
    )


def _parallel_e2e_cell(records: int, operations: int, seed: int):
    """One independent fig8-style cell: load HyperDB, run YCSB-B, return
    the :class:`RunResult` (the fan-out unit of :func:`bench_parallel_e2e`)."""
    from repro.bench.context import BenchScale, build_store

    bscale = BenchScale(record_count=records, operations=operations, seed=seed)
    store = build_store("hyperdb", bscale)
    runner = WorkloadRunner(
        store,
        record_count=bscale.record_count,
        value_size=bscale.value_size,
        clients=bscale.clients,
        background_threads=bscale.background_threads,
        seed=bscale.seed,
    )
    runner.load()
    return runner.run(YCSB_WORKLOADS["B"], bscale.operations)


def _run_results_identical(a_list, b_list) -> bool:
    """Shard-wise exact equality of two RunResult lists (merge soundness)."""
    if len(a_list) != len(b_list):
        return False
    for a, b in zip(a_list, b_list):
        if (
            a.operations, a.elapsed_s, a.traffic, a.space_used,
            a.utilization, a.throughput_ops,
        ) != (
            b.operations, b.elapsed_s, b.traffic, b.space_used,
            b.utilization, b.throughput_ops,
        ):
            return False
        if set(a.latency_by_op) != set(b.latency_by_op):
            return False
        for op, hist in a.latency_by_op.items():
            if not np.array_equal(hist.samples(), b.latency_by_op[op].samples()):
                return False
    return True


def bench_parallel_e2e(scale: PerfScale, workers: int = 1) -> BenchResult:
    """Fan-out speedup of the evaluation substrate itself.

    Runs ``par_cells`` independent YCSB cells twice — once serially
    in-process, once through the process pool at the requested worker
    count — verifies the two shard sets (and their exact merge) are
    identical, and reports the measured fan-out speedup.  The timed
    section is the parallel pass, so the trajectory tracks what a
    sharded ``repro.bench`` actually costs on this host.
    """
    jobs = [
        Job(
            _parallel_e2e_cell,
            args=(scale.par_records, scale.par_operations),
            seed=1009 + i,
            label=f"cell{i}",
        )
        for i in range(scale.par_cells)
    ]
    t0 = time.perf_counter()
    serial = unwrap_all(run_jobs(jobs, workers=1))
    serial_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = unwrap_all(run_jobs(jobs, workers=max(1, workers)))
    parallel_seconds = time.perf_counter() - t0
    identical = _run_results_identical(serial, parallel)
    merged = merge_run_results(parallel)
    ops = scale.par_cells * (scale.par_records + scale.par_operations)
    return BenchResult(
        ops=ops,
        seconds=parallel_seconds,
        extra={
            "workers": max(1, workers),
            "cells": scale.par_cells,
            "serial_seconds": round(serial_seconds, 6),
            "parallel_seconds": round(parallel_seconds, 6),
            "fanout_speedup": round(serial_seconds / parallel_seconds, 3)
            if parallel_seconds > 0
            else 0.0,
            "merge_identical": identical,
            "merged_throughput_ops": round(merged.throughput_ops, 3),
        },
    )


_BENCHES: Dict[str, Callable[[PerfScale], BenchResult]] = {
    "trace_gen": bench_trace_gen,
    "distributions": bench_distributions,
    "bloom": bench_bloom,
    "lru_churn": bench_lru_churn,
    "device_charge": bench_device_charge,
    "lsm_get_put": bench_lsm_get_put,
    "interval_analysis": bench_interval_analysis,
    "ycsb_e2e": bench_ycsb_e2e,
    "chaos_soak": bench_chaos_soak,
    "cluster_soak": bench_cluster_soak,
    "queue_depth": bench_queue_depth,
    "scrub_overhead": bench_scrub_overhead,
}

#: Benches that manage their own process pool (run in the parent even in
#: parallel mode, so pools never nest).
_POOLED_BENCHES: Dict[str, Callable[[PerfScale, int], BenchResult]] = {
    "parallel_e2e": bench_parallel_e2e,
}

#: The bench whose speedup is the PR headline (acceptance: >= 1.5x).
HEADLINE_BENCH = "ycsb_e2e"


def bench_names() -> list[str]:
    return list(_BENCHES) + list(_POOLED_BENCHES)


def _run_one_bench(name: str, scale: PerfScale) -> BenchResult:
    """Top-level (picklable) trampoline for bench fan-out."""
    return _BENCHES[name](scale)


def run_benches(
    scale: PerfScale, only: Optional[Iterable[str]] = None, workers: int = 1
) -> Dict[str, BenchResult]:
    """Run the named benches (all by default), optionally fanning the
    independent ones across ``workers`` processes.  ``workers=1`` is the
    exact serial path; pool-managing benches (parallel_e2e) always run in
    the parent so pools never nest."""
    names = list(only) if only else bench_names()
    unknown = [n for n in names if n not in _BENCHES and n not in _POOLED_BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es): {unknown}; have {bench_names()}")
    plain = [n for n in names if n in _BENCHES]
    out: Dict[str, BenchResult] = {}
    if workers > 1 and len(plain) > 1:
        jobs = [Job(_run_one_bench, args=(n, scale), label=n) for n in plain]
        for name, result in zip(plain, unwrap_all(run_jobs(jobs, workers=workers))):
            out[name] = result
    else:
        for name in plain:
            out[name] = _BENCHES[name](scale)
    ordered: Dict[str, BenchResult] = {}
    for name in names:
        if name in _POOLED_BENCHES:
            ordered[name] = _POOLED_BENCHES[name](scale, workers)
        else:
            ordered[name] = out[name]
    return ordered


# --------------------------------------------------------------- trajectory


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        return "unknown"


def record_run(
    path: str | Path,
    label: str,
    scale: PerfScale,
    results: Dict[str, BenchResult],
    workers: int = 1,
) -> dict:
    """Append a labelled run to the trajectory file and recompute speedups.

    Every entry is stamped with host metadata (cpu count, machine, python
    version, worker count) so wall-clock comparisons across machines stay
    interpretable.  Returns the run entry (with ``speedup_vs_baseline``
    when a ``baseline`` run at the same mode *and host shape* exists in
    the file — timings from a different core count, architecture, or
    worker count are not comparable, so the speedup is skipped and the
    reason recorded instead).
    """
    path = Path(path)
    doc = {"schema": 1, "runs": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            pass  # corrupt trajectory: start over rather than crash the bench
    host = host_metadata(workers=workers)
    run = {
        "label": label,
        "mode": scale.mode,
        "git": _git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host,
        "benches": {name: r.to_json() for name, r in results.items()},
    }
    baseline = next(
        (
            r
            for r in reversed(doc.get("runs", []))
            if r.get("label") == "baseline" and r.get("mode") == scale.mode
        ),
        None,
    )
    if baseline is not None and label != "baseline":
        if not same_host_shape(baseline.get("host"), host):
            run["speedup_skipped"] = (
                "baseline host shape differs: "
                f"{baseline.get('host')} vs {host}"
            )
        else:
            speedups = {}
            for name, res in results.items():
                base = baseline["benches"].get(name)
                if base and base["seconds"] > 0 and res.seconds > 0:
                    base_rate = base["ops"] / base["seconds"]
                    speedups[name] = round(res.ops / res.seconds / base_rate, 3)
            run["speedup_vs_baseline"] = speedups
            if HEADLINE_BENCH in speedups:
                doc["headline_speedup"] = speedups[HEADLINE_BENCH]
    doc.setdefault("runs", []).append(run)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return run


def format_table(results: Dict[str, BenchResult], run: Optional[dict] = None) -> str:
    speedups = (run or {}).get("speedup_vs_baseline", {})
    lines = [f"{'bench':<20}{'ops':>10}{'seconds':>10}{'kops/s':>10}{'vs base':>9}"]
    for name, r in results.items():
        vs = f"{speedups[name]:.2f}x" if name in speedups else "-"
        lines.append(
            f"{name:<20}{r.ops:>10}{r.seconds:>10.3f}{r.kops_per_s:>10.1f}{vs:>9}"
        )
    return "\n".join(lines)

"""Perf regression gate over the trajectory file.

``python -m repro.perf.gate`` compares the newest run in
``results/BENCH_perf.json`` against the most recent *prior* run at the
same mode and host shape (cpu count, architecture, worker count — see
:func:`repro.parallel.hostinfo.same_host_shape`) and exits non-zero if a
gated bench's throughput dropped by more than the allowed fraction.
Cross-shape comparisons are meaningless for wall-clock numbers, so when
no comparable prior run exists the gate passes with a notice instead of
guessing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.parallel.hostinfo import same_host_shape

DEFAULT_PATH = "results/BENCH_perf.json"
DEFAULT_MAX_DROP = 0.20


def check(
    path: str | Path,
    benches: list[str],
    max_drop: float = DEFAULT_MAX_DROP,
) -> list[str]:
    """Return a list of human-readable failures (empty == gate passes)."""
    path = Path(path)
    if not path.exists():
        print(f"gate: no trajectory file at {path}; nothing to compare")
        return []
    doc = json.loads(path.read_text())
    runs = doc.get("runs", [])
    if len(runs) < 2:
        print("gate: fewer than two recorded runs; nothing to compare")
        return []
    current = runs[-1]
    prior = next(
        (
            r
            for r in reversed(runs[:-1])
            if r.get("mode") == current.get("mode")
            and same_host_shape(r.get("host"), current.get("host"))
        ),
        None,
    )
    if prior is None:
        print(
            "gate: no prior run with the same mode and host shape; "
            "passing (cross-shape wall-clock comparisons are not meaningful)"
        )
        return []
    failures = []
    for name in benches:
        cur = current.get("benches", {}).get(name)
        old = prior.get("benches", {}).get(name)
        if not cur or not old:
            print(f"gate: bench {name!r} missing from one of the runs; skipped")
            continue
        cur_rate = cur["ops"] / cur["seconds"] if cur["seconds"] > 0 else 0.0
        old_rate = old["ops"] / old["seconds"] if old["seconds"] > 0 else 0.0
        if old_rate <= 0:
            continue
        ratio = cur_rate / old_rate
        verdict = "OK" if ratio >= 1.0 - max_drop else "FAIL"
        print(
            f"gate: {name}: {old_rate / 1e3:.1f} -> {cur_rate / 1e3:.1f} kops/s "
            f"({ratio:.2f}x vs {prior.get('label')}@{prior.get('git')}) {verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"{name} dropped to {ratio:.2f}x of the last comparable run "
                f"(allowed floor {1.0 - max_drop:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", default=DEFAULT_PATH, help="trajectory JSON to read")
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        help="bench(es) to gate (repeatable; default: ycsb_e2e)",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=DEFAULT_MAX_DROP,
        help="maximum tolerated fractional throughput drop (default 0.20)",
    )
    args = parser.parse_args(argv)
    failures = check(args.out, args.bench or ["ycsb_e2e"], args.max_drop)
    for f in failures:
        print(f"gate: FAIL {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

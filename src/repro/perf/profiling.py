"""cProfile wrapper for the perf harness (``python -m repro.perf --profile``).

Each selected bench runs once under its own :class:`cProfile.Profile`; the
top functions by cumulative time are appended to one plain-text dump that
CI uploads as an artifact.  Profiling overhead is real (the many-small-call
hot paths inflate several-fold under the tracer), so profiled timings are
reported but never recorded into the trajectory file.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.perf.harness import (
    BenchResult,
    PerfScale,
    _BENCHES,
    _POOLED_BENCHES,
    bench_names,
)

#: Rows kept per bench in the cumulative-time dump.
TOP_N = 40


def profile_benches(
    scale: PerfScale,
    out_path: str | Path,
    only: Optional[Iterable[str]] = None,
    top_n: int = TOP_N,
) -> Dict[str, BenchResult]:
    """Run each bench under cProfile; write per-bench top-``top_n`` dumps.

    Returns the (instrumented) :class:`BenchResult` per bench so the CLI
    can still print its table.  Pool-managing benches (parallel_e2e) are
    profiled in the parent only — child-process time shows up as pool
    waits, which is honest about where the parent spends its time.
    """
    names = list(only) if only else bench_names()
    unknown = [n for n in names if n not in _BENCHES and n not in _POOLED_BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es): {unknown}; have {bench_names()}")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    results: Dict[str, BenchResult] = {}
    sections: list[str] = []
    for name in names:
        fn = _BENCHES.get(name)
        prof = cProfile.Profile()
        if fn is not None:
            result = prof.runcall(fn, scale)
        else:
            result = prof.runcall(_POOLED_BENCHES[name], scale, 1)
        results[name] = result
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(top_n)
        sections.append(
            f"==== {name} [{scale.mode}] "
            f"ops={result.ops} seconds={result.seconds:.6f} ====\n"
            + buf.getvalue()
        )
    out_path.write_text("\n".join(sections))
    return results

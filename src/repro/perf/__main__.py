"""CLI: ``PYTHONPATH=src python -m repro.perf [--smoke] [--label current]``."""

from __future__ import annotations

import argparse
import sys

from repro.perf.harness import (
    PerfScale,
    bench_names,
    format_table,
    record_run,
    run_benches,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="hot-path microbenchmark harness"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny iteration counts (CI trajectory mode)",
    )
    parser.add_argument(
        "--label", default="current",
        help="run label in the trajectory file (use 'baseline' to set the "
        "comparison point; default: current)",
    )
    parser.add_argument(
        "--out", default="results/BENCH_perf.json",
        help="trajectory JSON to append to (default: results/BENCH_perf.json)",
    )
    parser.add_argument(
        "--bench", action="append", choices=bench_names(), metavar="NAME",
        help="run only the named bench(es); repeatable",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="print results without recording"
    )
    args = parser.parse_args(argv)

    scale = PerfScale.smoke() if args.smoke else PerfScale.full()
    results = run_benches(scale, only=args.bench)
    run = None
    if not args.no_save:
        run = record_run(args.out, args.label, scale, results)
    print(f"repro.perf [{scale.mode}] label={args.label}")
    print(format_table(results, run))
    if run and "speedup_vs_baseline" in run:
        headline = run["speedup_vs_baseline"].get("ycsb_e2e")
        if headline is not None:
            print(f"headline (ycsb_e2e) speedup vs baseline: {headline:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI: ``PYTHONPATH=src python -m repro.perf [--smoke] [--label current]``."""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import obs
from repro.perf.harness import (
    PerfScale,
    bench_names,
    format_table,
    record_run,
    run_benches,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="hot-path microbenchmark harness"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny iteration counts (CI trajectory mode)",
    )
    parser.add_argument(
        "--label", default="current",
        help="run label in the trajectory file (use 'baseline' to set the "
        "comparison point; default: current)",
    )
    parser.add_argument(
        "--out", default="results/BENCH_perf.json",
        help="trajectory JSON to append to (default: results/BENCH_perf.json)",
    )
    parser.add_argument(
        "--bench", action="append", choices=bench_names(), metavar="NAME",
        help="run only the named bench(es); repeatable",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="print results without recording"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes: fans independent benches across a pool and "
        "sets the parallel_e2e fan-out width (1 = serial, 0 = one per core)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record an obs trace of the benches and export it as JSONL "
        "(tracing itself is timed work here — compare traced runs only "
        "with traced runs)",
    )
    parser.add_argument(
        "--e2e-mode", choices=("columnar", "batched", "per-op"),
        default="columnar",
        help="dispatch mode for the e2e benches; all modes produce "
        "bit-identical results (CI diffs the printed DIGEST lines)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each bench under cProfile and dump the top functions by "
        "cumulative time (profiling overhead is real: numbers from a "
        "profiled run are not comparable with unprofiled ones)",
    )
    parser.add_argument(
        "--profile-out", metavar="FILE", default="results/perf_profile.txt",
        help="where --profile writes its per-bench top-N dump "
        "(default: results/perf_profile.txt)",
    )
    args = parser.parse_args(argv)

    scale = PerfScale.smoke() if args.smoke else PerfScale.full()
    scale = replace(scale, e2e_mode=args.e2e_mode)
    recorder = obs.install() if args.trace_out else None
    if args.profile:
        from repro.perf.profiling import profile_benches

        results = profile_benches(
            scale, args.profile_out, only=args.bench
        )
        print(f"profile: per-bench cumulative dump -> {args.profile_out}")
    else:
        results = run_benches(scale, only=args.bench, workers=args.workers)
    if recorder is not None:
        obs.uninstall()
        recorder.export_jsonl(args.trace_out)
        print(
            f"trace: {recorder.total_events} events "
            f"({recorder.dropped} dropped) -> {args.trace_out}"
        )
    run = None
    if args.profile:
        # Profiled timings carry instrumentation overhead; never let them
        # into the trajectory file.
        args.no_save = True
    if not args.no_save:
        run = record_run(args.out, args.label, scale, results, workers=args.workers)
    print(f"repro.perf [{scale.mode}] label={args.label} workers={args.workers}")
    print(format_table(results, run))
    if "parallel_e2e" in results and results["parallel_e2e"].extra:
        extra = results["parallel_e2e"].extra
        print(
            f"parallel_e2e: {extra['cells']} cells, {extra['workers']} workers, "
            f"fan-out speedup {extra['fanout_speedup']:.2f}x "
            f"(merge identical: {extra['merge_identical']})"
        )
    for name, res in results.items():
        if res.extra and "digest" in res.extra:
            print(f"DIGEST {name} [{res.extra['e2e_mode']}] {res.extra['digest']}")
    if run and "speedup_vs_baseline" in run:
        headline = run["speedup_vs_baseline"].get("ycsb_e2e")
        if headline is not None:
            print(f"headline (ycsb_e2e) speedup vs baseline: {headline:.2f}x")
    if run and "speedup_skipped" in run:
        print(f"speedup vs baseline skipped: {run['speedup_skipped']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

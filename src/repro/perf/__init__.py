"""Microbenchmark harness for the repo's hot paths (``python -m repro.perf``).

The figure benchmarks simulate millions of per-op cost events, so Python
hot-path overhead — not simulated device time — dominates wall clock.  This
package times those hot paths directly (YCSB generation, LSM get/put, bloom
probes, LRU churn, device I/O charging, interval analysis, and a small
fig8-style end-to-end run) and records the trajectory in
``results/BENCH_perf.json`` so perf regressions show up per PR.
"""

from repro.perf.harness import (
    BenchResult,
    PerfScale,
    bench_names,
    record_run,
    run_benches,
)

__all__ = [
    "BenchResult",
    "PerfScale",
    "bench_names",
    "record_run",
    "run_benches",
]

"""Key encoding and key-range arithmetic.

Keys are arbitrary ``bytes`` throughout the engines.  The YCSB generator
produces integer record ids; :func:`encode_key` maps them to fixed-width
big-endian byte strings so that the byte-wise ordering used by memtables,
SSTables, and zone maps matches numeric ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Width of encoded integer keys.  The paper uses 8-byte keys.
KEY_WIDTH = 8


def encode_key(key_id: int, width: int = KEY_WIDTH) -> bytes:
    """Encode an integer key id as a fixed-width big-endian byte string.

    Big-endian fixed width preserves numeric order under lexicographic
    comparison, which every ordered structure in the library relies on.
    """
    if key_id < 0:
        raise ValueError(f"key ids must be non-negative, got {key_id}")
    return key_id.to_bytes(width, "big")


def encode_keys(key_ids, width: int = KEY_WIDTH) -> list[bytes]:
    """Vectorized :func:`encode_key` over a sequence of integer key ids.

    One big-endian cast and one ``tobytes`` replace per-id ``int.to_bytes``
    calls; each returned element is byte-identical to ``encode_key(kid)``.
    """
    if width != KEY_WIDTH:
        return [encode_key(int(kid), width) for kid in key_ids]
    arr = np.asarray(key_ids, dtype=np.int64)
    if arr.size == 0:
        return []
    if int(arr.min()) < 0:
        bad = int(arr[arr < 0][0])
        raise ValueError(f"key ids must be non-negative, got {bad}")
    buf = arr.astype(">u8").tobytes()
    return [buf[i : i + 8] for i in range(0, len(buf), 8)]


def decode_key(key: bytes) -> int:
    """Inverse of :func:`encode_key`."""
    return int.from_bytes(key, "big")


@dataclass(frozen=True, slots=True)
class KeyRange:
    """A half-open key interval ``[lo, hi)``.

    ``hi=None`` means unbounded above.  Ranges are used for zone key spans,
    SSTable spans, and compaction overlap computations.
    """

    lo: bytes
    hi: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.hi is not None and self.hi <= self.lo:
            raise ValueError(f"empty key range: lo={self.lo!r} hi={self.hi!r}")

    def contains(self, key: bytes) -> bool:
        return key >= self.lo and (self.hi is None or key < self.hi)

    def overlaps(self, other: "KeyRange") -> bool:
        if self.hi is not None and other.lo >= self.hi:
            return False
        if other.hi is not None and self.lo >= other.hi:
            return False
        return True

    def union(self, other: "KeyRange") -> "KeyRange":
        lo = min(self.lo, other.lo)
        hi = None if (self.hi is None or other.hi is None) else max(self.hi, other.hi)
        return KeyRange(lo, hi)

    @staticmethod
    def spanning(keys: list[bytes]) -> "KeyRange":
        """The smallest closed-ish range covering ``keys`` (hi is exclusive,
        so the max key is extended by one byte)."""
        if not keys:
            raise ValueError("cannot span an empty key list")
        lo = min(keys)
        hi = max(keys) + b"\x00"
        return KeyRange(lo, hi)


def key_in_range(key: bytes, lo: bytes, hi: Optional[bytes]) -> bool:
    """``lo <= key < hi`` with ``hi=None`` meaning unbounded."""
    return key >= lo and (hi is None or key < hi)


def ranges_overlap(
    lo_a: bytes, hi_a: Optional[bytes], lo_b: bytes, hi_b: Optional[bytes]
) -> bool:
    """Whether the half-open ranges ``[lo_a, hi_a)`` and ``[lo_b, hi_b)`` intersect."""
    if hi_a is not None and lo_b >= hi_a:
        return False
    if hi_b is not None and lo_a >= hi_b:
        return False
    return True

"""Deterministic random number generation.

Every stochastic component (workload generators, queueing noise, sampling in
victim selection) takes an explicit ``numpy.random.Generator`` so whole
experiments replay bit-identically from a seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a PCG64 generator from ``seed``.

    ``None`` produces OS entropy; tests and benchmarks should always pass an
    integer so results are reproducible.
    """
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a numbered sub-stream.

    Used to give each partition / client its own stream without the streams
    being correlated.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (stream + 1)) % 2**63
    return np.random.default_rng(seed)

"""Counters and latency histograms.

The benchmark harness reproduces the paper's throughput / median / P99 plots
from these.  :class:`LatencyHistogram` keeps raw samples in a compact numpy
buffer (geometrically grown) so percentiles are exact rather than bucketed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class LatencyHistogram:
    """Stores raw latency samples and answers percentile queries.

    Samples are appended into a pre-allocated numpy array that doubles when
    full, keeping per-sample overhead to one float store.
    """

    def __init__(self, initial_capacity: int = 4096) -> None:
        # A zero-sized buffer can never grow by doubling (2*0 == 0):
        # record() would step past the end and record_many() would loop
        # forever, so clamp the starting capacity to at least one slot.
        self._buf = np.empty(max(1, initial_capacity), dtype=np.float64)
        self._n = 0

    def record(self, latency: float) -> None:
        if self._n == len(self._buf):
            self._buf = np.concatenate([self._buf, np.empty_like(self._buf)])
        self._buf[self._n] = latency
        self._n += 1

    def record_many(self, latencies: Iterable[float]) -> None:
        if isinstance(latencies, np.ndarray):
            # Take a private copy: callers (merge, the parallel reducers)
            # hand in live views of other histograms' buffers, and growing
            # or writing self._buf must never alias or disturb them — this
            # also makes h.merge(h) well-defined.
            arr = latencies.astype(np.float64, copy=True).ravel()
        else:
            arr = np.asarray(list(latencies), dtype=np.float64)
        need = self._n + len(arr)
        while need > len(self._buf):
            self._buf = np.concatenate([self._buf, np.empty_like(self._buf)])
        self._buf[self._n : self._n + len(arr)] = arr
        self._n += len(arr)

    @property
    def count(self) -> int:
        return self._n

    def samples(self) -> np.ndarray:
        """A read-only view of the recorded samples."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (0-100) of the recorded samples."""
        if self._n == 0:
            return 0.0
        return float(np.percentile(self._buf[: self._n], q))

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if self._n == 0:
            return 0.0
        return float(self._buf[: self._n].mean())

    def merge(self, other: "LatencyHistogram") -> None:
        """Append ``other``'s samples; ``other`` is never mutated or aliased."""
        self.record_many(other.samples())

    def copy(self) -> "LatencyHistogram":
        """An independent histogram holding the same samples."""
        dup = LatencyHistogram(initial_capacity=max(16, self._n))
        dup.record_many(self.samples())
        return dup

    def reset(self) -> None:
        self._n = 0


@dataclass
class StatsRegistry:
    """A flat namespace of counters and histograms owned by one engine run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> LatencyHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = LatencyHistogram()
        return h

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of *all* metrics, counters and histograms.

        Histograms are summarized as ``{count, median, p99}`` rather than
        dropped, so phase reports built on snapshots keep engine-level
        latency distributions.
        """
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "histograms": {
                name: {"count": h.count, "median": h.median, "p99": h.p99}
                for name, h in self.histograms.items()
            },
        }

    def reset(self) -> None:
        for c in self.counters.values():
            c.reset()
        for h in self.histograms.values():
            h.reset()

"""Shared primitives used across every HyperDB subsystem.

This package contains the building blocks that the storage engines are
assembled from: key encoding, record formats, probabilistic filters, ordered
in-memory containers, caches, and measurement utilities.  Nothing in here
knows about tiers, devices, or LSM-trees.
"""

from repro.common.errors import (
    ReproError,
    KeyNotFoundError,
    CapacityError,
    OutOfSpaceError,
    DeviceOfflineError,
    CorruptionError,
    TransientIOError,
    RetryExhaustedError,
    QuorumError,
    PowerLossError,
    RecoveryError,
    ClosedError,
    ConfigError,
)
from repro.common.records import Record, ValuePointer
from repro.common.keys import (
    encode_key,
    decode_key,
    key_in_range,
    ranges_overlap,
    KeyRange,
)
from repro.common.bloom import BloomFilter
from repro.common.skiplist import SkipList
from repro.common.btree import BTreeIndex
from repro.common.cache import LRUCache, ObjectCache
from repro.common.stats import Counter, LatencyHistogram, StatsRegistry
from repro.common.rng import make_rng

__all__ = [
    "ReproError",
    "KeyNotFoundError",
    "CapacityError",
    "OutOfSpaceError",
    "DeviceOfflineError",
    "CorruptionError",
    "TransientIOError",
    "RetryExhaustedError",
    "QuorumError",
    "PowerLossError",
    "RecoveryError",
    "ClosedError",
    "ConfigError",
    "Record",
    "ValuePointer",
    "encode_key",
    "decode_key",
    "key_in_range",
    "ranges_overlap",
    "KeyRange",
    "BloomFilter",
    "SkipList",
    "BTreeIndex",
    "LRUCache",
    "ObjectCache",
    "Counter",
    "LatencyHistogram",
    "StatsRegistry",
    "make_rng",
]

"""Exception hierarchy for the repro package."""

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KeyNotFoundError(ReproError, KeyError):
    """A point lookup failed to find the requested key."""


class CapacityError(ReproError):
    """A device or tier ran out of space and could not reclaim enough."""


class OutOfSpaceError(CapacityError):
    """A page allocation could not be satisfied by the device's free pool.

    The message always names the device, the requested page count, and the
    pages still free, so the failing allocation is diagnosable from the
    error alone.  Subclasses :class:`CapacityError` so existing callers
    that degrade on capacity pressure keep working.

    ``node_id`` names the cluster node the rejecting device belongs to
    (``None`` on a single-node store), so cluster failover paths can
    attribute the rejection in their ledgers.
    """

    def __init__(self, message: str, node_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.node_id = node_id


class DeviceOfflineError(ReproError):
    """An I/O was rejected because the device is in an OFFLINE health window.

    Nothing was charged to the traffic ledger (the bus moved no bytes) and
    no fault-injector counter advanced.  Engines with a failover policy
    catch this and serve from the surviving tier; callers without one see
    honest unavailability instead of silently stale data.

    ``node_id`` names the cluster node that rejected the operation
    (``None`` on a single-node store), so a cluster coordinator can charge
    the rejection to the right replica in its ledger.
    """

    def __init__(self, message: str = "", node_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.node_id = node_id


class CorruptionError(ReproError):
    """On-media data failed a structural or checksum validation.

    Raised when a block checksum mismatches, a record header is truncated,
    or a checkpoint fails its CRC — i.e. the bytes read back are not the
    bytes that were written.  Callers that can degrade gracefully (table
    quarantine, checkpoint rebuild) catch this; it is never retried, since
    re-reading corrupt media returns the same corrupt bytes.
    """


class TransientIOError(ReproError):
    """A device I/O failed transiently (injected or modeled media hiccup).

    Raised by :class:`repro.simssd.device.SimDevice` only after the
    configured :class:`repro.simssd.faults.RetryPolicy` is exhausted; each
    failed attempt is still charged to the traffic ledger.  Distinct from
    :class:`CorruptionError`: retrying a transient error can succeed.
    """


class RetryExhaustedError(TransientIOError):
    """A transient-error retry policy ran out of retries.

    Subclasses :class:`TransientIOError`, so every existing handler keeps
    working; what it adds is attribution: ``attempts`` is the total number
    of I/O attempts issued (initial try + retries) and
    ``total_backoff_s`` is the simulated backoff time already charged to
    the traffic ledger across those attempts — the caller can surface
    *how much* the device struggled before giving up, not just that it
    did.
    """

    def __init__(
        self, message: str, attempts: int = 0, total_backoff_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.total_backoff_s = total_backoff_s


class QuorumError(ReproError):
    """A cluster operation could not reach its read/write quorum.

    This is *unavailability, never loss*: the coordinator acked nothing,
    so the client must not assume the write took effect (though surviving
    replicas that did accept it may later surface the value — standard
    leaderless semantics).  ``kind`` is ``"read"`` or ``"write"``;
    ``acks`` is how many replicas succeeded out of ``required`` needed
    (with ``rf`` total); ``failures`` maps node id to the reason that
    replica could not serve.
    """

    def __init__(
        self,
        kind: str,
        acks: int,
        required: int,
        rf: int,
        failures: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.acks = acks
        self.required = required
        self.rf = rf
        self.failures = dict(failures or {})
        why = ", ".join(f"{n}: {r}" for n, r in sorted(self.failures.items()))
        super().__init__(
            f"{kind} quorum not met: {acks}/{required} acks (rf={rf})"
            + (f" [{why}]" if why else "")
        )


class PowerLossError(ReproError):
    """The simulated device lost power (an injected crash point).

    The write in flight when power is lost may be torn: only a prefix of
    its bytes reach media.  ``torn_fraction`` is the fraction persisted
    (1.0 = fully durable, 0.0 = nothing).  After power loss every further
    I/O on the device raises this error until the post-crash image is
    reopened (or the injector is rebooted).
    """

    def __init__(self, message: str, torn_fraction: float = 0.0) -> None:
        super().__init__(message)
        self.torn_fraction = torn_fraction


class RecoveryError(ReproError):
    """Recovery could not restore a usable, consistent engine state.

    Raised when a partition is asked to recover without any checkpoint, or
    when a strict recovery finds corrupt metadata and degraded rebuild was
    disallowed.  Non-strict recovery paths catch the underlying
    :class:`CorruptionError` and rebuild degraded instead of raising this.
    """


class ClosedError(ReproError):
    """An operation was attempted on a closed store, file, or device."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""

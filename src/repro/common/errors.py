"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KeyNotFoundError(ReproError, KeyError):
    """A point lookup failed to find the requested key."""


class CapacityError(ReproError):
    """A device or tier ran out of space and could not reclaim enough."""


class CorruptionError(ReproError):
    """On-media data failed a structural or checksum validation."""


class ClosedError(ReproError):
    """An operation was attempted on a closed store, file, or device."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""

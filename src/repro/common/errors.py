"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KeyNotFoundError(ReproError, KeyError):
    """A point lookup failed to find the requested key."""


class CapacityError(ReproError):
    """A device or tier ran out of space and could not reclaim enough."""


class OutOfSpaceError(CapacityError):
    """A page allocation could not be satisfied by the device's free pool.

    The message always names the device, the requested page count, and the
    pages still free, so the failing allocation is diagnosable from the
    error alone.  Subclasses :class:`CapacityError` so existing callers
    that degrade on capacity pressure keep working.
    """


class DeviceOfflineError(ReproError):
    """An I/O was rejected because the device is in an OFFLINE health window.

    Nothing was charged to the traffic ledger (the bus moved no bytes) and
    no fault-injector counter advanced.  Engines with a failover policy
    catch this and serve from the surviving tier; callers without one see
    honest unavailability instead of silently stale data.
    """


class CorruptionError(ReproError):
    """On-media data failed a structural or checksum validation.

    Raised when a block checksum mismatches, a record header is truncated,
    or a checkpoint fails its CRC — i.e. the bytes read back are not the
    bytes that were written.  Callers that can degrade gracefully (table
    quarantine, checkpoint rebuild) catch this; it is never retried, since
    re-reading corrupt media returns the same corrupt bytes.
    """


class TransientIOError(ReproError):
    """A device I/O failed transiently (injected or modeled media hiccup).

    Raised by :class:`repro.simssd.device.SimDevice` only after the
    configured :class:`repro.simssd.faults.RetryPolicy` is exhausted; each
    failed attempt is still charged to the traffic ledger.  Distinct from
    :class:`CorruptionError`: retrying a transient error can succeed.
    """


class PowerLossError(ReproError):
    """The simulated device lost power (an injected crash point).

    The write in flight when power is lost may be torn: only a prefix of
    its bytes reach media.  ``torn_fraction`` is the fraction persisted
    (1.0 = fully durable, 0.0 = nothing).  After power loss every further
    I/O on the device raises this error until the post-crash image is
    reopened (or the injector is rebooted).
    """

    def __init__(self, message: str, torn_fraction: float = 0.0) -> None:
        super().__init__(message)
        self.torn_fraction = torn_fraction


class RecoveryError(ReproError):
    """Recovery could not restore a usable, consistent engine state.

    Raised when a partition is asked to recover without any checkpoint, or
    when a strict recovery finds corrupt metadata and degraded rebuild was
    disallowed.  Non-strict recovery paths catch the underlying
    :class:`CorruptionError` and rebuild degraded instead of raising this.
    """


class ClosedError(ReproError):
    """An operation was attempted on a closed store, file, or device."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""

"""LRU caches.

Two flavours are used by the engines:

* :class:`LRUCache` — page-granularity DRAM cache shared by all partitions
  (the paper's 64 MB page LRU).  Capacity is measured in bytes; each entry
  carries an explicit charge.
* :class:`ObjectCache` — the in-memory staging cache for promoted hot
  objects (§3.5), which flushes evicted entries to the hot zone via a
  caller-supplied spill callback.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional


class LRUCache:
    """A byte-budgeted LRU map.

    ``get`` refreshes recency; ``put`` evicts least-recently-used entries
    until the new entry fits.  Hit/miss counters feed the benchmark harness.

    Built on a plain dict (insertion-ordered): recency refresh is a
    delete-and-reinsert, eviction pops ``next(iter(dict))``.  Plain dicts
    beat :class:`collections.OrderedDict` on this workload — the get/put
    churn path is one of the hottest loops in the simulator (every cached
    page and block read lands here).
    """

    __slots__ = (
        "capacity_bytes", "_entries", "_used", "hits", "misses", "evictions"
    )

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: dict[Hashable, tuple[Any, int]] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable, default: Any = None) -> Any:
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            return default
        # Delete-and-reinsert moves the key to the dict's (insertion-)end,
        # i.e. marks it most recently used.
        del entries[key]
        entries[key] = entry
        self.hits += 1
        return entry[0]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Lookup without touching recency or hit counters."""
        entry = self._entries.get(key)
        return default if entry is None else entry[0]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def put(self, key: Hashable, value: Any, charge: int = 1) -> None:
        entries = self._entries
        old = entries.pop(key, None)
        used = self._used
        if old is not None:
            used -= old[1]
        capacity = self.capacity_bytes
        if charge > capacity:
            # Entry can never fit; treat as uncacheable.
            self._used = used
            return
        evicted = 0
        while used + charge > capacity and entries:
            victim = next(iter(entries))
            used -= entries.pop(victim)[1]
            evicted += 1
        if evicted:
            self.evictions += evicted
        entries[key] = (value, charge)
        self._used = used + charge

    def invalidate(self, key: Hashable) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry[1]
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ObjectCache:
    """A count-budgeted LRU of promoted objects with a spill callback.

    When an entry is evicted, ``on_evict(key, value)`` is invoked — HyperDB
    uses this to asynchronously flush promoted objects into the hot zone.
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._on_evict = on_evict

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key not in self._entries:
            return default
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            old_key, old_value = self._entries.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(old_key, old_value)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        return self._entries.pop(key, default)

    def drain(self) -> list[tuple[Hashable, Any]]:
        """Evict everything (invoking the spill callback) and return entries.

        Each entry is popped *before* its spill callback runs, so a callback
        failure mid-drain leaves already-flushed entries out of the cache and
        a retry cannot double-spill them.
        """
        out: list[tuple[Hashable, Any]] = []
        while self._entries:
            key, value = self._entries.popitem(last=False)
            out.append((key, value))
            if self._on_evict is not None:
                self._on_evict(key, value)
        return out

"""An in-memory B-tree index.

HyperDB keeps a per-partition B-tree mapping keys to their NVMe locations
(§3.6 "Index").  This implementation is a classic B+-tree: values live only
in leaves, leaves are chained for range scans, and internal nodes hold
separator keys.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Optional


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[Any] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[bytes] = []        # separator keys, len == len(children) - 1
        self.children: list[Any] = []


class BTreeIndex:
    """Ordered map from ``bytes`` keys to arbitrary values.

    Parameters
    ----------
    order:
        Maximum number of children per internal node (and keys per leaf).
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self._order = order
        self._root: Any = _Leaf()
        self._len = 0
        # Hash mirror of the tree's mapping: point lookups dominate the
        # index workload (one ``get`` per store op, plus GC), so they go
        # through this O(1) dict; the tree itself serves ordered scans.
        self._fast: dict[bytes, Any] = {}

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------- lookup

    def _find_leaf(self, key: bytes) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: bytes, default: Any = None) -> Any:
        return self._fast.get(key, default)

    def __contains__(self, key: bytes) -> bool:
        return key in self._fast

    # ------------------------------------------------------------- insert

    def insert(self, key: bytes, value: Any) -> bool:
        """Insert or replace.  Returns True if the key was new.

        Replacements never touch the tree: current values live in the
        hash mirror (leaf ``values`` slots may go stale and are never
        read), so only *new* keys pay the structural walk.
        """
        fast = self._fast
        if key in fast:
            fast[key] = value
            return False
        fast[key] = value
        path: list[tuple[_Internal, int]] = []
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        leaf: _Leaf = node
        idx = bisect_left(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._len += 1
        if len(leaf.keys) >= self._order:
            self._split(leaf, path)
        return True

    def _split(self, node: Any, path: list[tuple[_Internal, int]]) -> None:
        if isinstance(node, _Leaf):
            mid = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.next = node.next
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next = right
            sep = right.keys[0]
        else:
            mid = len(node.keys) // 2
            right = _Internal()
            sep = node.keys[mid]
            right.keys = node.keys[mid + 1 :]
            right.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]

        if not path:
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [node, right]
            self._root = new_root
            return
        parent, idx = path[-1]
        parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, right)
        if len(parent.children) > self._order:
            self._split(parent, path[:-1])

    # ------------------------------------------------------------- delete

    def delete(self, key: bytes) -> bool:
        """Remove a key.  Returns True if it was present.

        Uses lazy deletion at the structural level: leaves may become
        under-full, which is fine for an in-memory index that is rebuilt on
        recovery; lookups and scans remain correct.
        """
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            del self._fast[key]
            self._len -= 1
            return True
        return False

    # ------------------------------------------------------------- scans

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def items(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, Any]]:
        """Ordered iteration over ``[start, end)``."""
        leaf = self._leftmost_leaf() if start is None else self._find_leaf(start)
        idx = 0 if start is None else bisect_left(leaf.keys, start)
        fast = self._fast
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if end is not None and key >= end:
                    return
                # Values are read through the mirror: leaf slots go stale
                # on replacement (see ``insert``).
                yield key, fast[key]
                idx += 1
            leaf = leaf.next
            idx = 0

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k

    def first_key(self) -> Optional[bytes]:
        leaf = self._leftmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.next
        return leaf.keys[0] if leaf else None

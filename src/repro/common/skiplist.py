"""A skip list, the memtable's ordered backing structure.

Matches the paper's description of the MemTable ("a skip-list and sorted by
keys").  Supports insert-or-replace, point lookup, and ordered iteration from
an arbitrary start key — everything a memtable flush or merge iterator needs.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Optional

_MAX_LEVEL = 16
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[bytes], value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[Optional[_Node]] = [None] * level


class SkipList:
    """An ordered map from ``bytes`` keys to arbitrary values.

    A dedicated ``random.Random`` keeps level choices deterministic per
    instance (seeded by insertion order), so structures replay identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0
        self._rand = random.Random(seed)

    def __len__(self) -> int:
        return self._len

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rand.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
            update[i] = node
        return update

    def insert(self, key: bytes, value: Any) -> bool:
        """Insert or replace.  Returns True if the key was new."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        new = _Node(key, value, level)
        for i in range(level):
            new.forward[i] = update[i].forward[i]
            update[i].forward[i] = new
        self._len += 1
        return True

    def get(self, key: bytes, default: Any = None) -> Any:
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def delete(self, key: bytes) -> bool:
        """Physically remove a key.  Returns True if it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for i in range(self._level):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._len -= 1
        return True

    def items(self, start: Optional[bytes] = None) -> Iterator[tuple[bytes, Any]]:
        """Ordered iteration over ``(key, value)``, from ``start`` (inclusive)."""
        if start is None:
            node = self._head.forward[0]
        else:
            update = self._find_predecessors(start)
            node = update[0].forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k

    def first_key(self) -> Optional[bytes]:
        node = self._head.forward[0]
        return node.key if node else None

    def last_key(self) -> Optional[bytes]:
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None:
                node = node.forward[i]
        return node.key if node is not self._head else None

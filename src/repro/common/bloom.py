"""Standard bloom filter over a packed bit array.

Used in two places:

* SSTable / semi-SSTable metadata blocks, for fast point-lookup screening.
* The cascading discriminator (§3.3), where each sealed filter represents an
  access window and membership means "accessed within that window".

Hash positions are derived with double hashing (Kirsch–Mitzenmacher), which
gives ``k`` independent-enough probes from two base hashes of the key.  The
combined hash wraps at 64 bits (as a C implementation would) so the scalar
and vectorized paths place bits identically.

The bit array is a ``bytearray``: scalar probes index it with plain-int
arithmetic (much cheaper than numpy scalar indexing on this path), while
bulk inserts view it as a numpy array and scatter whole position matrices.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

# Memo for the (pure) key -> base-hash mapping.  Skewed workloads probe
# the same hot keys through every filter on every access; caching the
# blake2b digest is free correctness-wise and saves a hash per repeat.
_HASH_MEMO: dict[bytes, tuple[int, int]] = {}
_HASH_MEMO_MAX = 1 << 16


def _base_hashes(key: bytes) -> tuple[int, int]:
    h = _HASH_MEMO.get(key)
    if h is None:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h = (
            int.from_bytes(digest[:8], "little"),
            int.from_bytes(digest[8:], "little"),
        )
        if len(_HASH_MEMO) >= _HASH_MEMO_MAX:
            _HASH_MEMO.clear()
        _HASH_MEMO[key] = h
    return h

#: Public alias: callers holding one key that probes several filters can
#: hash once and use :meth:`BloomFilter.add_hashed` /
#: :meth:`BloomFilter.contains_hashed`.
base_hashes = _base_hashes


def hash_many(keys: Sequence[bytes]) -> np.ndarray:
    """Base-hash pairs for a batch of keys as an ``(n, 2)`` uint64 array.

    Hash once, probe any number of filters via
    :meth:`BloomFilter.contains_many` — the columnar analogue of
    :func:`base_hashes`.  blake2b itself stays scalar (it is not
    vectorizable), but the memo makes repeats cheap and downstream probes
    operate on the whole array.
    """
    return np.array(
        [_base_hashes(k) for k in keys], dtype=np.uint64
    ).reshape(len(keys), 2)


class BloomFilter:
    """A fixed-capacity bloom filter.

    Parameters
    ----------
    capacity:
        Number of insertions the filter is sized for.
    bits_per_key:
        Bits allocated per expected key.  The paper uses 10 bits/key for a
        <1% false-positive rate.
    """

    __slots__ = ("capacity", "bits_per_key", "num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, capacity: int, bits_per_key: int = 10) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        self.capacity = capacity
        self.bits_per_key = bits_per_key
        self.num_bits = max(64, capacity * bits_per_key)
        # Optimal hash count for the chosen bits/key ratio, clamped to [1, 30].
        self.num_hashes = min(30, max(1, round(bits_per_key * math.log(2))))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    @property
    def count(self) -> int:
        """Number of insert calls so far (duplicates counted)."""
        return self._count

    @property
    def is_full(self) -> bool:
        """Whether the filter has absorbed its sized-for number of inserts."""
        return self._count >= self.capacity

    def _positions(self, key: bytes) -> list[int]:
        h1, h2 = _base_hashes(key)
        m = self.num_bits
        # Incremental double hashing: x_i = (h1 + i*h2) mod 2^64, computed
        # by repeated addition (identical positions, no per-probe multiply).
        out = []
        x = h1
        for _ in range(self.num_hashes):
            out.append(x % m)
            x = (x + h2) & _MASK64
        return out

    def add(self, key: bytes) -> None:
        self.add_hashed(*_base_hashes(key))

    def add_hashed(self, h1: int, h2: int) -> None:
        """Insert by precomputed base hashes (see :func:`base_hashes`).

        Lets callers that feed the same key to several filters — the
        cascading discriminator probes its whole chain per access — hash
        once instead of once per filter.
        """
        m = self.num_bits
        bits = self._bits
        x = h1
        for _ in range(self.num_hashes):
            pos = x % m
            bits[pos >> 3] |= 1 << (pos & 7)
            x = (x + h2) & _MASK64
        self._count += 1

    def scatter_hashed(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Set probe bits for precomputed base-hash pairs WITHOUT touching
        the insert count.

        For callers that defer bit placement (the cascading discriminator
        counts inserts per access but only needs the bits once the window
        seals).  Bit placement is identical to per-pair
        :meth:`add_hashed` — the vectorized ``(h1 + i*h2) mod 2^64`` math
        wraps exactly like the incremental scalar loop.
        """
        if not pairs:
            return
        hashes = np.asarray(pairs, dtype=np.uint64)
        i = np.arange(self.num_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            pos = (hashes[:, 0:1] + i[None, :] * hashes[:, 1:2]) % np.uint64(
                self.num_bits
            )
        byte_idx = (pos >> np.uint64(3)).astype(np.int64).ravel()
        masks = (
            np.left_shift(np.uint64(1), pos & np.uint64(7)).astype(np.uint8).ravel()
        )
        view = np.frombuffer(self._bits, dtype=np.uint8)
        np.bitwise_or.at(view, byte_idx, masks)

    def add_many(self, keys: Sequence[bytes] | Iterable[bytes]) -> None:
        """Insert many keys at once, scattering all probe bits vectorized."""
        keys = list(keys) if not isinstance(keys, (list, tuple)) else keys
        if not keys:
            return
        hashes = np.array([_base_hashes(k) for k in keys], dtype=np.uint64)
        i = np.arange(self.num_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            pos = (hashes[:, 0:1] + i[None, :] * hashes[:, 1:2]) % np.uint64(
                self.num_bits
            )
        byte_idx = (pos >> np.uint64(3)).astype(np.int64).ravel()
        masks = (
            np.left_shift(np.uint64(1), pos & np.uint64(7)).astype(np.uint8).ravel()
        )
        view = np.frombuffer(self._bits, dtype=np.uint8)
        np.bitwise_or.at(view, byte_idx, masks)
        self._count += len(keys)

    def __contains__(self, key: bytes) -> bool:
        return self.contains_hashed(*_base_hashes(key))

    def contains_hashed(self, h1: int, h2: int) -> bool:
        """Membership probe by precomputed base hashes."""
        m = self.num_bits
        bits = self._bits
        x = h1
        for _ in range(self.num_hashes):
            pos = x % m
            if not (bits[pos >> 3] >> (pos & 7)) & 1:
                return False
            x = (x + h2) & _MASK64
        return True

    def contains_many(self, hashes: np.ndarray) -> np.ndarray:
        """Vectorized membership probe over :func:`hash_many` output.

        Returns a boolean array; ``out[i]`` equals
        ``contains_hashed(*hashes[i])`` — the probe positions are the same
        ``(h1 + i*h2) mod 2^64`` sequence the scalar loop walks (the scalar
        path short-circuits on the first clear bit, which only skips work,
        never changes the verdict).
        """
        n = len(hashes)
        if n == 0:
            return np.zeros(0, dtype=bool)
        i = np.arange(self.num_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            pos = (hashes[:, 0:1] + i[None, :] * hashes[:, 1:2]) % np.uint64(
                self.num_bits
            )
        view = np.frombuffer(self._bits, dtype=np.uint8)
        byte_idx = (pos >> np.uint64(3)).astype(np.int64)
        probed = (view[byte_idx] >> (pos & np.uint64(7)).astype(np.uint8)) & 1
        return probed.all(axis=1)

    def fill_ratio(self) -> float:
        """Fraction of bits set; a saturation diagnostic."""
        return int.from_bytes(self._bits, "little").bit_count() / self.num_bits

    @property
    def size_bytes(self) -> int:
        """Serialized size of the filter's bit array."""
        return len(self._bits)

    @staticmethod
    def for_keys(keys: list[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Build a filter sized for and populated with ``keys``."""
        bf = BloomFilter(max(1, len(keys)), bits_per_key)
        bf.add_many(keys)
        return bf

    # ------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize the filter (parameters + bit array) for a manifest."""
        import struct

        return (
            struct.pack(">QQI", self.capacity, self._count, self.bits_per_key)
            + bytes(self._bits)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "BloomFilter":
        """Rebuild a filter serialized by :meth:`to_bytes`."""
        import struct

        capacity, count, bits_per_key = struct.unpack_from(">QQI", data, 0)
        bf = BloomFilter(capacity, bits_per_key)
        bits = bytearray(data[20:])
        if len(bits) != len(bf._bits):
            raise ValueError(
                f"bloom bit array length {len(bits)} != expected {len(bf._bits)}"
            )
        bf._bits = bits
        bf._count = count
        return bf

"""Standard bloom filter over a numpy bit array.

Used in two places:

* SSTable / semi-SSTable metadata blocks, for fast point-lookup screening.
* The cascading discriminator (§3.3), where each sealed filter represents an
  access window and membership means "accessed within that window".

Hash positions are derived with double hashing (Kirsch–Mitzenmacher), which
gives ``k`` independent-enough probes from two base hashes of the key.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np


def _base_hashes(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return int.from_bytes(digest[:8], "little"), int.from_bytes(digest[8:], "little")


class BloomFilter:
    """A fixed-capacity bloom filter.

    Parameters
    ----------
    capacity:
        Number of insertions the filter is sized for.
    bits_per_key:
        Bits allocated per expected key.  The paper uses 10 bits/key for a
        <1% false-positive rate.
    """

    __slots__ = ("capacity", "bits_per_key", "num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, capacity: int, bits_per_key: int = 10) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        self.capacity = capacity
        self.bits_per_key = bits_per_key
        self.num_bits = max(64, capacity * bits_per_key)
        # Optimal hash count for the chosen bits/key ratio, clamped to [1, 30].
        self.num_hashes = min(30, max(1, round(bits_per_key * math.log(2))))
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self._count = 0

    @property
    def count(self) -> int:
        """Number of insert calls so far (duplicates counted)."""
        return self._count

    @property
    def is_full(self) -> bool:
        """Whether the filter has absorbed its sized-for number of inserts."""
        return self._count >= self.capacity

    def _positions(self, key: bytes) -> list[int]:
        h1, h2 = _base_hashes(key)
        m = self.num_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, key: bytes) -> bool:
        for pos in self._positions(key):
            if not (self._bits[pos >> 3] >> (pos & 7)) & 1:
                return False
        return True

    def fill_ratio(self) -> float:
        """Fraction of bits set; a saturation diagnostic."""
        return float(np.unpackbits(self._bits).sum()) / self.num_bits

    @property
    def size_bytes(self) -> int:
        """Serialized size of the filter's bit array."""
        return len(self._bits)

    @staticmethod
    def for_keys(keys: list[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Build a filter sized for and populated with ``keys``."""
        bf = BloomFilter(max(1, len(keys)), bits_per_key)
        for k in keys:
            bf.add(k)
        return bf

    # ------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize the filter (parameters + bit array) for a manifest."""
        import struct

        return (
            struct.pack(">QQI", self.capacity, self._count, self.bits_per_key)
            + self._bits.tobytes()
        )

    @staticmethod
    def from_bytes(data: bytes) -> "BloomFilter":
        """Rebuild a filter serialized by :meth:`to_bytes`."""
        import struct

        capacity, count, bits_per_key = struct.unpack_from(">QQI", data, 0)
        bf = BloomFilter(capacity, bits_per_key)
        bits = np.frombuffer(data[20:], dtype=np.uint8).copy()
        if len(bits) != len(bf._bits):
            raise ValueError(
                f"bloom bit array length {len(bits)} != expected {len(bf._bits)}"
            )
        bf._bits = bits
        bf._count = count
        return bf

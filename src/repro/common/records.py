"""Key-value record formats shared by both storage tiers.

A :class:`Record` is the unit stored in memtables, zone slots, and SSTable
data blocks.  HyperDB prefixes every on-media object with a timestamp, the
key size, and the value size (§3.2 of the paper); :meth:`Record.encoded_size`
accounts for that header so capacity and traffic numbers include metadata
bytes.

Deletions are marked out-of-band: a flags byte in the on-media header, not
a sentinel value — any byte string (including one that looks like a
marker) is a legal value.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-object header: 8B timestamp + 1B flags + 2B key size + 4B value size.
RECORD_HEADER_SIZE = 15


@dataclass(slots=True)
class Record:
    """A single key-value entry with its write timestamp.

    ``seqno`` is a monotonically increasing logical timestamp assigned by the
    engine at write time; newer records shadow older ones during merges.
    ``deleted`` marks a tombstone.
    """

    key: bytes
    value: bytes
    seqno: int = 0
    deleted: bool = False

    @property
    def is_tombstone(self) -> bool:
        return self.deleted

    @property
    def encoded_size(self) -> int:
        """Bytes this record occupies on media, including the object header."""
        return RECORD_HEADER_SIZE + len(self.key) + len(self.value)

    @staticmethod
    def tombstone(key: bytes, seqno: int = 0) -> "Record":
        return Record(key, b"", seqno, deleted=True)

    def shadows(self, other: "Record") -> bool:
        """Whether this record supersedes ``other`` for the same key."""
        return self.key == other.key and self.seqno >= other.seqno


@dataclass(frozen=True, slots=True)
class ValuePointer:
    """Location of an object inside the NVMe tier.

    ``slot_class`` selects the slot file (size class), ``page_no`` the page
    within it, and ``offset`` the byte offset within the page.  ``zone_id``
    back-references the owning zone so demotion can enumerate a zone's pages.
    """

    partition_id: int
    zone_id: int
    slot_class: int
    page_no: int
    offset: int
    size: int
    promoted: bool = False

"""Device health states and admission-control backpressure.

Two small, dependency-free vocabularies shared by the rest of the stack:

* :mod:`repro.health.state` — the :class:`HealthState` machine
  (``HEALTHY`` / ``BROWNOUT`` / ``OFFLINE``) and :class:`HealthWindow`,
  the seeded schedule entry that :class:`repro.simssd.faults.FaultPlan`
  carries and :class:`repro.simssd.device.SimDevice` enforces;
* :mod:`repro.health.admission` — RocksDB-style write admission control
  (:class:`AdmissionConfig` / :class:`AdmissionController`): slowdown and
  stop triggers keyed on memtable count, L0 file count, and partition
  fill, so foreground writes stall deterministically instead of
  overrunning :class:`repro.common.errors.OutOfSpaceError`.

This package deliberately imports nothing from ``repro.simssd`` or the
engines, so the fault layer can depend on it without cycles.
"""

from repro.health.admission import AdmissionConfig, AdmissionController
from repro.health.state import HealthState, HealthWindow, resolve_health

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "HealthState",
    "HealthWindow",
    "resolve_health",
]

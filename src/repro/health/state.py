"""The device health-state machine and scheduled health windows.

A device is ``HEALTHY`` unless a :class:`HealthWindow` covering the current
I/O ordinal says otherwise.  Windows are keyed on the *shared* fault
injector's global I/O ordinal (``read_ios + write_ios``), not wall time:
the simulation has no independent clock, and the global ordinal advances on
every charged I/O of every device sharing the injector — so traffic served
by the surviving tier is exactly what ages an outage toward recovery, and
the whole schedule is deterministic for a given workload.

State semantics (enforced by :class:`repro.simssd.device.SimDevice`):

* ``HEALTHY`` — normal service.
* ``BROWNOUT`` — the device serves I/O, but every charge's latency and
  transfer time is scaled by the window's ``latency_multiplier`` (the
  slowdown is real ledger time, visible in traces and utilization).
* ``OFFLINE`` — every I/O is rejected with
  :class:`repro.common.errors.DeviceOfflineError` before anything is
  charged or any fault counter advances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple


class HealthState(enum.Enum):
    """Service level of one simulated device."""

    HEALTHY = "healthy"
    BROWNOUT = "brownout"
    OFFLINE = "offline"


@dataclass(frozen=True)
class HealthWindow:
    """One scheduled degradation window for one device.

    Parameters
    ----------
    device:
        The :attr:`DeviceProfile.name` this window applies to.
    state:
        ``BROWNOUT`` or ``OFFLINE`` (a ``HEALTHY`` window would be a no-op
        and is rejected).
    start_io / end_io:
        Half-open interval of 1-based global I/O ordinals: the window is
        active for ordinals ``start_io <= n < end_io``.
    latency_multiplier:
        Brownout service-time scale factor (>= 1.0); ignored for
        ``OFFLINE`` windows.
    """

    device: str
    state: HealthState
    start_io: int
    end_io: int
    latency_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.state is HealthState.HEALTHY:
            raise ValueError("a HEALTHY window is a no-op; schedule only degradations")
        if self.start_io < 1:
            raise ValueError(f"start_io is 1-based and must be >= 1, got {self.start_io}")
        if self.end_io <= self.start_io:
            raise ValueError(
                f"end_io must exceed start_io, got [{self.start_io}, {self.end_io})"
            )
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1.0, got {self.latency_multiplier}"
            )

    def covers(self, io_ordinal: int) -> bool:
        return self.start_io <= io_ordinal < self.end_io


def resolve_health(
    windows: Iterable[HealthWindow], device: str, io_ordinal: int
) -> Tuple[HealthState, float]:
    """Effective ``(state, latency_multiplier)`` for one device at one ordinal.

    ``OFFLINE`` dominates overlapping ``BROWNOUT`` windows; overlapping
    brownouts compound (their multipliers multiply), matching how stacked
    service degradations behave on real hardware.
    """
    state = HealthState.HEALTHY
    multiplier = 1.0
    for w in windows:
        if w.device != device or not w.covers(io_ordinal):
            continue
        if w.state is HealthState.OFFLINE:
            return HealthState.OFFLINE, 1.0
        state = HealthState.BROWNOUT
        multiplier *= w.latency_multiplier
    return state, multiplier

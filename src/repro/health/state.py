"""The device health-state machine and scheduled health windows.

A device is ``HEALTHY`` unless a :class:`HealthWindow` covering the current
I/O ordinal says otherwise.  Windows are keyed on the *shared* fault
injector's global I/O ordinal (``read_ios + write_ios``), not wall time:
the simulation has no independent clock, and the global ordinal advances on
every charged I/O of every device sharing the injector — so traffic served
by the surviving tier is exactly what ages an outage toward recovery, and
the whole schedule is deterministic for a given workload.

State semantics (enforced by :class:`repro.simssd.device.SimDevice`):

* ``HEALTHY`` — normal service.
* ``BROWNOUT`` — the device serves I/O, but every charge's latency and
  transfer time is scaled by the window's ``latency_multiplier`` (the
  slowdown is real ledger time, visible in traces and utilization).
* ``OFFLINE`` — every I/O is rejected with
  :class:`repro.common.errors.DeviceOfflineError` before anything is
  charged or any fault counter advances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


class HealthState(enum.Enum):
    """Service level of one simulated device."""

    HEALTHY = "healthy"
    BROWNOUT = "brownout"
    OFFLINE = "offline"


@dataclass(frozen=True)
class HealthWindow:
    """One scheduled degradation window for one device.

    Parameters
    ----------
    device:
        The :attr:`DeviceProfile.name` this window applies to.
    state:
        ``BROWNOUT`` or ``OFFLINE`` (a ``HEALTHY`` window would be a no-op
        and is rejected).
    start_io / end_io:
        Half-open interval of 1-based global I/O ordinals: the window is
        active for ordinals ``start_io <= n < end_io``.
    latency_multiplier:
        Brownout service-time scale factor (>= 1.0); ignored for
        ``OFFLINE`` windows.
    queue:
        ``None`` (default) degrades the whole device.  A queue index
        degrades only I/O routed to that submission queue of a
        multi-queue device: a queue-``BROWNOUT`` surcharges exactly the
        charges placed on that queue, a queue-``OFFLINE`` rejects only
        I/O bound for it, and the other queues keep serving at full
        speed.  Queue windows are resolved per-I/O (not pinned by a
        health epoch): they model per-queue service degradation rather
        than whole-device loss, so they never tear a multi-I/O mutation.
    """

    device: str
    state: HealthState
    start_io: int
    end_io: int
    latency_multiplier: float = 1.0
    queue: Optional[int] = None

    def __post_init__(self) -> None:
        if self.state is HealthState.HEALTHY:
            raise ValueError("a HEALTHY window is a no-op; schedule only degradations")
        if self.start_io < 1:
            raise ValueError(f"start_io is 1-based and must be >= 1, got {self.start_io}")
        if self.end_io <= self.start_io:
            raise ValueError(
                f"end_io must exceed start_io, got [{self.start_io}, {self.end_io})"
            )
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1.0, got {self.latency_multiplier}"
            )
        if self.queue is not None and self.queue < 0:
            raise ValueError(f"queue index must be >= 0, got {self.queue}")

    def covers(self, io_ordinal: int) -> bool:
        return self.start_io <= io_ordinal < self.end_io


def resolve_health(
    windows: Iterable[HealthWindow], device: str, io_ordinal: int
) -> Tuple[HealthState, float]:
    """Effective ``(state, latency_multiplier)`` for one device at one ordinal.

    ``OFFLINE`` dominates overlapping ``BROWNOUT`` windows; overlapping
    brownouts compound (their multipliers multiply), matching how stacked
    service degradations behave on real hardware.  Only *device-wide*
    windows (``queue is None``) participate: queue-targeted windows apply
    to individual submission queues and are resolved separately by
    :func:`resolve_queue_health`.
    """
    state = HealthState.HEALTHY
    multiplier = 1.0
    for w in windows:
        if w.device != device or w.queue is not None or not w.covers(io_ordinal):
            continue
        if w.state is HealthState.OFFLINE:
            return HealthState.OFFLINE, 1.0
        state = HealthState.BROWNOUT
        multiplier *= w.latency_multiplier
    return state, multiplier


def resolve_queue_health(
    windows: Iterable[HealthWindow], device: str, queue: int, io_ordinal: int
) -> Tuple[HealthState, float]:
    """Effective ``(state, latency_multiplier)`` for one submission queue.

    Considers only windows targeted at ``queue`` of ``device``; device-wide
    degradation composes on top of this at the charge site (a device
    brownout multiplies into every queue's charges).  Same combination
    rules as :func:`resolve_health`: OFFLINE dominates, brownouts compound.
    """
    state = HealthState.HEALTHY
    multiplier = 1.0
    for w in windows:
        if w.device != device or w.queue != queue or not w.covers(io_ordinal):
            continue
        if w.state is HealthState.OFFLINE:
            return HealthState.OFFLINE, 1.0
        state = HealthState.BROWNOUT
        multiplier *= w.latency_multiplier
    return state, multiplier

"""RocksDB-style write admission control (slowdown / stop triggers).

Real RocksDB throttles foreground writes when background work falls behind:
a *slowdown* trigger delays each write, a *stop* trigger stalls writes until
compaction or flush catches up.  The reproduction's background work runs
synchronously inside the foreground call, so a stall cannot wait on an
asynchronous thread — instead the engine (a) runs its catch-up work inline
and (b) charges a deterministic stall delay to the traffic ledger, so the
throughput cost of backpressure is visible in simulated time exactly like
retry backoff is.

The controller itself is engine-agnostic: engines feed it whatever signals
they have (memtable count, L0 file count, partition fill fraction) and
charge the delay it returns.  Disabled (``None`` config) it costs nothing
and changes nothing — the default everywhere, so pre-existing digests and
benchmarks are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Admission verdicts, ordered by severity.
OK = "ok"
SLOWDOWN = "slowdown"
STOP = "stop"


@dataclass(frozen=True)
class AdmissionConfig:
    """Thresholds and stall charges for write backpressure.

    Defaults mirror RocksDB's shape (slowdown well before stop) scaled to
    the reproduction's tiny geometry.  A threshold of ``None`` disables
    that trigger.
    """

    #: Memtable-count triggers (active + immutable, RocksDB's
    #: ``max_write_buffer_number`` family).
    slowdown_memtables: Optional[int] = 3
    stop_memtables: Optional[int] = 5
    #: L0 file-count triggers (``level0_slowdown_writes_trigger`` /
    #: ``level0_stop_writes_trigger``).
    slowdown_l0_files: Optional[int] = 8
    stop_l0_files: Optional[int] = 12
    #: Partition / tier fill-fraction triggers (HyperDB's analogue: demotion
    #: is the background work that reclaims fill above ``high_watermark``).
    slowdown_fill: Optional[float] = 0.94
    stop_fill: Optional[float] = 0.98
    #: Simulated seconds charged per stalled write.
    slowdown_delay_s: float = 1e-4
    stop_delay_s: float = 1e-3

    def __post_init__(self) -> None:
        for lo, hi, what in (
            (self.slowdown_memtables, self.stop_memtables, "memtables"),
            (self.slowdown_l0_files, self.stop_l0_files, "l0_files"),
            (self.slowdown_fill, self.stop_fill, "fill"),
        ):
            if lo is not None and hi is not None and hi < lo:
                raise ValueError(f"stop_{what} must be >= slowdown_{what}")
        if self.slowdown_delay_s < 0 or self.stop_delay_s < 0:
            raise ValueError("stall delays must be non-negative")


@dataclass
class AdmissionStats:
    """What backpressure actually did (public, for tests and reports)."""

    slowdowns: int = 0
    stops: int = 0
    stall_seconds: float = 0.0


class AdmissionController:
    """Classifies write pressure and meters out deterministic stall time."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats = AdmissionStats()

    def assess(
        self,
        memtables: int = 0,
        l0_files: int = 0,
        fill: float = 0.0,
    ) -> Tuple[str, Optional[str]]:
        """Return ``(verdict, trigger)`` for the current pressure signals.

        The most severe matching trigger wins; the trigger name says which
        signal fired, so stall events are attributable.
        """
        cfg = self.config
        checks = (
            ("memtables", memtables, cfg.slowdown_memtables, cfg.stop_memtables),
            ("l0_files", l0_files, cfg.slowdown_l0_files, cfg.stop_l0_files),
            ("fill", fill, cfg.slowdown_fill, cfg.stop_fill),
        )
        verdict, trigger = OK, None
        for name, value, slow_at, stop_at in checks:
            if stop_at is not None and value >= stop_at:
                return STOP, name
            if verdict is OK and slow_at is not None and value >= slow_at:
                verdict, trigger = SLOWDOWN, name
        return verdict, trigger

    def stall_s(self, verdict: str) -> float:
        """Charge one stall of the given severity; returns the delay."""
        if verdict == SLOWDOWN:
            self.stats.slowdowns += 1
            delay = self.config.slowdown_delay_s
        elif verdict == STOP:
            self.stats.stops += 1
            delay = self.config.stop_delay_s
        else:
            return 0.0
        self.stats.stall_seconds += delay
        return delay

"""Scaled experiment construction.

The paper's testbed loads 100 GB into a 960 GB NVMe + 960 GB SATA pair and
issues 100 M requests.  Benchmarks here default to a ~1/4000 scale (25 k
records, 25 k requests) so the full figure suite runs in minutes of wall
clock; every dimension that matters — fill fractions, watermark pressure,
level counts — is scaled together, and ``REPRO_SCALE`` grows everything
proportionally toward paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.baselines import (
    PrismDBStore,
    RocksDBSecondaryCacheStore,
    RocksDBStore,
)
from repro.common.keys import KeyRange, encode_key
from repro.core import HyperDB, HyperDBConfig
from repro.core.interface import KVStore
from repro.lsm.lsmtree import LSMOptions
from repro.nvme.config import NVMeConfig
from repro.simssd import NVME_PROFILE, SATA_PROFILE, SimDevice
from repro.simssd.faults import FaultInjector
from repro.simssd.queues import QueueConfig

KiB = 1024
MiB = 1024 * KiB

STORE_NAMES = ("hyperdb", "rocksdb", "rocksdb-sc", "prismdb")


def env_scale() -> float:
    """The ``REPRO_SCALE`` multiplier (default 1)."""
    return float(os.environ.get("REPRO_SCALE", "1"))


@dataclass
class BenchScale:
    """All scale-dependent experiment parameters."""

    record_count: int = 25_000
    operations: int = 25_000
    value_size: int = 128
    #: NVMe capacity as a fraction of the loaded dataset.  The paper's
    #: testbed is NVMe-rich (960 GB NVMe vs a 100 GB load); 0.6 keeps the
    #: same regime — migration happens, but the fast tier holds the hot
    #: working set — while Fig. 9c sweeps the constrained end (1%–16%).
    nvme_ratio: float = 1.2
    #: SATA capacity as a multiple of the dataset.
    sata_multiple: float = 12.0
    clients: int = 8
    background_threads: int = 8
    seed: int = 7
    #: Submission queues per device (1 = the classic single-timeline
    #: model, byte-identical digests; >1 isolates foreground from
    #: background traffic on dedicated queues).
    queue_count: int = 1
    #: Per-queue depth; only meaningful with ``queue_count > 1``.
    queue_depth: int = 32

    @classmethod
    def default(cls, **overrides) -> "BenchScale":
        s = cls(**overrides)
        mult = env_scale()
        if mult != 1.0:
            s.record_count = int(s.record_count * mult)
            s.operations = int(s.operations * mult)
        return s

    @property
    def record_size(self) -> int:
        from repro.common.records import RECORD_HEADER_SIZE

        return RECORD_HEADER_SIZE + 8 + self.value_size  # header + key + value

    @property
    def dataset_bytes(self) -> int:
        return self.record_count * self.record_size

    @property
    def nvme_bytes(self) -> int:
        return max(512 * KiB, int(self.dataset_bytes * self.nvme_ratio))

    @property
    def sata_bytes(self) -> int:
        return max(8 * MiB, int(self.dataset_bytes * self.sata_multiple))

    @property
    def key_space(self) -> KeyRange:
        # Headroom for YCSB-D/E inserts (5% of ops), kept tight so key-space
        # segmentation matches the live key density.
        return KeyRange(
            encode_key(0), encode_key(self.record_count * 3 // 2 + 1024)
        )

    def devices(
        self, injector: "FaultInjector | None" = None
    ) -> tuple[SimDevice, SimDevice]:
        queues = (
            QueueConfig(queue_count=self.queue_count, queue_depth=self.queue_depth)
            if self.queue_count > 1
            else None
        )
        nvme = SimDevice(
            NVME_PROFILE.with_capacity(self.nvme_bytes),
            injector=injector, queues=queues,
        )
        sata = SimDevice(
            SATA_PROFILE.with_capacity(self.sata_bytes),
            injector=injector, queues=queues,
        )
        return nvme, sata


def hyperdb_config(scale: BenchScale, **overrides) -> HyperDBConfig:
    """A HyperDBConfig with every structural parameter scaled to the dataset."""
    d = scale.dataset_bytes
    cfg = dict(
        key_space=scale.key_space,
        nvme=NVMeConfig(
            num_partitions=4,
            initial_zones_per_partition=2,
            # §3.6: the zone size matches the semi-SSTable file size, which
            # is one L1 segment (L1 target / 8 segments = D/32).
            migration_batch_bytes=max(16 * KiB, d // 32),
        ),
        semi_num_levels=3,
        semi_size_ratio=8,
        semi_bottom_segments=512,
        # The capacity tier sizes its first level knowing NVMe plays L0
        # (mirrors the PrismDB configuration for a fair comparison).
        semi_level1_target_bytes=max(256 * KiB, d // 4),
        dram_cache_bytes=max(64 * KiB, d // 16),
    )
    cfg.update(overrides)
    return HyperDBConfig(**cfg)


def lsm_options(scale: BenchScale, **overrides) -> LSMOptions:
    """Baseline LSM options scaled to the dataset (see the geometry note)."""
    d = scale.dataset_bytes
    # Geometry mirrors the paper's RocksDB proportions: the bottom level
    # holds the bulk of the data and lives on SATA, so deep compactions
    # dominate the capacity tier's bandwidth (Fig. 3b).
    opts = dict(
        memtable_bytes=max(32 * KiB, d // 64),
        table_size_bytes=max(32 * KiB, d // 64),
        block_size=4 * KiB,
        level0_trigger=4,
        level_base_bytes=max(64 * KiB, d // 64),
        level_multiplier=10,
        num_levels=5,
    )
    opts.update(overrides)
    return LSMOptions(**opts)


def build_store(name: str, scale: BenchScale, **kw) -> KVStore:
    """Construct one of the four engines over freshly scaled devices."""
    nvme, sata = scale.devices()
    dram = max(64 * KiB, scale.dataset_bytes // 16)
    if name == "hyperdb":
        return HyperDB(nvme, sata, hyperdb_config(scale, **kw))
    if name == "rocksdb":
        return RocksDBStore(nvme, sata, lsm_options(scale), dram_cache_bytes=dram)
    if name == "rocksdb-sc":
        return RocksDBSecondaryCacheStore(
            nvme, sata, lsm_options(scale), dram_cache_bytes=dram
        )
    if name == "prismdb":
        # PrismDB's NVMe tier replaces the top of the tree, so its SATA LSM
        # keeps fewer, larger levels (§2.3: "PrismDB reduces the number of
        # levels stored in the capacity tier").
        return PrismDBStore(
            nvme,
            sata,
            nvme_config=NVMeConfig(
                num_partitions=4,
                # Larger demotion batches amortize the SSTable merges each
                # batch overlaps.
                migration_batch_bytes=max(64 * KiB, scale.dataset_bytes // 32),
            ),
            lsm_options=lsm_options(
                scale,
                wal_enabled=False,
                level_base_bytes=max(512 * KiB, scale.dataset_bytes // 4),
                num_levels=4,
            ),
            dram_cache_bytes=dram,
        )
    raise ValueError(f"unknown store {name!r}; expected one of {STORE_NAMES}")

"""Command-line entry point: regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench                      # every figure, serially
    python -m repro.bench fig8 fig11           # a subset
    python -m repro.bench --workers 4          # fan cells across 4 processes
    python -m repro.bench --digest             # print a sha256 of all tables
    REPRO_SCALE=4 python -m repro.bench        # larger datasets

``--workers N`` fans each figure's independent cells across N worker
processes (``repro.parallel``); tables are digest-identical at every
worker count, which ``--digest`` makes checkable (CI asserts the
``--workers 2`` digest equals the serial one).  ``--timing-out FILE``
writes per-cell wall-clock timings as JSON for speedup analysis.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

from repro import obs
from repro.bench.experiments import ALL_EXPERIMENTS, LAST_JOB_TIMINGS
from repro.bench.reporting import format_table
from repro.parallel import host_metadata
from repro.parallel.pool import timing_records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="regenerate the paper's figures as text tables",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="FIG",
        help=f"experiments to run (default: all of {list(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for cell fan-out (1 = serial in-process, "
        "0 = one per core; results are identical at any count)",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print 'DIGEST <sha256>' over all rendered tables (timing "
        "lines excluded), for serial/parallel equivalence checks",
    )
    parser.add_argument(
        "--timing-out", metavar="FILE", default=None,
        help="write per-cell job timings + host metadata as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record an obs trace of the whole run and export it as JSONL "
        "(inspect with 'python -m repro.obs summarize FILE'); tracing "
        "never changes results or digests",
    )
    args = parser.parse_args(argv)

    wanted = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2

    recorder = obs.install() if args.trace_out else None
    tables: list[str] = []
    timings: dict[str, list[dict]] = {}
    for name in wanted:
        start = time.time()
        result = ALL_EXPERIMENTS[name](workers=args.workers)
        tables.append(format_table(result["title"], result["headers"], result["rows"]))
        if "rows_b" in result:
            tables.append(
                format_table(result["title_b"], result["headers_b"], result["rows_b"])
            )
        print(tables[-1] if "rows_b" not in result else "\n\n".join(tables[-2:]))
        print(f"[{name} took {time.time() - start:.1f}s]\n")
        timings[name] = timing_records(LAST_JOB_TIMINGS.get(name, []))

    if recorder is not None:
        obs.uninstall()
        recorder.export_jsonl(args.trace_out)
        print(
            f"trace: {recorder.total_events} events "
            f"({recorder.dropped} dropped) -> {args.trace_out}"
        )
    if args.digest:
        digest = hashlib.sha256("\n\n".join(tables).encode()).hexdigest()
        print(f"DIGEST {digest}")
    if args.timing_out:
        doc = {
            "host": host_metadata(workers=args.workers),
            "experiments": timings,
        }
        with open(args.timing_out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

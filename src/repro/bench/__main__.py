"""Command-line entry point: regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench                 # every figure
    python -m repro.bench fig8 fig11      # a subset
    REPRO_SCALE=4 python -m repro.bench   # larger datasets
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import format_table


def main(argv: list[str]) -> int:
    wanted = argv or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    for name in wanted:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        print(format_table(result["title"], result["headers"], result["rows"]))
        if "rows_b" in result:
            print()
            print(
                format_table(result["title_b"], result["headers_b"], result["rows_b"])
            )
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
